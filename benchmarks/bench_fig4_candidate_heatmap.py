"""Fig. 4 — candidate-codeword count heatmap for the (39, 32) SECDED code.

Paper claims reproduced here: exactly 741 2-bit patterns; candidate
counts range 8 (best case) to 15 (worst case) with mean ~12; counts
depend only on the error bit positions (linearity).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.experiments import run_fig4


def test_fig4_candidate_heatmap(benchmark, code):
    result = benchmark.pedantic(run_fig4, args=(code,), rounds=1, iterations=1)
    emit("Fig. 4 | candidate codewords per 2-bit error position pair",
         result.render())
    profile = result.profile
    assert profile.num_patterns == 741
    assert profile.minimum == 8
    assert profile.maximum == 15
    assert 11.5 <= profile.mean <= 12.5
