"""Extension E6 — theory vs measurement (future work: "derive
theoretical properties").

Validates the closed-form model of :mod:`repro.analysis.theory` against
the empirical sweeps:

- the Fig. 4 heatmap equals the column pair-XOR multiplicities exactly;
- the random-candidate baseline equals the mean reciprocal multiplicity;
- the filtering-only strategy is predicted by the independent-legality
  binomial model using one scalar (the legal-encoding density of the
  32-bit space) — measured agreement within a few points.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.analysis.theory import (
    expected_filter_only_success,
    expected_random_candidate_success,
    mnemonic_entropy,
    predicted_candidate_counts,
    predicted_count_distribution,
)
from repro.ecc.candidates import candidate_count_profile
from repro.isa.decoder import is_legal
from repro.program.stats import FrequencyTable


def test_theory_validation(benchmark, code, images, scale):
    mcf = next(image for image in images if image.name == "mcf")

    def compute() -> dict[str, float]:
        # Analytic side.
        predicted_counts = predicted_candidate_counts(code)
        distribution = predicted_count_distribution(code)
        predicted_random = expected_random_candidate_success(code)
        rng = random.Random(0)
        legal_density = sum(
            1 for _ in range(20_000) if is_legal(rng.getrandbits(32))
        ) / 20_000
        predicted_filter = sum(
            count_patterns * expected_filter_only_success(count, legal_density)
            for count, count_patterns in distribution.items()
        ) / sum(distribution.values())
        # Empirical side.
        profile = candidate_count_profile(code)
        instructions = max(8, scale.instructions // 2)
        random_sweep = DueSweep(
            code, RecoveryStrategy.RANDOM_CANDIDATE, instructions
        ).run(mcf)
        filter_sweep = DueSweep(
            code, RecoveryStrategy.FILTER_ONLY, instructions
        ).run(mcf)
        exact_heatmap = predicted_counts == profile.counts
        return {
            "heatmap_exact": float(exact_heatmap),
            "predicted_random": predicted_random,
            "measured_random": random_sweep.mean_success_rate,
            "legal_density": legal_density,
            "predicted_filter_only": predicted_filter,
            "measured_filter_only": filter_sweep.mean_success_rate,
            "entropy_bits": mnemonic_entropy(FrequencyTable.from_image(mcf)),
        }

    values = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Extension E6 | closed-form model vs measured sweeps",
        render_table(
            ["quantity", "predicted", "measured"],
            [
                ["Fig. 4 heatmap (741 cells)", "pair-XOR multiplicities",
                 "identical" if values["heatmap_exact"] else "MISMATCH"],
                ["random-candidate success",
                 f"{values['predicted_random']:.4f}",
                 f"{values['measured_random']:.4f}"],
                ["filter-only success "
                 f"(p_legal={values['legal_density']:.3f})",
                 f"{values['predicted_filter_only']:.4f}",
                 f"{values['measured_filter_only']:.4f}"],
                ["mnemonic entropy (mcf)",
                 f"{values['entropy_bits']:.2f} bits", "-"],
            ],
        ),
    )
    assert values["heatmap_exact"] == 1.0
    # The random baseline is predicted exactly (up to sweep noise from
    # the real message distribution: none, it is message independent).
    assert values["measured_random"] == (
        values["predicted_random"]
    ) or abs(values["measured_random"] - values["predicted_random"]) < 1e-9
    # The one-parameter filtering model lands within a few points: the
    # independence assumption ignores that candidates share bit
    # patterns with the original (which raises their legality
    # correlation), so modest error is expected.
    assert abs(
        values["predicted_filter_only"] - values["measured_filter_only"]
    ) < 0.05
