"""Observability overhead guard.

The default-on instrumentation (counters, histograms, event records)
must not tax the recovery hot path: an instrumented ``SwdEcc.recover``
is asserted to stay within 10% of a baseline engine wired to the null
registry and a discarding event log.  Spans are opt-in and disabled
here, matching the tier-1 configuration.

Timing uses min-of-N batches: each batch runs the same fixed set of
recover calls, and the minimum batch time is the least-noisy estimate
of the true cost.  Both variants are measured interleaved to cancel
drift from machine load, and a measurement that lands over budget is
re-taken (up to three attempts, best ratio wins) so a loaded CI host
does not fail the gate on scheduler noise — the budget itself never
loosens.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import emit
from repro.analysis.experiments import default_code
from repro.core import RecoveryContext, SwdEcc
from repro.ecc.channel import double_bit_patterns
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import NullEventLog
from repro.obs.metrics import NULL_REGISTRY
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark

BATCHES = 7
TOLERANCE = 1.10  # instrumented may cost at most 10% more
ATTEMPTS = 3  # re-measure on a noisy host; best ratio is the verdict


def _workload(code):
    """A fixed, deterministic set of DUE words to recover."""
    image = synthesize_benchmark("mcf", length=512)
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    patterns = double_bit_patterns(code.n)[:40]
    words = image.words[:8]
    received = [
        pattern.apply(code.encode(word))
        for word in words
        for pattern in patterns
    ]
    return context, received


def _time_batch(engine, context, received) -> float:
    start = time.perf_counter()
    for word in received:
        engine.recover(word, context)
    return time.perf_counter() - start


def _null_engine():
    """Build an engine whose cached metrics/events all discard.

    Metric objects are resolved at construction — including the
    op-level energy counters the *code object itself* carries — so the
    swap must bracket both the code construction and
    ``SwdEcc.__init__``; reusing the fixture's code would smuggle live
    counters into the baseline.
    """
    saved_registry = obs_metrics.set_registry(NULL_REGISTRY)
    saved_log = obs_events.set_event_log(NullEventLog())
    try:
        return SwdEcc(default_code(), rng=random.Random(0))
    finally:
        obs_metrics.set_registry(saved_registry)
        obs_events.set_event_log(saved_log)


def _measure_ratio(baseline, instrumented, context, received):
    base_times, inst_times = [], []
    for _ in range(BATCHES):
        base_times.append(_time_batch(baseline, context, received))
        inst_times.append(_time_batch(instrumented, context, received))
    return min(base_times), min(inst_times)


def test_instrumented_recover_within_ten_percent(code):
    context, received = _workload(code)
    instrumented = SwdEcc(code, rng=random.Random(0))
    baseline = _null_engine()

    # Warm both paths (JIT-free, but primes caches and allocators).
    _time_batch(baseline, context, received)
    _time_batch(instrumented, context, received)

    attempts = []
    for _ in range(ATTEMPTS):
        base_best, inst_best = _measure_ratio(
            baseline, instrumented, context, received
        )
        attempts.append((inst_best / base_best, base_best, inst_best))
        if attempts[-1][0] <= TOLERANCE:
            break  # a clean measurement is the verdict; stop burning CI time

    ratio, base_best, inst_best = min(attempts)

    emit(
        "Observability | instrumentation overhead on SwdEcc.recover",
        "\n".join(
            [
                f"workload            : {len(received)} recover calls/batch, "
                f"{BATCHES} batches x {len(attempts)} attempt(s)",
                f"baseline (null obs) : {base_best * 1e3:8.2f} ms/batch (best)",
                f"instrumented        : {inst_best * 1e3:8.2f} ms/batch (best)",
                f"ratio               : {ratio:8.3f}  (budget {TOLERANCE:.2f})",
            ]
        ),
    )

    assert ratio <= TOLERANCE, (
        f"instrumented recover is {ratio:.3f}x the null-observability "
        f"baseline in the best of {ATTEMPTS} attempts, over the "
        f"{TOLERANCE:.2f}x budget"
    )
