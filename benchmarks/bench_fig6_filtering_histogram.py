"""Fig. 6 — success-rate histogram of the filtering-only strategy (bzip2).

Paper claims reproduced here: filtering-only beats random candidate
choice on average; the best-case instruction spans a wide range of
per-pattern recovery rates (~15% up to ~95% in the paper); the random
baseline concentrates around 1/12 (the reciprocal mean candidate
count).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.experiments import run_fig6
from repro.analysis.metrics import arithmetic_mean


def test_fig6_filtering_histogram(benchmark, code, images, scale):
    bzip2 = next(image for image in images if image.name == "bzip2")
    result = benchmark.pedantic(
        run_fig6,
        args=(code, bzip2),
        kwargs={"num_instructions": scale.instructions},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 6 | filtering-only recovery histograms (bzip2)", result.render())

    random_mean = arithmetic_mean(result.random_rates)
    filter_mean = arithmetic_mean(result.filter_rates)
    best_mean = arithmetic_mean(result.filter_best_rates)

    # Random choice concentrates near 1/mean-candidates ~ 1/12.
    assert 0.06 <= random_mean <= 0.12
    # Filtering-only mildly improves the average case (paper's finding).
    assert filter_mean > random_mean
    # The best case is starkly better and spans a wide range.
    assert best_mean > filter_mean
    assert max(result.filter_best_rates) >= 0.9
    assert min(result.filter_best_rates) <= 0.35
