"""Extension E2 — the forked-execution use model of Sec. III-C.

For DUEs that the offline heuristic cannot decide confidently, the
paper proposes forking execution per candidate and arbitrating on
symptoms and observable behaviour.  This bench injects decode-field
DUEs into a real compiled program, runs SWD-ECC to get candidates, and
measures how often fork arbitration reaches a correct (or observably
equivalent) outcome vs forfeiting.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.swdecc import SwdEcc
from repro.program.compiler import compile_source
from repro.sim.fork import ForkedExecution, JoinRule

BASE = 0x400000

_PROGRAM = """
fn checksum(seed, rounds) {
    let acc = seed;
    let i = 0;
    while (i < rounds) {
        acc = (acc * 31 + i) % 65521;
        i = i + 1;
    }
    return acc;
}
fn main() {
    print(checksum(7, 50));
    return checksum(7, 50);
}
"""


def test_forked_execution_arbitration(benchmark, code, scale):
    program = compile_source(_PROGRAM, base_address=BASE)
    truth_fork = ForkedExecution(program.words, BASE, 0, max_steps=100_000)
    baseline = truth_fork.run_fork(program.words[0])
    assert not baseline.result.crashed

    engine = SwdEcc(code, filters=(), rng=random.Random(0))
    rng = random.Random(2016)
    victim_count = 24 if scale.full else 10

    def run_campaign() -> dict[str, int]:
        tally = {rule.value: 0 for rule in JoinRule}
        correct = 0
        trials = 0
        # Inject decode-field double-bit errors into random instructions.
        for _ in range(victim_count):
            victim = rng.randrange(8, len(program.words))
            original = program.words[victim]
            i, j = rng.sample(range(12), 2)  # opcode/fmt-ish positions
            received = code.encode(original) ^ (1 << (38 - i)) ^ (1 << (38 - j))
            candidates = engine.recover(received).candidate_messages
            fork = ForkedExecution(
                program.words, BASE, victim, max_steps=100_000
            )
            verdict = fork.run(list(candidates))
            tally[verdict.rule.value] += 1
            trials += 1
            if verdict.chosen is not None:
                chosen = fork.run_fork(verdict.chosen).result
                truth = fork.run_fork(original).result
                if (
                    chosen.output == truth.output
                    and chosen.exit_code == truth.exit_code
                ):
                    correct += 1
        tally["observably-correct"] = correct
        tally["trials"] = trials
        return tally

    tally = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    emit(
        "Extension E2 | forked-execution arbitration over SWD-ECC candidates",
        render_table(
            ["outcome", "count"],
            [[name, count] for name, count in tally.items()],
        ),
    )
    decided = tally["sole-survivor"] + tally["converged"]
    # Arbitration must decide a healthy share of the cases, and every
    # decision it makes must be observably correct.
    assert decided >= tally["trials"] // 3
    assert tally["observably-correct"] == decided
