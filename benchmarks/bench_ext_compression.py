"""Extension E7 — compression as an alternative to SWD-ECC (Sec. III-C).

The paper: "An alternative approach to SWD-ECC might instead use
lossless compression on the message contents ... so that they have
higher entropy before being channel coded with ECC.  The tradeoffs ...
are not yet clear; we leave this to future work."

This bench quantifies the trade-off concretely.  A word whose
Frequent-Pattern-Compression image fits in 26 bits can be stored under
a (39, 26) DECTED code *in the same 39-bit footprint* as the baseline
SECDED codeword — its 2-bit DUEs simply stop existing (DECTED corrects
them).  We measure the coverage of that upgrade on realistic contents:

- instruction words (dense: immediates, registers, opcodes) — poor fit;
- typical data pages (counters, flags, pointers-with-small-offsets,
  zero-initialised regions) — good fit;

and conclude how much of the DUE problem compression removes and how
much remains for SWD-ECC.  The two techniques compose: compressible
words get deterministic protection, the rest keep heuristic recovery.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.memory.compression import compressed_bits, fits_stronger_code


def _data_page(rng: random.Random, words: int = 2048) -> list[int]:
    """Synthetic heap/stack contents with realistic value classes."""
    page = []
    for _ in range(words):
        roll = rng.random()
        if roll < 0.30:
            page.append(0)                                   # zero fill
        elif roll < 0.55:
            page.append(rng.randint(0, 255))                 # small ints
        elif roll < 0.70:
            page.append(rng.randint(0, 0xFFFF))              # medium ints
        elif roll < 0.80:
            value = rng.randint(-4096, -1)
            page.append(value & 0xFFFF_FFFF)                 # small negatives
        elif roll < 0.95:
            page.append(0x1000_0000 | (rng.randint(0, 0xFFFF) & ~3))  # pointers
        else:
            page.append(rng.getrandbits(32))                 # dense payload
    return page


def test_compression_vs_swdecc(benchmark, images):
    mcf = next(image for image in images if image.name == "mcf")
    rng = random.Random(2016)
    data_words = _data_page(rng)

    def measure():
        def coverage(words):
            upgradable = sum(1 for word in words if fits_stronger_code(word))
            mean_bits = sum(compressed_bits(word) for word in words) / len(words)
            return upgradable / len(words), mean_bits

        instruction_coverage, instruction_bits = coverage(mcf.words)
        data_coverage, data_bits = coverage(data_words)
        return {
            "instructions": (instruction_coverage, instruction_bits),
            "data": (data_coverage, data_bits),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    instruction_coverage, instruction_bits = results["instructions"]
    data_coverage, data_bits = results["data"]
    emit(
        "Extension E7 | FPC compression -> in-footprint DECTED upgrade",
        render_table(
            ["contents", "mean FPC bits (of 32+3)",
             "fits (39,26) DECTED", "2-bit DUEs left for SWD-ECC"],
            [
                ["instruction words (mcf)", f"{instruction_bits:.1f}",
                 f"{instruction_coverage:.1%}", f"{1 - instruction_coverage:.1%}"],
                ["synthetic data page", f"{data_bits:.1f}",
                 f"{data_coverage:.1%}", f"{1 - data_coverage:.1%}"],
            ],
        ),
    )
    # The trade-off the paper conjectured: data compresses well enough
    # that most of its DUE problem disappears under stronger coding...
    assert data_coverage > 0.6
    # ...but instruction words are too dense: the majority still need
    # heuristic recovery, so SWD-ECC retains its role exactly where the
    # paper's exemplar applies it.
    assert instruction_coverage < 0.5
    assert instruction_bits > data_bits


def test_hybrid_memory_absorbs_data_dues(benchmark, code):
    """The composition as a running system: a HybridEccMemory holding a
    realistic data page absorbs most injected 2-bit DUEs
    deterministically (DECTED), leaving only dense words to the
    SECDED + policy path."""
    from repro.errors import UncorrectableError
    from repro.memory.faults import FaultInjector
    from repro.memory.hybrid import HybridEccMemory

    rng = random.Random(7)
    values = _data_page(rng, words=512)

    def run_campaign():
        memory = HybridEccMemory(code)
        for index, value in enumerate(values):
            memory.write(0x1000 + 4 * index, value)
        injector = FaultInjector(memory)
        pattern_rng = random.Random(1)
        corrected = 0
        escalated = 0
        for index in range(len(values)):
            address = 0x1000 + 4 * index
            i, j = pattern_rng.sample(range(39), 2)
            injector.inject_at(address, sorted((i, j)))
            try:
                result = memory.read(address)
            except UncorrectableError:
                escalated += 1
                memory.write(address, values[index])  # repair for next round
                continue
            if result.word == values[index]:
                corrected += 1
        return memory.hybrid_stats.compressed_fraction, corrected, escalated

    compressed_fraction, corrected, escalated = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1
    )
    emit(
        "Extension E7b | hybrid memory under exhaustive 2-bit injection",
        render_table(
            ["quantity", "value"],
            [
                ["words stored compressed (DECTED)", f"{compressed_fraction:.1%}"],
                ["2-bit DUEs absorbed deterministically", corrected],
                ["2-bit DUEs escalated (dense words, crash policy)", escalated],
                ["total injections", corrected + escalated],
            ],
        ),
    )
    total = corrected + escalated
    assert corrected + escalated == 512
    # The deterministic path must carry the majority of this workload.
    assert corrected / total > 0.55
