"""Recovery-service throughput benchmark: the online path's report card.

Self-hosts a :class:`repro.service.RecoveryService` on an ephemeral
port and drives it with the closed-loop load generator
(:mod:`repro.service.loadgen` — the same methodology as
``scripts/service_loadgen.py``): N client threads over kept-alive
connections, each sending its next ``POST /recover/batch`` only after
the previous answered.  A warm-up pass populates the engine's
memoization first, so the gate measures steady state.

The service must sustain at least 5,000 recovered words per second
end-to-end (HTTP parse -> queue -> micro-batch -> engine -> JSON
response), and every run appends throughput plus p50/p90/p99 request
latency to ``BENCH_service.json`` at the repo root so regressions are
visible in history.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.service import RecoveryService
from repro.service.loadgen import generate_due_words, run_load

MIN_WORDS_PER_SECOND = 5000.0
CLIENTS = 4
REQUESTS_PER_CLIENT = 40
WORDS_PER_REQUEST = 64
CONTEXT = "mcf"
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _append_history(record) -> None:
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_service_sustains_5k_recoveries_per_second():
    words = generate_due_words()
    service = RecoveryService(port=0, max_batch=512, linger_s=0.001)
    with service:
        service.catalog.preload([CONTEXT])
        # Warm-up: populate syndrome/context memoization so the gate
        # measures steady state, not first-touch compute.
        run_load(
            "127.0.0.1", service.port,
            clients=2, requests_per_client=8,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )
        result = run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "tool": "bench_service_throughput",
        "context": CONTEXT,
        "words_per_request": WORDS_PER_REQUEST,
        **result.to_record(),
    }
    _append_history(record)

    summary = record["latency_ms"]
    emit(
        "Performance | recovery-service throughput (closed-loop HTTP)",
        "\n".join(
            [
                f"workload      : {result.words} words "
                f"({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests "
                f"x {WORDS_PER_REQUEST} words, context={CONTEXT})",
                f"throughput    : {result.throughput_words_per_s:10.0f} "
                f"words/s ({result.throughput_requests_per_s:.0f} req/s)",
                f"latency       : p50 {summary['p50']:7.2f} ms, "
                f"p90 {summary['p90']:7.2f} ms, "
                f"p99 {summary['p99']:7.2f} ms",
                f"degraded      : {result.degraded} requests, "
                f"{result.http_errors} HTTP errors",
                f"history       : {RESULTS_PATH.name}",
            ]
        ),
    )

    assert result.http_errors == 0, (
        f"{result.http_errors} HTTP errors during the closed-loop run"
    )
    assert result.recovered > 0, "no words were recovered"
    assert result.throughput_words_per_s >= MIN_WORDS_PER_SECOND, (
        f"service sustained only {result.throughput_words_per_s:.0f} "
        f"words/s; the online path promises >= "
        f"{MIN_WORDS_PER_SECOND:.0f}/s"
    )
