"""Recovery-service throughput benchmark: the online path's report card.

Self-hosts a :class:`repro.service.RecoveryService` on an ephemeral
port and drives it with the closed-loop load generator
(:mod:`repro.service.loadgen` — the same methodology as
``scripts/service_loadgen.py``): N client threads over kept-alive
connections, each sending its next ``POST /recover/batch`` only after
the previous answered.  A warm-up pass populates the engine's
memoization and the served-answer cache first, so the gate measures
steady state.

Three configurations run, and each must sustain at least 20,000
recovered words per second end-to-end (HTTP parse -> queue ->
micro-batch -> engine -> JSON response):

- in-process execution with the historical 64-word requests (the
  longest-running comparison in the history file);
- in-process with 256-word requests (amortizes per-request HTTP cost,
  the configuration that demonstrates the 100k+ words/s headline);
- pre-forked shards (``workers`` = all available cores) with 256-word
  requests, proving the multi-process path carries its IPC cost.

Every run appends throughput plus p50/p90/p99 request latency —
tagged with ``workers`` and load ``mode`` — to ``BENCH_service.json``
at the repo root so regressions are visible in history.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.service import RecoveryService
from repro.service.loadgen import generate_due_words, run_load

MIN_WORDS_PER_SECOND = 20000.0
CLIENTS = 4
REQUESTS_PER_CLIENT = 40
CONTEXT = "mcf"
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: (workers, words_per_request) per measured configuration.
CONFIGS = (
    (0, 64),
    (0, 256),
    (max(1, os.cpu_count() or 1), 256),
)


def _append_history(record) -> None:
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _measure(workers: int, words_per_request: int, words):
    service = RecoveryService(
        port=0, max_batch=1024, linger_s=0.001, workers=workers
    )
    service.catalog.preload([CONTEXT])  # before start: shards fork warm
    with service:
        # Warm-up: populate syndrome/context memoization and the
        # served-answer cache so the gate measures steady state, not
        # first-touch compute.
        run_load(
            "127.0.0.1", service.port,
            clients=2, requests_per_client=8,
            words_per_request=words_per_request,
            context=CONTEXT, words=words,
        )
        return run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
            words_per_request=words_per_request,
            context=CONTEXT, words=words,
        )


def test_service_sustains_20k_recoveries_per_second():
    words = generate_due_words()
    lines = []
    failures = []
    for workers, words_per_request in CONFIGS:
        result = _measure(workers, words_per_request, words)
        record = {
            "timestamp": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "tool": "bench_service_throughput",
            "workers": workers,
            "context": CONTEXT,
            "words_per_request": words_per_request,
            **result.to_record(),
        }
        _append_history(record)
        latency = record["latency_ms"]
        lines.append(
            f"workers={workers} wpr={words_per_request:4d} : "
            f"{result.throughput_words_per_s:9.0f} words/s  "
            f"p50 {latency['p50']:6.2f} ms  p90 {latency['p90']:6.2f} ms  "
            f"p99 {latency['p99']:6.2f} ms  "
            f"({result.degraded} degraded, {result.http_errors} errors)"
        )
        if result.http_errors:
            failures.append(
                f"workers={workers}: {result.http_errors} HTTP errors"
            )
        if not result.recovered:
            failures.append(f"workers={workers}: no words were recovered")
        if result.throughput_words_per_s < MIN_WORDS_PER_SECOND:
            failures.append(
                f"workers={workers} wpr={words_per_request}: sustained "
                f"only {result.throughput_words_per_s:.0f} words/s; the "
                f"online path promises >= {MIN_WORDS_PER_SECOND:.0f}/s"
            )

    emit(
        "Performance | recovery-service throughput (closed-loop HTTP)",
        "\n".join(
            [
                f"workload      : {CLIENTS} clients x "
                f"{REQUESTS_PER_CLIENT} requests, context={CONTEXT}",
                *lines,
                f"history       : {RESULTS_PATH.name}",
            ]
        ),
    )
    assert not failures, "; ".join(failures)
