"""Sweep-throughput benchmark: the acceleration stack's report card.

Measures ``recover()``/second on the Fig. 8 workload (filter-and-rank
strategy, exhaustive double-bit patterns over a synthetic image) for
three engine configurations:

- **serial-uncached** — all memoization disabled (``cache=False``),
  the cost model of the original implementation;
- **memoized** — syndrome-keyed enumeration plus filter/ranker context
  caches (the default configuration);
- **parallel** — memoized engines fanned out over worker processes
  (``jobs=2``; chunk setup dominates on small hosts, so no scaling is
  asserted — the parallel row is recorded for cross-host comparison).

The memoized configuration is asserted to reach at least 3x the
uncached throughput, and every run appends a record to
``BENCH_sweep.json`` at the repo root so regressions are visible in
history.  A measurement under the floor is re-taken (up to three
attempts, best speedup wins) so scheduler noise on a loaded CI host
cannot fail the gate — the floor itself never loosens.  See
``docs/performance.md`` for what each layer does.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc.channel import double_bit_patterns
from repro.program.synth import synthesize_benchmark

MIN_MEMOIZED_SPEEDUP = 3.0
PARALLEL_JOBS = 2
ATTEMPTS = 3  # re-measure on a noisy host; best speedup is the verdict
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _throughput(code, image, window, *, cache, jobs=1):
    """Run the Fig. 8-shaped sweep once; return recover() calls/second."""
    sweep = DueSweep(
        code, RecoveryStrategy.FILTER_AND_RANK, window, cache=cache
    )
    start = time.perf_counter()
    result = sweep.run(image, jobs=jobs)
    elapsed = time.perf_counter() - start
    recovers = len(result.outcomes) * result.num_instructions
    return recovers / elapsed, recovers, elapsed


def _append_history(record) -> None:
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_memoized_sweep_at_least_3x_uncached(code, scale):
    window = scale.instructions
    image = synthesize_benchmark("mcf", length=scale.image_length)
    num_patterns = len(double_bit_patterns(code.n))

    attempts = []
    for _ in range(ATTEMPTS):
        uncached_rps, recovers, uncached_s = _throughput(
            code, image, window, cache=False
        )
        memoized_rps, _, memoized_s = _throughput(
            code, image, window, cache=True
        )
        attempts.append(
            (memoized_rps / uncached_rps,
             uncached_rps, recovers, uncached_s, memoized_rps, memoized_s)
        )
        if attempts[-1][0] >= MIN_MEMOIZED_SPEEDUP:
            break  # a clean measurement is the verdict

    (memoized_speedup, uncached_rps, recovers, uncached_s,
     memoized_rps, memoized_s) = max(attempts)
    parallel_rps, _, parallel_s = _throughput(
        code, image, window, cache=True, jobs=PARALLEL_JOBS
    )

    parallel_speedup = parallel_rps / uncached_rps

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": {
            "benchmark": image.name,
            "strategy": RecoveryStrategy.FILTER_AND_RANK.value,
            "instructions": window,
            "patterns": num_patterns,
            "recovers": recovers,
        },
        "serial_uncached_rps": round(uncached_rps, 1),
        "memoized_rps": round(memoized_rps, 1),
        "parallel_rps": round(parallel_rps, 1),
        "parallel_jobs": PARALLEL_JOBS,
        "memoized_speedup": round(memoized_speedup, 2),
        "parallel_speedup": round(parallel_speedup, 2),
    }
    _append_history(record)

    emit(
        "Performance | sweep throughput (recover()/sec, Fig. 8 workload)",
        "\n".join(
            [
                f"workload         : {recovers} recovers "
                f"({num_patterns} patterns x {window} instructions, "
                f"{image.name})",
                f"serial uncached  : {uncached_rps:10.0f}/s "
                f"({uncached_s * 1e3:8.1f} ms)",
                f"memoized         : {memoized_rps:10.0f}/s "
                f"({memoized_s * 1e3:8.1f} ms, "
                f"{memoized_speedup:.2f}x)",
                f"parallel (j={PARALLEL_JOBS})   : {parallel_rps:10.0f}/s "
                f"({parallel_s * 1e3:8.1f} ms, "
                f"{parallel_speedup:.2f}x)",
                f"history          : {RESULTS_PATH.name}",
            ]
        ),
    )

    assert memoized_speedup >= MIN_MEMOIZED_SPEEDUP, (
        f"memoized sweep is only {memoized_speedup:.2f}x the uncached "
        f"baseline; the acceleration stack promises >= "
        f"{MIN_MEMOIZED_SPEEDUP:.1f}x"
    )
