"""Ablation A1 — the three recovery strategies side by side.

DESIGN.md calls out the value of each pipeline stage as a design
decision to ablate.  This bench runs random-candidate, filtering-only,
and filtering-and-ranking on the same workloads (the paper shows these
as Fig. 6 vs Fig. 8) and checks the strict ordering plus the size of
each increment.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.analysis.sweep import DueSweep, RecoveryStrategy


def test_strategy_ablation(benchmark, code, images, scale):
    workloads = [
        image for image in images if image.name in ("bzip2", "mcf")
    ]

    def run_all() -> dict[str, float]:
        means: dict[str, float] = {}
        for strategy in RecoveryStrategy:
            sweep = DueSweep(code, strategy, scale.instructions)
            results = sweep.run_many(workloads)
            means[strategy.value] = sum(
                r.mean_success_rate for r in results
            ) / len(results)
        return means

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Ablation A1 | recovery strategy comparison (bzip2 + mcf)",
        render_table(
            ["strategy", "mean recovery rate"],
            [[name, f"{value:.4f}"] for name, value in means.items()],
        ),
    )
    random_mean = means["random-candidate"]
    filter_mean = means["filter-only"]
    rank_mean = means["filter-and-rank"]
    # Strict ordering with meaningful gaps: each stage earns its keep.
    assert filter_mean > random_mean * 1.05
    assert rank_mean > filter_mean * 1.5
    # Random baseline is the reciprocal of the mean candidate count.
    assert 0.06 <= random_mean <= 0.12
