"""Extension E5 — 64-bit adaptation: (72, 64) SECDED over instruction pairs.

The paper's future work names "adapt the approach to 64-bit ISAs".
With the ubiquitous (72, 64) memory code, one ECC word protects *two*
32-bit MIPS instructions.  That changes both sides of the trade:

- the code is weaker per candidate: r = 8 over n = 72 yields ~23
  equidistant candidates per 2-bit DUE (vs ~12 for (39, 32));
- the side information is stronger per candidate: both halves must be
  legal instructions, and ranking multiplies two mnemonic frequencies.

This bench measures the net effect over all C(72,2) = 2556 patterns and
checks the headline claim: the *relative* gain of SWD-ECC over random
choice grows with word width.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.filters import InstructionPairLegalityFilter
from repro.core.rankers import PairFrequencyRanker, UniformRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, success_probability
from repro.ecc.candidates import candidate_count_profile
from repro.ecc.channel import double_bit_patterns
from repro.ecc.hsiao import hsiao_72_64
from repro.program.stats import FrequencyTable


def _sweep(engine, code, messages, context, patterns) -> float:
    total = 0.0
    cases = 0
    for message in messages:
        codeword = code.encode(message)
        for pattern in patterns:
            result = engine.recover(pattern.apply(codeword), context)
            total += success_probability(result, message)
            cases += 1
    return total / cases


def test_64bit_pair_recovery(benchmark, images, scale):
    code = hsiao_72_64()
    mcf = next(image for image in images if image.name == "mcf")
    table = FrequencyTable.from_image(mcf)
    context = RecoveryContext.for_instructions(table)

    start = 40  # skip the crt0 stub
    pair_count = 16 if scale.full else 8
    pairs = [
        (mcf.words[start + 2 * i] << 32) | mcf.words[start + 2 * i + 1]
        for i in range(pair_count)
    ]
    stride = 2 if scale.full else 6
    patterns = double_bit_patterns(code.n)[::stride]

    def run_all() -> dict[str, float]:
        random_engine = SwdEcc(
            code, filters=(), ranker=UniformRanker(), rng=random.Random(0)
        )
        swd_engine = SwdEcc(
            code,
            filters=(InstructionPairLegalityFilter(),),
            ranker=PairFrequencyRanker(),
            rng=random.Random(0),
        )
        return {
            "random candidate": _sweep(
                random_engine, code, pairs, context, patterns
            ),
            "pair filter + pair rank": _sweep(
                swd_engine, code, pairs, context, patterns
            ),
        }

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    profile = candidate_count_profile(code)
    emit(
        "Extension E5 | (72,64) SECDED over MIPS instruction pairs",
        render_table(
            ["quantity", "value"],
            [
                ["2-bit patterns", profile.num_patterns],
                ["candidates min/mean/max",
                 f"{profile.minimum}/{profile.mean:.1f}/{profile.maximum}"],
                ["random-candidate recovery", f"{means['random candidate']:.4f}"],
                ["SWD-ECC recovery", f"{means['pair filter + pair rank']:.4f}"],
                ["relative gain",
                 f"{means['pair filter + pair rank'] / means['random candidate']:.1f}x"],
            ],
        ),
    )
    assert profile.num_patterns == 2556
    # More candidates than the (39,32) code...
    assert profile.mean > 15
    # ...but the doubled side information more than compensates: the
    # gain over random exceeds the ~3.5x of the 32-bit exemplar.
    gain = means["pair filter + pair rank"] / means["random candidate"]
    assert gain > 4.0
    assert means["pair filter + pair rank"] > 0.2
