"""Sec. III-B table — MIPS-I legality counts used as side information.

Paper claims reproduced here exactly: 41/64 legal opcodes, 37/64 legal
funct values under SPECIAL, 3/32 legal fmt values under COP1.  Also
measures the overall density of legal encodings in the 32-bit space,
which is what makes legality filtering informative.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.experiments import run_isa_legality
from repro.analysis.heatmap import render_table
from repro.isa.decoder import is_legal


def test_isa_legality_counts(benchmark):
    result = benchmark.pedantic(run_isa_legality, rounds=1, iterations=1)
    emit("Sec. III-B | ISA legality counts", result.render())
    assert result.legal_opcodes == 41
    assert result.legal_functs == 37
    assert result.legal_fmts == 3


def test_random_word_legality_density(benchmark):
    rng = random.Random(2016)
    words = [rng.getrandbits(32) for _ in range(50_000)]

    def measure() -> float:
        return sum(1 for word in words if is_legal(word)) / len(words)

    density = benchmark(measure)
    emit(
        "Legal-encoding density of the 32-bit space",
        render_table(
            ["quantity", "value"],
            [["random 32-bit words that decode as legal", f"{density:.4f}"]],
        ),
    )
    # ~36/64 fully-populated opcodes plus constrained ones: well under 1.
    assert 0.4 <= density <= 0.75
