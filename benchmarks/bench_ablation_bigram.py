"""Ablation A3 — "more sophisticated side information": bigram context.

The paper's conclusion: "there is still room for improvement of this
result with more sophisticated uses of side information."  This bench
takes the obvious next step — rank candidates not only by how common
their operation is *globally* (the paper's method) but by how well it
fits *between its neighbours* (a smoothed bigram model) — and measures
the improvement on the paper's own experiment, for both the startup
window the paper analyses and a post-startup body window.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.rankers import BigramContextRanker, FrequencyRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, success_probability
from repro.ecc.channel import double_bit_patterns
from repro.isa.decoder import try_decode
from repro.program.stats import BigramTable, FrequencyTable


def _sweep_window(code, image, start, window, engine, use_bigram):
    frequency = FrequencyTable.from_image(image)
    bigram = BigramTable.from_image(image)
    patterns = double_bit_patterns(code.n)
    total = 0.0
    cases = 0
    for index in range(start, start + window):
        original = image.words[index]
        codeword = code.encode(original)
        if use_bigram:
            before = try_decode(image.words[index - 1]) if index else None
            after = (
                try_decode(image.words[index + 1])
                if index + 1 < len(image) else None
            )
            context = RecoveryContext.for_instructions(
                frequency,
                bigram_table=bigram,
                preceding_mnemonic=before.mnemonic if before else None,
                following_mnemonic=after.mnemonic if after else None,
            )
        else:
            context = RecoveryContext.for_instructions(frequency)
        for pattern in patterns:
            result = engine.recover(pattern.apply(codeword), context)
            total += success_probability(result, original)
            cases += 1
    return total / cases


def test_bigram_context_ablation(benchmark, code, images, scale):
    window = scale.instructions
    workloads = [
        image for image in images if image.name in ("bzip2", "mcf")
    ]

    def run_all():
        unigram_engine = SwdEcc(
            code, ranker=FrequencyRanker(), rng=random.Random(0)
        )
        bigram_engine = SwdEcc(
            code, ranker=BigramContextRanker(), rng=random.Random(0)
        )
        rows = []
        for image in workloads:
            for label, start in (("startup", 1), ("body", 40)):
                unigram = _sweep_window(
                    code, image, start, window, unigram_engine, False
                )
                bigram = _sweep_window(
                    code, image, start, window, bigram_engine, True
                )
                rows.append((image.name, label, unigram, bigram))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Ablation A3 | unigram (paper) vs bigram-context ranking",
        render_table(
            ["benchmark", "window", "unigram (paper)", "bigram context",
             "relative gain"],
            [
                [name, label, f"{unigram:.4f}", f"{bigram:.4f}",
                 f"{(bigram / unigram - 1):+.1%}"]
                for name, label, unigram, bigram in rows
            ],
        ),
    )
    # Honest finding: local context helps decisively where code has
    # strong idiomatic structure and can mislead on atypical stretches,
    # but on average it improves on the paper's unigram ranking and is
    # never catastrophic.
    gains = [bigram / unigram for _, _, unigram, bigram in rows]
    assert all(gain > 0.85 for gain in gains)
    assert sum(gains) / len(gains) > 1.02
