"""Fig. 8 — the headline result: filtering-and-ranking recovery rates.

Paper claims reproduced here, over all five benchmarks and all 741
2-bit error patterns:

- the overall arithmetic-mean recovery rate is ~1/3 (paper: 0.3403) —
  we accept [0.25, 0.45], since the synthetic binaries and the frozen
  H-matrix differ from the paper's exact artifacts;
- patterns confined to the opcode/funct/fmt decode fields recover far
  better than operand-field patterns, with best cases near certainty
  (paper: up to 99%);
- patterns in the low-order operand bits bottom out around the
  tie-break plateau (paper: ~15%).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.experiments import run_fig8
from repro.analysis.metrics import BitRegion


def test_fig8_filter_and_rank_recovery(benchmark, code, images, scale):
    result = benchmark.pedantic(
        run_fig8,
        args=(code, images),
        kwargs={"num_instructions": scale.instructions},
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig. 8 | filtering-and-ranking heuristic recovery "
        f"({scale.instructions} instructions/benchmark, 741 patterns)",
        result.render(),
    )

    assert 0.25 <= result.overall_mean <= 0.45, (
        f"headline mean {result.overall_mean:.4f} outside the accepted "
        "band around the paper's 0.3403"
    )
    regions = result.region_summary()
    assert regions[BitRegion.DECODE_FIELDS] > 3 * regions[BitRegion.OPERAND_FIELDS]
    curve = result.mean_curve()
    assert max(curve) >= 0.9  # near-certain recovery exists
    # Low-order-bit plateau: the last patterns (both errors in the low
    # operand bits) sit far below the decode-field region.
    tail = curve[600:]
    assert sum(tail) / len(tail) < 0.3
    # Every benchmark individually lands in a sane band.
    for sweep in result.sweeps:
        assert 0.2 <= sweep.mean_success_rate <= 0.5, sweep.benchmark
