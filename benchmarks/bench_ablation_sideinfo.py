"""Ablation A2 — sensitivity to the frequency side information.

The paper ranks candidates by mnemonic frequency measured on *the same
program image*.  How much does the quality of that table matter?  This
bench compares: (a) the matched table, (b) a cross-program table pooled
from the other four benchmarks, and (c) no table at all (uniform).  The
mixes of the five benchmarks share their power-law head, so a pooled
table should lose only a little — evidence the technique does not
require exact self-statistics.
"""

from __future__ import annotations

import random
from functools import reduce

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, success_probability
from repro.ecc.channel import double_bit_patterns
from repro.program.stats import FrequencyTable


def _mean_recovery(code, image, context, instructions: int) -> float:
    engine = SwdEcc(code, rng=random.Random(0))
    patterns = double_bit_patterns(code.n)
    encoded = [code.encode(word) for word in image.words[:instructions]]
    total = 0.0
    cases = 0
    for pattern in patterns:
        for codeword, original in zip(encoded, image.words):
            result = engine.recover(pattern.apply(codeword), context)
            total += success_probability(result, original)
            cases += 1
    return total / cases


def test_sideinfo_ablation(benchmark, code, images, scale):
    mcf = next(image for image in images if image.name == "mcf")
    others = [image for image in images if image.name != "mcf"]
    matched = FrequencyTable.from_image(mcf)
    pooled = reduce(
        lambda a, b: a.merged_with(b),
        [FrequencyTable.from_image(image) for image in others],
    )
    instructions = max(10, scale.instructions // 2)

    def run_all() -> dict[str, float]:
        return {
            "matched (same image)": _mean_recovery(
                code, mcf, RecoveryContext.for_instructions(matched), instructions
            ),
            "pooled (other 4 benchmarks)": _mean_recovery(
                code, mcf, RecoveryContext.for_instructions(pooled), instructions
            ),
            "none (uniform ranking)": _mean_recovery(
                code, mcf, RecoveryContext.for_instructions(None), instructions
            ),
        }

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Ablation A2 | frequency-table provenance (mcf)",
        render_table(
            ["side information", "mean recovery rate"],
            [[name, f"{value:.4f}"] for name, value in means.items()],
        ),
    )
    # Any frequency table beats uniform ranking decisively...
    assert means["matched (same image)"] > means["none (uniform ranking)"] * 1.3
    assert means["pooled (other 4 benchmarks)"] > means["none (uniform ranking)"] * 1.3
    # ...and because the five mixes share their power-law head,
    # cross-program statistics perform comparably to self-statistics
    # (within 20% relative) — the technique does not need exact
    # per-binary profiling.
    matched = means["matched (same image)"]
    pooled = means["pooled (other 4 benchmarks)"]
    assert abs(matched - pooled) <= 0.2 * max(matched, pooled)
