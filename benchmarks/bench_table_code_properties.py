"""Sec. IV-B code-properties table for the (39, 32) SECDED code.

Paper claims reproduced here: distance exactly 4 (corrects all 1-bit
errors, detects all 2-bit errors), 741 double-bit patterns with 8-15
candidate codewords (mean ~12).  Also times the two hot kernels of the
evaluation pipeline — syndrome decoding and candidate enumeration.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.experiments import run_code_properties
from repro.ecc.candidates import CandidateEnumerator


def test_code_properties(benchmark, code):
    result = benchmark.pedantic(run_code_properties, args=(code,), rounds=1, iterations=1)
    emit("Sec. IV-B | (39,32) SECDED properties", result.render())
    assert result.distance_at_least_4
    assert not result.distance_at_least_5
    assert result.profile.minimum == 8
    assert result.profile.maximum == 15


def test_triple_error_miscorrection(benchmark, code):
    """Beyond the paper: how SECDED treats the errors SWD-ECC's 2-bit
    assumption does not cover.  A majority of weight-3 errors are
    silently miscorrected by the hardware itself — context for why the
    BSC-conditioned double-bit model is the right regime for heuristic
    recovery."""
    from math import comb

    from repro.analysis.heatmap import render_table
    from repro.analysis.theory import triple_error_outcomes

    outcomes = benchmark.pedantic(
        triple_error_outcomes, args=(code,), rounds=1, iterations=1
    )
    total = outcomes["miscorrected"] + outcomes["detected"]
    emit(
        "Weight-3 error behaviour of (39,32) SECDED",
        render_table(
            ["outcome", "patterns", "fraction"],
            [
                ["silently miscorrected by hardware",
                 outcomes["miscorrected"],
                 f"{outcomes['miscorrected'] / total:.1%}"],
                ["detected as DUE (true word outside candidate list)",
                 outcomes["detected"],
                 f"{outcomes['detected'] / total:.1%}"],
            ],
        ),
    )
    assert total == comb(39, 3)
    # The classic truncated-Hamming behaviour: most triples miscorrect.
    assert 0.4 <= outcomes["miscorrected"] / total <= 0.8


def test_syndrome_decode_throughput(benchmark, code):
    rng = random.Random(0)
    words = [code.encode(rng.getrandbits(32)) for _ in range(512)]

    def decode_all() -> int:
        clean = 0
        for word in words:
            if code.decode(word).is_clean:
                clean += 1
        return clean

    assert benchmark(decode_all) == len(words)


def test_candidate_enumeration_throughput(benchmark, code):
    enumerator = CandidateEnumerator(code)
    rng = random.Random(1)
    received_words = []
    while len(received_words) < 256:
        word = code.encode(rng.getrandbits(32))
        i, j = rng.sample(range(code.n), 2)
        received_words.append(word ^ (1 << (38 - i)) ^ (1 << (38 - j)))

    def enumerate_all() -> int:
        total = 0
        for received in received_words:
            total += len(enumerator.candidates(received))
        return total

    total = benchmark(enumerate_all)
    assert total / len(received_words) > 8
