"""Fig. 7 — per-benchmark instruction-mix distributions.

Paper claims reproduced here: the mnemonic distributions of all five
benchmarks follow a power law spanning orders of magnitude, and ``lw``
alone is roughly 20% of every program image.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.experiments import run_fig7


def test_fig7_instruction_mix(benchmark, images):
    result = benchmark.pedantic(run_fig7, args=(images,), rounds=1, iterations=1)
    emit("Fig. 7 | instruction mixes of the five benchmarks", result.render())

    assert set(result.tables) == {"bzip2", "h264ref", "mcf", "perlbench", "povray"}
    for name, (alpha, r_squared) in result.fits.items():
        assert alpha < -1.0, f"{name}: no power-law decay (alpha={alpha})"
        assert r_squared > 0.5, f"{name}: poor power-law fit"
    for name, lw_share in result.lw_frequencies().items():
        assert 0.15 <= lw_share <= 0.30, f"{name}: lw share {lw_share}"
    # The tail spans orders of magnitude (log-scale Fig. 7b).
    for name, table in result.tables.items():
        frequencies = [f for _, f in table.ranked()]
        assert frequencies[0] / frequencies[-1] >= 100, name
