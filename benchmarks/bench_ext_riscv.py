"""Extension E8 — other ISAs (paper future work): RV32I vs MIPS-I.

The paper's conclusion proposes "instruction memories with other ISAs".
The encoding *density* of an ISA controls how hard legality filtering
prunes: MIPS-I leaves ~58 % of random 32-bit words legal, while RISC-V
RV32I — with its mandatory ``11`` low bits, sparse major-opcode table,
and funct3/funct7 constraints — leaves only ~5 %.

This bench runs the paper's experiment on both ISAs under the same
(39, 32) SECDED code and comparable compiled-code instruction mixes,
and checks the hypothesis: the sparser the encoding, the better
SWD-ECC recovers.
"""

from __future__ import annotations

import random
from collections import Counter

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.filters import InstructionLegalityFilter, OracleLegalityFilter
from repro.core.rankers import FrequencyRanker, OracleFrequencyRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, success_probability
from repro.ecc.channel import double_bit_patterns
from repro.isa.decoder import is_legal as mips_is_legal
from repro.isa_rv import generate_rv32i_words, is_legal as rv_is_legal, try_mnemonic
from repro.program.stats import FrequencyTable


def _density(is_legal_fn, samples: int = 30_000) -> float:
    rng = random.Random(2016)
    return sum(1 for _ in range(samples) if is_legal_fn(rng.getrandbits(32))) / samples


def _sweep(code, engine, words, context, window) -> tuple[float, float]:
    patterns = double_bit_patterns(code.n)
    total = 0.0
    valid = 0
    cases = 0
    for index in range(window):
        original = words[index]
        codeword = code.encode(original)
        for pattern in patterns:
            result = engine.recover(pattern.apply(codeword), context)
            total += success_probability(result, original)
            valid += result.num_valid if not result.filter_fell_back else 0
            cases += 1
    return total / cases, valid / cases


def test_cross_isa_recovery(benchmark, code, images, scale):
    window = scale.instructions
    mips = next(image for image in images if image.name == "mcf")
    rv_words = generate_rv32i_words(len(mips))
    rv_table = FrequencyTable.from_counts(
        "rv32i", dict(Counter(try_mnemonic(word) for word in rv_words))
    )
    mips_context = RecoveryContext.for_instructions(
        FrequencyTable.from_image(mips)
    )
    rv_context = RecoveryContext.for_instructions(rv_table)

    def run_both():
        mips_engine = SwdEcc(
            code, filters=(InstructionLegalityFilter(),),
            ranker=FrequencyRanker(), rng=random.Random(0),
        )
        rv_engine = SwdEcc(
            code,
            filters=(OracleLegalityFilter(rv_is_legal, "rv32i-legality"),),
            ranker=OracleFrequencyRanker(try_mnemonic, "rv32i-frequency"),
            rng=random.Random(0),
        )
        mips_mean, mips_valid = _sweep(
            code, mips_engine, mips.words[40:], mips_context, window
        )
        rv_mean, rv_valid = _sweep(
            code, rv_engine, rv_words, rv_context, window
        )
        return {
            "MIPS-I": (
                _density(mips_is_legal), mips_valid, mips_mean
            ),
            "RV32I": (
                _density(rv_is_legal), rv_valid, rv_mean
            ),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Extension E8 | cross-ISA recovery under the same (39,32) SECDED",
        render_table(
            ["ISA", "legal-encoding density", "mean valid candidates",
             "mean recovery rate"],
            [
                [name, f"{density:.3f}", f"{valid:.2f}", f"{mean:.4f}"]
                for name, (density, valid, mean) in results.items()
            ],
        ),
    )
    mips_density, mips_valid, mips_mean = results["MIPS-I"]
    rv_density, rv_valid, rv_mean = results["RV32I"]
    # The density hypothesis: sparser encodings filter harder and
    # recover better.
    assert rv_density < mips_density / 5
    assert rv_valid < mips_valid
    assert rv_mean > mips_mean * 1.2
