"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and
prints it.  By default the sweeps use a reduced instruction window so
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes; set
``REPRO_FULL_SWEEP=1`` to run at full paper scale (100 instructions
per benchmark, all 741 patterns — identical methodology to Sec. IV-A).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.analysis.experiments import default_code, default_images


@dataclass(frozen=True)
class Scale:
    """Sweep sizing knobs."""

    instructions: int
    image_length: int
    full: bool


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Reduced by default; paper scale with REPRO_FULL_SWEEP=1."""
    full = os.environ.get("REPRO_FULL_SWEEP", "") == "1"
    if full:
        return Scale(instructions=100, image_length=4096, full=True)
    return Scale(instructions=25, image_length=2048, full=False)


@pytest.fixture(scope="session")
def code():
    """The canonical (39, 32) SECDED code."""
    return default_code()


@pytest.fixture(scope="session")
def images(scale):
    """The five synthetic SPEC stand-in images."""
    return default_images(length=scale.image_length)


def emit(title: str, body: str) -> None:
    """Print a figure reproduction with a banner (shown with -s or on
    the captured stdout of the benchmark run)."""
    banner = "=" * 78
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
