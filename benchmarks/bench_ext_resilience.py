"""Extension E4 — system resilience: crash vs SWD-ECC over fault arrivals.

The paper's future work asks to "study the impact on system
resiliency".  This bench runs the survival study of
:mod:`repro.analysis.resilience`: a workload reads an ECC-protected
image while BSC faults accumulate; a conventional system panics on the
first DUE read, SWD-ECC keeps going.  Scrubbing is toggled to show the
complementarity claimed in Sec. II-B.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.analysis.resilience import ResilienceConfig, survival_study
from repro.program.synth import synthesize_benchmark


def test_survival_study(benchmark, code, scale):
    image = synthesize_benchmark("mcf", length=512)
    trials = 8 if scale.full else 4
    epochs = 40

    def run_study():
        return survival_study(
            code,
            image,
            trials=trials,
            base_config=ResilienceConfig(epochs=epochs, flip_probability=3e-4),
        )

    study = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [
        [
            label,
            f"{metrics['mean_survived_epochs']:.1f}/{epochs}",
            f"{metrics['completion_rate']:.0%}",
            f"{metrics['mean_correct_recoveries']:.1f}",
            f"{metrics['mean_silent_corruptions']:.1f}",
        ]
        for label, metrics in study.items()
    ]
    emit(
        "Extension E4 | survival study under accumulating faults",
        render_table(
            ["configuration", "survived epochs", "completed",
             "correct recoveries", "silent corruptions"],
            rows,
        ),
    )
    crash = study["crash, no scrub"]
    swd = study["SWD-ECC, no scrub"]
    swd_scrub = study["SWD-ECC + scrubbing"]
    # SWD-ECC must strictly extend survival over crash-on-DUE.
    assert swd["mean_survived_epochs"] > crash["mean_survived_epochs"]
    assert swd["completion_rate"] >= crash["completion_rate"]
    # SWD-ECC absorbs DUEs (it recovers at least sometimes).
    assert swd["mean_correct_recoveries"] > 0
    # Scrubbing reduces the number of DUEs SWD-ECC has to absorb.
    total_swd = swd["mean_correct_recoveries"] + swd["mean_silent_corruptions"]
    total_scrubbed = (
        swd_scrub["mean_correct_recoveries"]
        + swd_scrub["mean_silent_corruptions"]
    )
    assert total_scrubbed <= total_swd
