"""Extension E3 — SECDED alternatives: (72, 64), DEC, and DECTED.

Sec. II-A frames DECTED/BCH as the costlier alternative to SECDED and
the paper's future work asks about other codes.  This bench compares:

- storage overhead and guarantees of (39,32) / (72,64) SECDED,
  (44,32) DEC, and (45,32) DECTED;
- SWD-ECC one level up: candidate enumeration for *3-bit* DUEs under
  DECTED (radius-3 list decoding), showing the trial-flip procedure
  generalises beyond the paper's exemplar.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.ecc.bch import dec_code, dected_code
from repro.ecc.candidates import CandidateEnumerator
from repro.ecc.hsiao import hsiao_72_64


def test_code_family_comparison(benchmark, code):
    def build_all():
        return {
            "SECDED (39,32)": code,
            "SECDED (72,64)": hsiao_72_64(),
            "DEC BCH (44,32)": dec_code(),
            "DECTED (45,32)": dected_code(),
        }

    codes = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for name, c in codes.items():
        overhead = (c.n - c.k) / c.k
        # Verified minimum distance d gives the guaranteed detection of
        # a bounded-distance decoder: t corrected, d - 1 - t detected.
        d = 2
        while c.verify_minimum_distance(d + 1):
            d += 1
        t = c.correctable_bits()
        rows.append([
            name,
            f"{c.n - c.k} bits",
            f"{overhead:.1%}",
            t,
            d - 1 - t,
        ])
    emit(
        "Extension E3 | memory code family comparison",
        render_table(
            ["code", "redundancy", "overhead", "corrects", "detects"],
            rows,
        ),
    )
    # DECTED costs nearly twice the redundancy of SECDED at k = 32.
    assert codes["DECTED (45,32)"].r >= 13
    assert codes["SECDED (39,32)"].r == 7
    # Distance guarantees.
    assert codes["DEC BCH (44,32)"].verify_minimum_distance(5)
    assert codes["DECTED (45,32)"].verify_minimum_distance(6)


def test_dected_3bit_due_enumeration(benchmark, scale):
    """SWD-ECC's first requirement, one weight up: enumerate the
    equidistant candidates of 3-bit DUEs under DECTED."""
    code = dected_code()
    enumerator = CandidateEnumerator(code)
    rng = random.Random(3)
    cases = []
    while len(cases) < (40 if scale.full else 12):
        codeword = code.encode(rng.getrandbits(32))
        positions = rng.sample(range(code.n), 3)
        received = codeword
        for position in positions:
            received ^= 1 << (code.n - 1 - position)
        cases.append((codeword, received))

    def enumerate_all():
        sizes = []
        hits = 0
        for codeword, received in cases:
            candidates = enumerator.candidates_within_radius(received, 3)
            sizes.append(len(candidates))
            hits += codeword in candidates
        return sizes, hits

    sizes, hits = benchmark.pedantic(enumerate_all, rounds=1, iterations=1)
    emit(
        "Extension E3 | DECTED 3-bit DUE candidate lists",
        render_table(
            ["quantity", "value"],
            [
                ["cases", len(cases)],
                ["true codeword recovered in list", hits],
                ["min candidates", min(sizes)],
                ["max candidates", max(sizes)],
                ["mean candidates", f"{sum(sizes) / len(sizes):.2f}"],
            ],
        ),
    )
    # The true codeword is always in the list, and DECTED's larger
    # distance keeps candidate lists far smaller than SECDED's ~12.
    assert hits == len(cases)
    assert max(sizes) < 12
