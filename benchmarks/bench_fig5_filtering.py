"""Fig. 5 — candidate counts vs legality-filtered valid-message counts.

Paper claims reproduced here (mcf, first N instructions, all 741
patterns): (a) the candidate count is independent of the stored
instruction (linearity of the code); (b) legality filtering removes
roughly two candidates on average; (c) some (pattern, instruction)
cells are filtered down to a *single* valid message, making recovery
certain.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.experiments import run_fig5


def test_fig5_filtering(benchmark, code, images, scale):
    mcf = next(image for image in images if image.name == "mcf")
    result = benchmark.pedantic(
        run_fig5,
        args=(code, mcf),
        kwargs={"num_instructions": scale.instructions},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 5 | filtering candidate messages (mcf)", result.render())
    assert result.candidates_message_independent
    assert 11.5 <= result.mean_candidates <= 12.5
    # Filtering must remove a nontrivial share of candidates (paper: ~2).
    reduction = result.mean_candidates - result.mean_valid
    assert 1.0 <= reduction <= 6.0
    # The certain-recovery best case exists.
    assert result.single_valid_fraction > 0.0
