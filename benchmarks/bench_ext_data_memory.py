"""Extension E1 — data-memory recovery heuristics of Sec. III-B.

The paper sketches (but does not evaluate) heuristic recovery for DUEs
in *data* memory: bound the magnitude of small unsigned integers,
restrict pointers to the allocated address range, and prefer candidates
close to their cache-line neighbours.  This bench evaluates all three
on synthetic data pages and compares them with blind random choice.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.heatmap import render_table
from repro.core.filters import IntegerMagnitudeFilter, PointerRangeFilter
from repro.core.rankers import (
    BitwiseSimilarityRanker,
    MagnitudeSimilarityRanker,
    UniformRanker,
)
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, success_probability
from repro.ecc.channel import double_bit_patterns


def _sweep(engine, code, values, contexts, patterns) -> float:
    total = 0.0
    cases = 0
    for value, context in zip(values, contexts):
        codeword = code.encode(value)
        for pattern in patterns:
            result = engine.recover(pattern.apply(codeword), context)
            total += success_probability(result, value)
            cases += 1
    return total / cases


def test_data_memory_heuristics(benchmark, code, scale):
    rng = random.Random(42)
    patterns = double_bit_patterns(code.n)[:: 4 if scale.full else 12]

    # Workload 1: arrays of small unsigned integers (counters, sizes).
    small_ints = [rng.randint(0, 4095) for _ in range(24)]
    int_contexts = [
        RecoveryContext.for_data(
            value_bound=4096,
            neighborhood=tuple(
                v for j, v in enumerate(small_ints) if j != i
            )[:7],
        )
        for i in range(len(small_ints))
    ]

    # Workload 2: heap pointers into a 1 MiB allocation.
    heap_low, heap_high = 0x1000_0000, 0x1010_0000
    pointers = [
        (rng.randrange(heap_low, heap_high) & ~3) for _ in range(24)
    ]
    pointer_contexts = [
        RecoveryContext.for_data(
            pointer_range=(heap_low, heap_high),
            neighborhood=tuple(
                v for j, v in enumerate(pointers) if j != i
            )[:7],
        )
        for i in range(len(pointers))
    ]

    def run_all() -> dict[str, float]:
        blind = SwdEcc(code, filters=(), ranker=UniformRanker(),
                       rng=random.Random(0))
        magnitude = SwdEcc(
            code,
            filters=(IntegerMagnitudeFilter(),),
            ranker=MagnitudeSimilarityRanker(),
            rng=random.Random(0),
        )
        pointer = SwdEcc(
            code,
            filters=(PointerRangeFilter(),),
            ranker=BitwiseSimilarityRanker(),
            rng=random.Random(0),
        )
        return {
            "ints: random candidate": _sweep(
                blind, code, small_ints, int_contexts, patterns
            ),
            "ints: magnitude filter + similarity": _sweep(
                magnitude, code, small_ints, int_contexts, patterns
            ),
            "pointers: random candidate": _sweep(
                blind, code, pointers, pointer_contexts, patterns
            ),
            "pointers: range filter + bit similarity": _sweep(
                pointer, code, pointers, pointer_contexts, patterns
            ),
        }

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Extension E1 | data-memory heuristic recovery (Sec. III-B ideas)",
        render_table(
            ["workload / strategy", "mean recovery rate"],
            [[name, f"{value:.4f}"] for name, value in means.items()],
        ),
    )
    # Side information must beat blind choice decisively on both types.
    assert (
        means["ints: magnitude filter + similarity"]
        > 2 * means["ints: random candidate"]
    )
    assert (
        means["pointers: range filter + bit similarity"]
        > 2 * means["pointers: random candidate"]
    )
