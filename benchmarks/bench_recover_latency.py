"""Single-word ``recover()`` latency: precompiled vs memoized vs uncached.

The service-throughput benchmark exercises the batched HTTP path; this
one isolates the engine itself.  Three engine configurations recover
the same kind of double-bit-error words (mcf image, all 741 patterns)
under one stable instruction-memory context:

- ``uncached``     — ``SwdEcc(cache=False)``, measured over *distinct*
  words with the module-level decoder memo cleared before every pass,
  so every call pays full enumeration + decode + filter + rank cost;
- ``memoized``     — ``SwdEcc(cache=True)`` (the pre-table default),
  measured steady-state after a warm-up pass;
- ``precompiled``  — ``SwdEcc(precompile=True)``, the syndrome decode
  table fast path, also measured steady-state.

Throughput is gated on the *minimum* per-call time across several
tight untimed-loop passes — the noise-robust estimator on a shared
box, and conservative for the gate because uncached noise can only
push its best pass *down*.  A separate per-call sampling pass
(``perf_counter_ns`` around each ``recover()``) supplies the reported
p50/p99 microseconds; it is not used for the gate.

The gate asserts the tentpole's promise: precompiled recoveries/s must
be at least ``MIN_SPEEDUP``x the uncached configuration.  Every run
appends one record per configuration to ``BENCH_recover.json`` at the
repo root.
"""

from __future__ import annotations

import json
import random
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter, perf_counter_ns

from benchmarks.conftest import emit
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32
from repro.ecc.channel import double_bit_patterns
from repro.isa import decoder as isa_decoder
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark

MIN_SPEEDUP = 10.0
CONTEXT = "mcf"
IMAGE_LENGTH = 2048
SEED = 2016
#: Distinct DUE words per measurement pass (4 words per pattern).
WORDS_PER_PASS = 4 * 741
#: Tight-loop passes whose per-call minimum becomes the gated figure.
PASSES = 5
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_recover.json"

MODES = ("uncached", "memoized", "precompiled")


def _append_history(record) -> None:
    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _due_word_sets(code, image) -> list[list[int]]:
    """``PASSES`` disjoint sets of distinct double-bit DUE words.

    Word index cycles the image while the pattern index strides by 7
    (coprime with 741), so every (word, pattern) pair — and hence every
    received word — is distinct across all sets.
    """
    patterns = [pattern.vector for pattern in double_bit_patterns(code.n)]
    words = [
        code.encode(image.words[i % len(image.words)])
        ^ patterns[(i * 7) % len(patterns)]
        for i in range(PASSES * WORDS_PER_PASS)
    ]
    return [
        words[i * WORDS_PER_PASS:(i + 1) * WORDS_PER_PASS]
        for i in range(PASSES)
    ]


def _engine(mode: str, code) -> SwdEcc:
    if mode == "uncached":
        return SwdEcc(
            code, tie_break=TieBreak.FIRST, rng=random.Random(0), cache=False
        )
    if mode == "memoized":
        return SwdEcc(code, tie_break=TieBreak.FIRST, rng=random.Random(0))
    return SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0), precompile=True
    )


def _clear_decoder_memo() -> None:
    # Other benchmarks (or earlier passes) may have warmed the
    # module-level decoder memo for these words' candidate messages;
    # clear it so "uncached" really pays first-touch decode cost.
    isa_decoder._spec_for_word.cache_clear()


def _measure(mode: str, code, word_sets, context):
    engine = _engine(mode, code)
    recover = engine.recover
    if mode != "uncached":
        for word in word_sets[0]:  # warm-up: memo / rows / table hits
            recover(word, context)
    best_per_call = None
    for word_pass in range(PASSES):
        # Steady-state modes re-measure one warm set; uncached walks a
        # fresh distinct set each pass with the decoder memo cleared.
        words = word_sets[0] if mode != "uncached" else word_sets[word_pass]
        if mode == "uncached":
            _clear_decoder_memo()
        start = perf_counter()
        for word in words:
            recover(word, context)
        per_call = (perf_counter() - start) / len(words)
        if best_per_call is None or per_call < best_per_call:
            best_per_call = per_call
    # Percentile sampling pass (reported, not gated): per-call timing
    # adds ~100 ns of timer overhead to every call.
    if mode == "uncached":
        _clear_decoder_memo()
    samples_ns = []
    for word in word_sets[0]:
        t0 = perf_counter_ns()
        recover(word, context)
        samples_ns.append(perf_counter_ns() - t0)
    samples_ns.sort()
    calls = len(samples_ns)
    return {
        "mode": mode,
        "calls_per_pass": calls,
        "passes": PASSES,
        "recoveries_per_s": 1.0 / best_per_call,
        "best_pass_us": best_per_call * 1e6,
        "p50_us": samples_ns[calls // 2] / 1e3,
        "p99_us": samples_ns[min(calls - 1, (calls * 99) // 100)] / 1e3,
    }


def test_precompiled_recover_is_10x_uncached():
    code = canonical_secded_39_32()
    image = synthesize_benchmark(CONTEXT, length=IMAGE_LENGTH, seed=SEED)
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    word_sets = _due_word_sets(code, image)

    timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    results = {}
    notes = []
    for mode in MODES:
        results[mode] = _measure(mode, code, word_sets, context)

    def _speedup() -> float:
        return (
            results["precompiled"]["recoveries_per_s"]
            / results["uncached"]["recoveries_per_s"]
        )

    # Noise guard: a single descheduling burst can inflate every
    # precompiled pass while leaving the (30x longer) uncached passes
    # mostly untouched.  Re-measure the two gated modes a bounded
    # number of times, keeping each mode's best figures.
    retries = 0
    while _speedup() < MIN_SPEEDUP and retries < 2:
        retries += 1
        for mode in ("uncached", "precompiled"):
            remeasured = _measure(mode, code, word_sets, context)
            if (
                remeasured["recoveries_per_s"]
                > results[mode]["recoveries_per_s"]
            ):
                results[mode] = remeasured
        notes.append(f"(retry {retries}: re-measured gated modes)")

    speedup = _speedup()
    lines = [
        f"{mode:12s}: {results[mode]['recoveries_per_s']:9.0f} recover()/s  "
        f"best {results[mode]['best_pass_us']:7.2f} us  "
        f"p50 {results[mode]['p50_us']:7.2f} us  "
        f"p99 {results[mode]['p99_us']:7.2f} us"
        for mode in MODES
    ] + notes
    for mode in MODES:
        record = {
            "timestamp": timestamp,
            "tool": "bench_recover_latency",
            "context": CONTEXT,
            **results[mode],
        }
        if mode == "precompiled":
            record["speedup_vs_uncached"] = round(speedup, 2)
        _append_history(record)

    emit(
        "Performance | single-word recover() latency (decode-table fast path)",
        "\n".join(
            [
                f"workload      : {PASSES} passes x {WORDS_PER_PASS} "
                f"distinct DUE words, context={CONTEXT}",
                *lines,
                f"speedup       : precompiled is {speedup:.1f}x uncached "
                f"(gate >= {MIN_SPEEDUP:.0f}x)",
                f"history       : {RESULTS_PATH.name}",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"precompiled recover() is only {speedup:.1f}x uncached; the "
        f"decode table promises >= {MIN_SPEEDUP:.0f}x"
    )
