"""Trivial baseline codes: single parity (detect-only) and repetition.

These exist to frame the SECDED results: single parity detects any odd
number of flips but corrects nothing (every detection is a DUE), and
the (3, 1) repetition code corrects one flip at a 200% storage
overhead.  Both reuse the generic :class:`~repro.ecc.code.LinearBlockCode`
machinery, which doubles as a test of its edge cases (duplicate H
columns, k = 1).
"""

from __future__ import annotations

from repro.ecc.code import LinearBlockCode, systematic_pair
from repro.ecc.gf2 import GF2Matrix
from repro.errors import CodeConstructionError

__all__ = ["single_parity_code", "repetition_code"]


def single_parity_code(k: int) -> LinearBlockCode:
    """Return the (k + 1, k) even-parity code (d = 2, detect-only).

    Every column of H is 1, so no syndrome identifies a bit position:
    the decoder reports any odd-weight error as a DUE and silently
    accepts any even-weight error, the classic parity failure mode.
    """
    if k < 1:
        raise CodeConstructionError(f"message length must be >= 1, got {k}")
    p_matrix = GF2Matrix((1 for _ in range(k)), 1)
    generator, parity_check = systematic_pair(p_matrix)
    return LinearBlockCode(
        generator,
        parity_check,
        name=f"single parity ({k + 1},{k})",
        allow_ambiguous_columns=True,
    )


def repetition_code(copies: int) -> LinearBlockCode:
    """Return the (copies, 1) repetition code.

    With ``copies = 2t + 1`` the code has distance ``copies`` and could
    correct t errors under majority vote; the generic syndrome decoder
    here is bounded-distance t = 1, which is all the SWD-ECC framework
    requires of its substrate codes.
    """
    if copies < 3 or copies % 2 == 0:
        raise CodeConstructionError(
            f"repetition code needs an odd number of copies >= 3, got {copies}"
        )
    # Systematic form: message bit, then copies-1 parity bits each equal
    # to the message bit, so P is a single all-ones row.
    p_matrix = GF2Matrix(((1 << (copies - 1)) - 1,), copies - 1)
    generator, parity_check = systematic_pair(p_matrix)
    return LinearBlockCode(
        generator, parity_check, name=f"repetition ({copies},1)"
    )
