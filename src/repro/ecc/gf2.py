"""Dense linear algebra over GF(2) with bit-packed rows.

A :class:`GF2Matrix` stores each row as one Python integer whose
MSB-first bit *i* is the entry in column *i* (see :mod:`repro.bits` for
the indexing convention).  This makes row operations single XORs and a
matrix-vector product a popcount per row, which is what the syndrome
computations in :mod:`repro.ecc.code` need to stay fast during the
exhaustive 741-pattern sweeps of the evaluation.

The class is immutable: every operation returns a new matrix.  That
keeps code objects safely shareable between experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bits import bit_mask, parity, popcount

__all__ = ["GF2Matrix", "identity", "zeros", "from_rows", "from_columns"]


class GF2Matrix:
    """An immutable dense matrix over GF(2).

    Parameters
    ----------
    rows:
        Iterable of row values; each row is an integer whose MSB-first
        bits are the row entries.
    num_cols:
        Number of columns.  Required because leading zero columns are
        not representable in the integers alone.
    """

    __slots__ = ("_rows", "_num_cols")

    def __init__(self, rows: Iterable[int], num_cols: int) -> None:
        row_tuple = tuple(rows)
        if num_cols < 0:
            raise ValueError(f"num_cols must be non-negative, got {num_cols}")
        mask = bit_mask(num_cols)
        for index, row in enumerate(row_tuple):
            if row < 0 or row > mask:
                raise ValueError(
                    f"row {index} value 0x{row:x} does not fit in {num_cols} columns"
                )
        self._rows = row_tuple
        self._num_cols = num_cols

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return len(self._rows)

    @property
    def num_cols(self) -> int:
        """Number of columns."""
        return self._num_cols

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) pair."""
        return (len(self._rows), self._num_cols)

    @property
    def rows(self) -> tuple[int, ...]:
        """Rows as bit-packed integers (MSB-first within each row)."""
        return self._rows

    def row(self, index: int) -> int:
        """Return row *index* as a bit-packed integer."""
        return self._rows[index]

    def entry(self, row: int, col: int) -> int:
        """Return the entry at (*row*, *col*) as 0 or 1."""
        if not 0 <= col < self._num_cols:
            raise IndexError(f"column {col} out of range")
        return (self._rows[row] >> (self._num_cols - 1 - col)) & 1

    def column(self, index: int) -> int:
        """Return column *index* as a bit-packed integer (MSB = row 0)."""
        if not 0 <= index < self._num_cols:
            raise IndexError(f"column {index} out of range")
        shift = self._num_cols - 1 - index
        value = 0
        for row in self._rows:
            value = (value << 1) | ((row >> shift) & 1)
        return value

    def columns(self) -> tuple[int, ...]:
        """Return all columns as bit-packed integers."""
        return tuple(self.column(i) for i in range(self._num_cols))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def transpose(self) -> GF2Matrix:
        """Return the transpose."""
        return GF2Matrix(self.columns(), len(self._rows))

    def __add__(self, other: GF2Matrix) -> GF2Matrix:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} + {other.shape}")
        return GF2Matrix(
            (a ^ b for a, b in zip(self._rows, other._rows)), self._num_cols
        )

    def __matmul__(self, other: GF2Matrix) -> GF2Matrix:
        """Matrix product over GF(2)."""
        if self._num_cols != other.num_rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        other_cols = other.columns()
        result_rows = []
        for row in self._rows:
            packed = 0
            for col in other_cols:
                packed = (packed << 1) | parity(row & col)
            result_rows.append(packed)
        return GF2Matrix(result_rows, other.num_cols)

    def mul_vector(self, vector: int) -> int:
        """Multiply by a column vector (bit-packed, width = num_cols).

        Returns a bit-packed vector of width ``num_rows``.  This is the
        syndrome computation ``H @ r`` when *self* is a parity-check
        matrix and *vector* a received word.
        """
        if vector < 0 or vector > bit_mask(self._num_cols):
            raise ValueError(
                f"vector 0x{vector:x} does not fit in {self._num_cols} bits"
            )
        result = 0
        for row in self._rows:
            result = (result << 1) | parity(row & vector)
        return result

    def left_mul_vector(self, vector: int) -> int:
        """Multiply a row vector (width = num_rows) by this matrix.

        Returns a bit-packed vector of width ``num_cols``.  This is the
        encoding operation ``m @ G`` when *self* is a generator matrix.
        """
        if vector < 0 or vector > bit_mask(self.num_rows):
            raise ValueError(
                f"vector 0x{vector:x} does not fit in {self.num_rows} bits"
            )
        result = 0
        shift = self.num_rows - 1
        for index, row in enumerate(self._rows):
            if (vector >> (shift - index)) & 1:
                result ^= row
        return result

    # ------------------------------------------------------------------
    # Gaussian elimination and derived quantities
    # ------------------------------------------------------------------

    def rref(self) -> tuple[GF2Matrix, tuple[int, ...]]:
        """Return (reduced row echelon form, pivot column indices)."""
        rows = list(self._rows)
        n = self._num_cols
        pivots: list[int] = []
        pivot_row = 0
        for col in range(n):
            if pivot_row >= len(rows):
                break
            shift = n - 1 - col
            # Find a row with a 1 in this column at or below pivot_row.
            found = None
            for r in range(pivot_row, len(rows)):
                if (rows[r] >> shift) & 1:
                    found = r
                    break
            if found is None:
                continue
            rows[pivot_row], rows[found] = rows[found], rows[pivot_row]
            # Eliminate this column from every other row.
            pivot_value = rows[pivot_row]
            for r in range(len(rows)):
                if r != pivot_row and (rows[r] >> shift) & 1:
                    rows[r] ^= pivot_value
            pivots.append(col)
            pivot_row += 1
        return GF2Matrix(rows, n), tuple(pivots)

    def rank(self) -> int:
        """Return the rank over GF(2)."""
        _, pivots = self.rref()
        return len(pivots)

    def null_space(self) -> GF2Matrix:
        """Return a matrix whose rows form a basis of the null space.

        Solves ``self @ x = 0``; the returned matrix has one row per
        free variable (possibly zero rows).
        """
        reduced, pivots = self.rref()
        n = self._num_cols
        pivot_set = set(pivots)
        free_cols = [c for c in range(n) if c not in pivot_set]
        basis = []
        for free in free_cols:
            vector = 1 << (n - 1 - free)
            for row_index, pivot_col in enumerate(pivots):
                if (reduced.row(row_index) >> (n - 1 - free)) & 1:
                    vector |= 1 << (n - 1 - pivot_col)
            basis.append(vector)
        return GF2Matrix(basis, n)

    def is_zero(self) -> bool:
        """True if every entry is zero."""
        return all(row == 0 for row in self._rows)

    def column_weights(self) -> tuple[int, ...]:
        """Hamming weight of each column (useful for Hsiao balance)."""
        return tuple(popcount(col) for col in self.columns())

    def row_weights(self) -> tuple[int, ...]:
        """Hamming weight of each row."""
        return tuple(popcount(row) for row in self._rows)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def hstack(self, other: GF2Matrix) -> GF2Matrix:
        """Concatenate columns: ``[self | other]``."""
        if self.num_rows != other.num_rows:
            raise ValueError(
                f"row count mismatch: {self.num_rows} vs {other.num_rows}"
            )
        width = other.num_cols
        rows = (
            (a << width) | b for a, b in zip(self._rows, other._rows)
        )
        return GF2Matrix(rows, self._num_cols + width)

    def vstack(self, other: GF2Matrix) -> GF2Matrix:
        """Concatenate rows."""
        if self._num_cols != other.num_cols:
            raise ValueError(
                f"column count mismatch: {self._num_cols} vs {other.num_cols}"
            )
        return GF2Matrix(self._rows + other.rows, self._num_cols)

    def submatrix_columns(self, cols: Sequence[int]) -> GF2Matrix:
        """Return the matrix restricted to the given columns, in order."""
        n = self._num_cols
        for col in cols:
            if not 0 <= col < n:
                raise IndexError(f"column {col} out of range")
        rows = []
        for row in self._rows:
            packed = 0
            for col in cols:
                packed = (packed << 1) | ((row >> (n - 1 - col)) & 1)
            rows.append(packed)
        return GF2Matrix(rows, len(cols))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self._num_cols == other._num_cols and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._rows, self._num_cols))

    def __repr__(self) -> str:
        return f"GF2Matrix(shape={self.shape})"

    def to_lists(self) -> list[list[int]]:
        """Return the matrix as nested lists of 0/1 ints (row-major)."""
        n = self._num_cols
        return [
            [(row >> (n - 1 - c)) & 1 for c in range(n)] for row in self._rows
        ]

    def render(self) -> str:
        """Return a compact text rendering, one row per line."""
        n = self._num_cols
        return "\n".join(format(row, f"0{n}b") if n else "" for row in self._rows)


def identity(size: int) -> GF2Matrix:
    """Return the size x size identity matrix."""
    return GF2Matrix((1 << (size - 1 - i) for i in range(size)), size)


def zeros(num_rows: int, num_cols: int) -> GF2Matrix:
    """Return an all-zero matrix."""
    return GF2Matrix((0 for _ in range(num_rows)), num_cols)


def from_rows(rows: Sequence[Sequence[int]]) -> GF2Matrix:
    """Build a matrix from nested 0/1 lists (row-major)."""
    if not rows:
        return GF2Matrix((), 0)
    width = len(rows[0])
    packed = []
    for index, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(f"row {index} has length {len(row)}, expected {width}")
        value = 0
        for bit in row:
            if bit not in (0, 1):
                raise ValueError(f"entries must be 0/1, got {bit!r}")
            value = (value << 1) | bit
        packed.append(value)
    return GF2Matrix(packed, width)


def from_columns(columns: Sequence[int], num_rows: int) -> GF2Matrix:
    """Build a matrix from bit-packed columns (MSB = row 0)."""
    mask = bit_mask(num_rows)
    for index, col in enumerate(columns):
        if col < 0 or col > mask:
            raise ValueError(
                f"column {index} value 0x{col:x} does not fit in {num_rows} rows"
            )
    rows = []
    width = len(columns)
    for r in range(num_rows):
        shift = num_rows - 1 - r
        value = 0
        for col in columns:
            value = (value << 1) | ((col >> shift) & 1)
        rows.append(value)
    return GF2Matrix(rows, width)
