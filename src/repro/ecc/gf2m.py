"""Arithmetic in the finite fields GF(2^m), substrate for BCH codes.

Elements are represented as integers in ``[0, 2^m)`` whose bits are the
coefficients of a polynomial over GF(2) reduced modulo a primitive
polynomial (LSB = x^0).  Multiplication uses exp/log tables built at
construction, so products and inverses are O(1).

Binary polynomials (used for BCH generator polynomials) are likewise
integers with LSB = x^0; helpers for those live at module scope.
"""

from __future__ import annotations

from repro.errors import CodeConstructionError

__all__ = [
    "GF2mField",
    "DEFAULT_PRIMITIVE_POLYS",
    "poly_degree",
    "poly_mul",
    "poly_mod",
    "poly_divmod",
]

# Standard primitive polynomials (Lin & Costello, App. B), LSB = x^0.
DEFAULT_PRIMITIVE_POLYS: dict[int, int] = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
}


def poly_degree(poly: int) -> int:
    """Degree of a binary polynomial (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Product of two binary polynomials (carry-less multiply)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_divmod(dividend: int, divisor: int) -> tuple[int, int]:
    """Quotient and remainder of binary polynomial division."""
    if divisor == 0:
        raise ZeroDivisionError("binary polynomial division by zero")
    quotient = 0
    divisor_degree = poly_degree(divisor)
    while poly_degree(dividend) >= divisor_degree:
        shift = poly_degree(dividend) - divisor_degree
        quotient ^= 1 << shift
        dividend ^= divisor << shift
    return quotient, dividend


def poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of binary polynomial division."""
    return poly_divmod(dividend, divisor)[1]


class GF2mField:
    """The finite field GF(2^m) with exp/log table arithmetic.

    Parameters
    ----------
    m:
        Field extension degree (2 <= m <= 20 supported).
    primitive_poly:
        Primitive polynomial of degree m (LSB = x^0); defaults to the
        standard table entry.
    """

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if m < 2:
            raise CodeConstructionError(f"GF(2^m) needs m >= 2, got {m}")
        if primitive_poly is None:
            primitive_poly = DEFAULT_PRIMITIVE_POLYS.get(m)
            if primitive_poly is None:
                raise CodeConstructionError(
                    f"no default primitive polynomial for m={m}; supply one"
                )
        if poly_degree(primitive_poly) != m:
            raise CodeConstructionError(
                f"primitive polynomial degree {poly_degree(primitive_poly)} != m={m}"
            )
        self._m = m
        self._order = (1 << m) - 1
        self._poly = primitive_poly
        # Build exp/log tables by repeated multiplication by alpha = x.
        exp = [0] * (2 * self._order)
        log = [0] * (1 << m)
        value = 1
        for power in range(self._order):
            # alpha must have full order 2^m - 1: returning to 1 early
            # means the polynomial is irreducible but not primitive
            # (or not irreducible at all), and the tables would alias.
            if value == 1 and power != 0:
                raise CodeConstructionError(
                    f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
                )
            exp[power] = value
            log[value] = power
            value <<= 1
            if value >> m:
                value ^= primitive_poly
        if value != 1:
            raise CodeConstructionError(
                f"polynomial 0x{primitive_poly:x} is not primitive for m={m}"
            )
        # Duplicate the table so exp[i + j] never needs a modulo.
        for power in range(self._order, 2 * self._order):
            exp[power] = exp[power - self._order]
        self._exp = exp
        self._log = log

    @property
    def m(self) -> int:
        """Extension degree."""
        return self._m

    @property
    def order(self) -> int:
        """Multiplicative group order, 2^m - 1."""
        return self._order

    @property
    def size(self) -> int:
        """Number of field elements, 2^m."""
        return self._order + 1

    @property
    def primitive_poly(self) -> int:
        """The defining primitive polynomial."""
        return self._poly

    def _check(self, a: int) -> None:
        if not 0 <= a <= self._order:
            raise ValueError(f"0x{a:x} is not an element of GF(2^{self._m})")

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        self._check(a)
        self._check(b)
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        return self._exp[self._order - self._log[a]]

    def div(self, a: int, b: int) -> int:
        """Field division a / b."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """Raise *a* to an integer power (negative powers allowed)."""
        self._check(a)
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 to a non-positive power")
            return 0
        reduced = (self._log[a] * exponent) % self._order
        return self._exp[reduced]

    def alpha_power(self, exponent: int) -> int:
        """Return alpha^exponent for the primitive element alpha = x."""
        return self._exp[exponent % self._order]

    def log_alpha(self, a: int) -> int:
        """Return the discrete log of *a* base alpha."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("log of 0 in GF(2^m)")
        return self._log[a]

    # ------------------------------------------------------------------
    # Structures over the field
    # ------------------------------------------------------------------

    def cyclotomic_coset(self, s: int) -> tuple[int, ...]:
        """Return the 2-cyclotomic coset of *s* modulo 2^m - 1."""
        coset = []
        current = s % self._order
        while current not in coset:
            coset.append(current)
            current = (current * 2) % self._order
        return tuple(sorted(coset))

    def minimal_polynomial(self, s: int) -> int:
        """Return the minimal polynomial of alpha^s over GF(2).

        Computed as the product of ``(x - alpha^j)`` over the cyclotomic
        coset of *s*; the result always has coefficients in {0, 1} and
        is returned as a binary polynomial (LSB = x^0).
        """
        coset = self.cyclotomic_coset(s)
        # Polynomial with GF(2^m) coefficients, index = degree.
        poly = [1]
        for j in coset:
            root = self.alpha_power(j)
            # Multiply poly by (x + root).
            next_poly = [0] * (len(poly) + 1)
            for degree, coeff in enumerate(poly):
                next_poly[degree + 1] ^= coeff
                next_poly[degree] ^= self.mul(coeff, root)
            poly = next_poly
        packed = 0
        for degree, coeff in enumerate(poly):
            if coeff not in (0, 1):
                raise CodeConstructionError(
                    "minimal polynomial has a coefficient outside GF(2); "
                    "field tables are corrupt"
                )
            packed |= coeff << degree
        return packed

    def poly_eval(self, coefficients: list[int], x: int) -> int:
        """Evaluate a GF(2^m)-coefficient polynomial at *x* (Horner).

        *coefficients* are ordered by increasing degree.
        """
        result = 0
        for coeff in reversed(coefficients):
            result = self.mul(result, x) ^ coeff
        return result

    def __repr__(self) -> str:
        return f"GF2mField(m={self._m}, poly=0x{self._poly:x})"
