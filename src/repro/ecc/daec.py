"""SEC-DED-DAEC: single-error-correcting, double-error-detecting,
double-*adjacent*-error-correcting codes.

Real DRAM/SRAM upsets are frequently *adjacent* multi-bit events — a
single particle strike flips a run of physically neighbouring cells —
which a plain (39, 32) SECDED code can only flag as DUEs.  A
SEC-DED-DAEC code (Dutta & Touba 2007 and the derivatives surveyed by
Tripathi et al., arXiv:2002.07507) additionally corrects every
*adjacent* double error by construction, while keeping non-adjacent
doubles detectable.  This module provides the generic construction
check plus one frozen instance, :func:`daec_code`, a (41, 32) code.

Construction requirements (checked by :class:`DaecCode`)
--------------------------------------------------------
With H columns ``h_0 .. h_{n-1}``:

1. all columns distinct and nonzero (SEC);
2. minimum distance >= 4: no column equals the XOR of two others
   (DED — every double error is at least *detected*);
3. every adjacent-pair sum ``h_i ^ h_{i+1}`` is produced by **exactly
   one** column pair among all C(n, 2) pairs, and all ``n - 1``
   adjacent sums are distinct.

Requirement 3 is the DAEC property: an adjacent double's syndrome
identifies its pair *uniquely*, so correcting it can never silently
miscorrect a different double — any non-adjacent double lands on a
syndrome that no adjacent pair produces and stays a DUE (exactly the
words SWD-ECC then recovers heuristically).

Why (41, 32) and not (39, 32)
-----------------------------
A systematic (39, 32) DAEC code with these zero-miscorrection rules is
*impossible*: with r = 7 there are only 127 nonzero syndromes, and a
counting argument over the involution ``x -> x ^ s`` shows the 38
adjacent sums plus 39 columns plus the d >= 4 constraint cannot all be
injective — every search terminates with no solution.  r = 8 is
borderline (the expected number of valid column orderings is
vanishingly small; extensive randomized search finds none), so the
smallest practical member of the (39, 32)-class family here uses
r = 9.  This matches the literature: published SEC-DED-DAEC codes for
32-bit data also spend extra parity or accept miscorrection of some
non-adjacent doubles; we keep the zero-miscorrection guarantee instead.

The column set below was found by randomized forward-checking search
over the constraints above and is frozen as a literal so the code is
stable across library versions (same posture as
:data:`repro.ecc.matrices.CANONICAL_39_32_COLUMNS`).
"""

from __future__ import annotations

from itertools import combinations

from repro.ecc.code import DecodeResult, DecodeStatus, LinearBlockCode
from repro.ecc.gf2 import from_columns, identity
from repro.errors import CodeConstructionError

__all__ = [
    "DAEC_41_32_COLUMNS",
    "DaecCode",
    "daec_code",
    "adjacent_pair_syndromes",
    "adjacent_syndrome_set",
]

# H columns of the frozen (41, 32) SEC-DED-DAEC code, one 9-bit value
# per codeword bit position 0..40 (MSB-first).  Positions 0..31 carry
# the message, positions 32..40 the parity identity block.
DAEC_41_32_COLUMNS: tuple[int, ...] = (
    283, 338, 102, 334, 195, 186, 494, 489, 157, 142, 365, 378, 59,
    261, 216, 383, 266, 95, 303, 313, 146, 294, 415, 501, 226, 465,
    440, 459, 252, 484, 179, 214,
    256, 128, 64, 32, 16, 8, 4, 2, 1,
)


def adjacent_pair_syndromes(code: LinearBlockCode) -> dict[int, tuple[int, int]]:
    """Map each adjacent-pair syndrome of *code* to its position pair.

    For any linear code this is ``{h_i ^ h_{i+1}: (i, i + 1)}``; when
    two adjacent pairs share a syndrome (possible for non-DAEC codes)
    the lowest pair wins.  Used by the adaptive selector to classify a
    DUE as *consistent with an adjacent double* — for a true DAEC code
    the mapping is exact, for a SECDED code it is a (useful) heuristic:
    a uniformly random double-bit DUE of the canonical (39, 32) code
    lands on an adjacent-consistent syndrome ~31% of the time, while
    genuine adjacent doubles do so always.
    """
    columns = code.column_syndromes
    mapping: dict[int, tuple[int, int]] = {}
    for i in range(code.n - 1):
        mapping.setdefault(columns[i] ^ columns[i + 1], (i, i + 1))
    return mapping


def adjacent_syndrome_set(code: LinearBlockCode) -> frozenset[int]:
    """The syndromes an adjacent double-bit error can produce."""
    columns = code.column_syndromes
    return frozenset(columns[i] ^ columns[i + 1] for i in range(code.n - 1))


class DaecCode(LinearBlockCode):
    """A systematic SEC-DED-DAEC code built from explicit H columns.

    The constructor verifies the full zero-miscorrection DAEC property
    (module docstring) and :meth:`decode` extends the bounded-distance
    decoder with the adjacent-double branch.  Everything else — the
    :class:`~repro.ecc.candidates.CandidateEnumerator` walk, the
    precompiled :class:`~repro.ecc.decode_table.DecodeTable`, SWD-ECC
    recovery of the remaining (non-adjacent) DUEs — works unchanged,
    because those layers only consume ``syndrome``/``column_syndromes``
    which this class does not alter.
    """

    def __init__(
        self, columns: tuple[int, ...], k: int, r: int, name: str = ""
    ) -> None:
        if len(columns) != k + r:
            raise CodeConstructionError(
                f"expected {k + r} columns, got {len(columns)}"
            )
        expected_identity = tuple(1 << (r - 1 - i) for i in range(r))
        if tuple(columns[k:]) != expected_identity:
            raise CodeConstructionError(
                "last r columns must be the identity block for a "
                "systematic code"
            )
        self._verify_daec_property(columns, r)
        parity_check = from_columns(columns, r)
        p_matrix = parity_check.submatrix_columns(range(k)).transpose()
        generator = identity(k).hstack(p_matrix)
        super().__init__(
            generator,
            parity_check,
            name=name or f"SEC-DED-DAEC ({k + r},{k})",
        )
        # syndrome -> (mask of the two adjacent flips, (i, i+1)).
        n = k + r
        top_bit = 1 << (n - 1)
        self._adjacent_decode: dict[int, tuple[int, tuple[int, int]]] = {
            columns[i] ^ columns[i + 1]: (
                (top_bit >> i) | (top_bit >> (i + 1)),
                (i, i + 1),
            )
            for i in range(n - 1)
        }

    @staticmethod
    def _verify_daec_property(columns: tuple[int, ...], r: int) -> None:
        """Raise unless *columns* satisfy the zero-miscorrection rules."""
        n = len(columns)
        space = 1 << r
        if len(set(columns)) != n or not all(0 < c < space for c in columns):
            raise CodeConstructionError(
                "DAEC columns must be distinct nonzero r-bit values"
            )
        column_set = set(columns)
        pair_sums: dict[int, list[tuple[int, int]]] = {}
        for i, j in combinations(range(n), 2):
            s = columns[i] ^ columns[j]
            if s in column_set:
                raise CodeConstructionError(
                    f"columns {i} and {j} sum to column value 0x{s:x}: "
                    "minimum distance < 4 (a double error would "
                    "miscorrect as a single)"
                )
            pair_sums.setdefault(s, []).append((i, j))
        adjacent_sums = [columns[i] ^ columns[i + 1] for i in range(n - 1)]
        if len(set(adjacent_sums)) != n - 1:
            raise CodeConstructionError(
                "adjacent-pair syndromes are not all distinct"
            )
        for i, s in enumerate(adjacent_sums):
            if pair_sums[s] != [(i, i + 1)]:
                raise CodeConstructionError(
                    f"adjacent pair ({i},{i + 1}) shares syndrome 0x{s:x} "
                    f"with pairs {pair_sums[s]}: adjacent correction "
                    "would miscorrect a non-adjacent double"
                )

    @property
    def adjacent_decode_map(self) -> dict[int, tuple[int, tuple[int, int]]]:
        """``syndrome -> (flip mask, (i, i + 1))`` for adjacent doubles."""
        return dict(self._adjacent_decode)

    def correctable_bits(self) -> int:
        """Bounded-distance radius for *arbitrary* error patterns.

        Still 1: only *adjacent* doubles are corrected, so distance-2
        candidate enumeration (and the radius-escalation ladder) must
        keep treating generic doubles as the DUE class — exactly the
        words SWD-ECC recovers.
        """
        return 1

    def decode(self, received: int) -> DecodeResult:
        """SEC-DED-DAEC decode: singles, then adjacent doubles, else DUE."""
        result = super().decode(received)
        if result.status is not DecodeStatus.DUE:
            return result
        adjacent = self._adjacent_decode.get(result.syndrome)
        if adjacent is None:
            return result
        mask, positions = adjacent
        self._m_xor.inc()
        codeword = received ^ mask
        return DecodeResult(
            status=DecodeStatus.CORRECTED,
            codeword=codeword,
            message=self.extract_message(codeword),
            syndrome=result.syndrome,
            corrected_positions=positions,
        )


def daec_code() -> DaecCode:
    """The frozen (41, 32) SEC-DED-DAEC code (see module docstring)."""
    return DaecCode(
        DAEC_41_32_COLUMNS, k=32, r=9, name="SEC-DED-DAEC (41,32)"
    )
