"""Precompiled syndrome decode tables: the DUE space, materialized.

For a fixed (n, k) code the entire double-bit-DUE space is tiny — all
C(n, 2) column pairs of H map onto at most ``2^r`` distinct syndromes
(63 for the paper's (39, 32) SECDED code) — and both the flip-mask set
and the candidate *message offsets* of a DUE are pure functions of its
syndrome, never of the received word (the GF(2)-linearity trick
``SwdEcc.sweep_probabilities`` exploits per pattern).  This module
builds that whole mapping once, eagerly:

- ``syndrome -> DecodeEntry`` with the flip masks (bit-identical, in
  the same order, to what ``CandidateEnumerator.pair_masks`` would
  memoize lazily), the k-bit message offsets ``mask >> r``, and a
  reverse ``offset -> mask`` index so a chosen message maps back to
  its codeword in O(1);
- chunked syndrome lookup tables (``ceil(n / 13)`` tables of at most
  8192 entries) that turn the per-word ``H @ r`` multiply into a few
  list probes and XORs.

Build cost is charged to the ``ops.*`` energy counters once, here, so
per-recovery charges on the fast path can reflect only the probes a
lookup actually performs while the op-accounting stays additive.

The table is safe to *install* on any code (``pair_masks`` delegation
reproduces the lazy walk exactly), but the engine-side fast path
additionally requires :attr:`DecodeTable.supports_fast_path` — the
structural guards against exotic code subclasses that override
``syndrome``/``extract_message``, the same conservative posture as the
``sweep_probabilities`` linearity guard.
"""

from __future__ import annotations

import sys
import time

from repro.bits import bit_mask
from repro.ecc.code import LinearBlockCode
from repro.errors import DecodingError
from repro.obs import metrics as obs_metrics

__all__ = ["DecodeTable", "DecodeEntry"]

#: Width of each syndrome-lookup chunk; 13 keeps every chunk table at
#: most 8192 entries (~70 KiB of small ints for n = 39) while needing
#: only 3 probes per 39-bit word.
_CHUNK_BITS = 13

#: Words spot-checked against ``code.syndrome`` at build time.
_VERIFY_WORDS = 8


class DecodeEntry:
    """One syndrome's precompiled candidate set."""

    __slots__ = ("syndrome", "masks", "offsets", "mask_by_offset")

    def __init__(self, syndrome: int, masks: tuple[int, ...], r: int) -> None:
        self.syndrome = syndrome
        #: Flip masks, in ``CandidateEnumerator.pair_masks`` order.
        self.masks = masks
        #: Candidate message offsets ``mask >> r``, same order: the
        #: candidate messages of a received word are ``(received >> r)
        #: ^ offset`` for systematic codes.
        self.offsets = tuple(mask >> r for mask in masks)
        #: ``offset -> mask`` — recovers the chosen codeword as
        #: ``received ^ mask_by_offset[chosen_message ^ (received >> r)]``.
        self.mask_by_offset = dict(zip(self.offsets, masks))


class DecodeTable:
    """The complete syndrome→candidates decode table of one code.

    Building enumerates every unordered column pair of H once (the
    work the lazy enumerator would spread over per-syndrome misses)
    and materializes chunked syndrome tables, so a single-word
    ``recover()`` becomes syndrome XOR + table probe + (cached) rank +
    choose.  Exported via ``repro.obs``:

    - ``decode_table.builds`` / ``decode_table.entries`` /
      ``decode_table.pair_masks`` / ``decode_table.resident_bytes``
      (counters, so shard-worker deltas ship to the parent registry);
    - ``decode_table.build_seconds`` (histogram).
    """

    def __init__(self, code: LinearBlockCode) -> None:
        start_ns = time.perf_counter_ns()
        self._code = code
        n = code.n
        r = n - code.k
        self._n = n
        self._r = r
        self._word_mask = bit_mask(n)
        columns = code.column_syndromes
        syndrome_to_position = code.syndrome_to_position

        # --- syndrome -> flip masks, via the lazy walk's own algorithm
        # (identical tuples, identical order) run once per reachable
        # syndrome instead of once per cache miss.
        pair_syndromes: set[int] = set()
        for i in range(n):
            column_i = columns[i]
            for j in range(i + 1, n):
                pair_syndromes.add(column_i ^ columns[j])
        top_bit = 1 << (n - 1)
        entries: dict[int, DecodeEntry] = {}
        num_pairs = 0
        for syndrome in pair_syndromes:
            found = []
            for position, column in enumerate(columns):
                partner = syndrome_to_position.get(syndrome ^ column)
                if partner is not None and partner > position:
                    found.append((top_bit >> position) | (top_bit >> partner))
            if found:
                entries[syndrome] = DecodeEntry(syndrome, tuple(found), r)
                num_pairs += len(found)
        self._entries = entries

        # --- chunked syndrome lookup: XOR of per-chunk partial
        # syndromes reproduces H @ r exactly (each table entry is the
        # XOR of the column syndromes of its set bits).
        chunks: list[tuple[int, int, list[int]]] = []
        chunk_xors = 0
        for low in range(0, n, _CHUNK_BITS):
            width = min(_CHUNK_BITS, n - low)
            table = [0] * (1 << width)
            for value in range(1, 1 << width):
                lsb_index = low + (value & -value).bit_length() - 1
                table[value] = (
                    table[value & (value - 1)] ^ columns[n - 1 - lsb_index]
                )
            chunk_xors += len(table) - 1
            chunks.append((low, bit_mask(width), table))
        self._chunks = tuple(chunks)

        # --- fast-path guards (the sweep_probabilities posture): the
        # shift-based offsets and chunked syndromes replicate the *base
        # class* semantics, so a subclass overriding either method gets
        # the reference path, not a wrong answer.
        self.linear_extract = (
            type(code).extract_message is LinearBlockCode.extract_message
        )
        exact_syndrome = type(code).syndrome is LinearBlockCode.syndrome
        if exact_syndrome:
            probe = 0x9E3779B97F4A7C15 & self._word_mask
            for _ in range(_VERIFY_WORDS):
                if self._syndrome_unchecked(probe) != code.syndrome(probe):
                    exact_syndrome = False
                    break
                probe = (probe * 6364136223846793005 + 1442695040888963407) & self._word_mask
        self.exact_syndrome = exact_syndrome
        self.offsets_distinct = all(
            len(entry.mask_by_offset) == len(entry.offsets)
            for entry in entries.values()
        )
        # The table materializes exactly the radius-1 DUE cosets (pairs
        # of H columns).  An engine whose code corrects t >= 2 bits
        # (DEC/DECTED BCH) treats *triple*-bit patterns as its DUE
        # class, so serving it from 2-bit cosets would shadow the
        # wider enumeration — demote such codes to the lazy path.
        self.radius_one = code.correctable_bits() == 1
        #: True when the engine may serve recoveries straight from this
        #: table; False falls back to the word-by-word reference path.
        self.supports_fast_path = (
            self.radius_one
            and self.linear_extract
            and self.exact_syndrome
            and self.offsets_distinct
        )

        self.num_syndromes = len(entries)
        self.num_pairs = num_pairs
        self.resident_bytes = self._measure_resident_bytes()
        self.build_seconds = (time.perf_counter_ns() - start_ns) / 1e9

        registry = obs_metrics.get_registry()
        registry.counter(
            "decode_table.builds", help="Syndrome decode tables built"
        ).inc()
        registry.counter(
            "decode_table.entries",
            help="Distinct DUE syndromes materialized across table builds",
        ).inc(self.num_syndromes)
        registry.counter(
            "decode_table.pair_masks",
            help="Flip-pair masks materialized across table builds",
        ).inc(self.num_pairs)
        registry.counter(
            "decode_table.resident_bytes",
            help="Approximate resident size of built decode tables",
        ).inc(self.resident_bytes)
        registry.histogram(
            "decode_table.build_seconds",
            help="Wall time to build one syndrome decode table",
        ).observe(self.build_seconds)
        # The whole pair enumeration and chunk-table precompute are
        # charged here, once; per-recovery fast-path charges then cover
        # only the probes a lookup actually performs (ops-additivity).
        registry.counter(
            "ops.xor", help="Modeled GF(2) XOR word operations"
        ).inc(len(pair_syndromes) * n + chunk_xors)

    @property
    def code(self) -> LinearBlockCode:
        """The code this table was built for."""
        return self._code

    @property
    def num_chunks(self) -> int:
        """Number of syndrome-lookup chunks (probes per word)."""
        return len(self._chunks)

    @property
    def chunks(self) -> tuple[tuple[int, int, list[int]], ...]:
        """The ``(low_bit, chunk_mask, partial_syndromes)`` lookup
        chunks, for callers that inline the per-word XOR loop."""
        return self._chunks

    @property
    def entries(self) -> dict[int, DecodeEntry]:
        """The live ``syndrome -> DecodeEntry`` mapping (treat as
        read-only), for callers that inline the per-word probe."""
        return self._entries

    def _measure_resident_bytes(self) -> int:
        """Container-level size estimate of the materialized tables."""
        total = sys.getsizeof(self._entries)
        for entry in self._entries.values():
            total += (
                sys.getsizeof(entry.masks)
                + sys.getsizeof(entry.offsets)
                + sys.getsizeof(entry.mask_by_offset)
            )
            total += sum(sys.getsizeof(mask) for mask in entry.masks)
            total += sum(sys.getsizeof(offset) for offset in entry.offsets)
        for _, _, table in self._chunks:
            total += sys.getsizeof(table)
            total += sum(sys.getsizeof(value) for value in table)
        return total

    def _syndrome_unchecked(self, received: int) -> int:
        syndrome = 0
        for low, mask, table in self._chunks:
            syndrome ^= table[(received >> low) & mask]
        return syndrome

    def syndrome_of(self, received: int) -> int:
        """The r-bit syndrome of *received*, by chunked table lookup.

        Matches ``code.syndrome`` bit-for-bit (the build spot-checks
        this) including the out-of-range :class:`DecodingError`.
        """
        if received < 0 or received > self._word_mask:
            raise DecodingError(
                f"received word 0x{received:x} does not fit in {self._n} bits"
            )
        syndrome = 0
        for low, mask, table in self._chunks:
            syndrome ^= table[(received >> low) & mask]
        return syndrome

    def entry(self, syndrome: int) -> DecodeEntry | None:
        """The precompiled entry for *syndrome*, or ``None`` when no
        column pair of H produces it (the radius-escalation case)."""
        return self._entries.get(syndrome)

    def pair_masks(self, syndrome: int) -> tuple[int, ...]:
        """Drop-in for ``CandidateEnumerator.pair_masks``: identical
        tuples in identical order, for *every* syndrome (an absent
        entry means no pair produces it, so the walk would find none).
        """
        entry = self._entries.get(syndrome)
        return entry.masks if entry is not None else ()
