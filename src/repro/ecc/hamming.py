"""Hamming, shortened Hamming, and extended (SECDED) Hamming codes.

The SECDED codes commonly used for memories — including the paper's
(39, 32) and (72, 64) — are *truncated* (shortened) Hamming codes with
an extra overall parity bit, or equivalently Hsiao's odd-weight-column
construction (see :mod:`repro.ecc.hsiao`).  This module builds the
classic Hamming family:

- :func:`hamming_code` — perfect (2^r - 1, 2^r - 1 - r), d = 3;
- :func:`shortened_hamming_code` — (k + r, k) for any k, d = 3;
- :func:`extended_hamming_secded` — (k + r + 1, k), d = 4 SECDED.

The shortening explains the structure the paper highlights in Fig. 2:
because not every syndrome corresponds to a single-bit error in a
shortened code, some strings at distance 2 from a DUE are themselves
DUEs, so the number of candidate codewords varies with the error
positions.
"""

from __future__ import annotations

from repro.bits import popcount
from repro.ecc.code import LinearBlockCode, systematic_pair
from repro.ecc.gf2 import GF2Matrix
from repro.errors import CodeConstructionError

__all__ = [
    "parity_bits_for",
    "hamming_code",
    "shortened_hamming_code",
    "extended_hamming_secded",
]


def parity_bits_for(k: int) -> int:
    """Smallest r such that a Hamming code with r parity bits carries k data bits."""
    if k < 1:
        raise CodeConstructionError(f"message length must be >= 1, got {k}")
    r = 2
    while (1 << r) - 1 - r < k:
        r += 1
    return r


def _data_columns(r: int, k: int) -> list[int]:
    """Choose k distinct non-zero r-bit H columns of weight >= 2.

    Weight-1 columns are reserved for the parity identity block.
    Columns are taken in increasing numeric order, which makes the
    construction deterministic and easy to reason about in tests.
    """
    columns = [value for value in range(1, 1 << r) if popcount(value) >= 2]
    if len(columns) < k:
        raise CodeConstructionError(
            f"r={r} provides only {len(columns)} data columns, need {k}"
        )
    return columns[:k]


def hamming_code(r: int) -> LinearBlockCode:
    """Return the perfect (2^r - 1, 2^r - 1 - r) Hamming code, d = 3."""
    if r < 2:
        raise CodeConstructionError(f"Hamming codes need r >= 2, got {r}")
    k = (1 << r) - 1 - r
    return shortened_hamming_code(k, r)


def shortened_hamming_code(k: int, r: int | None = None) -> LinearBlockCode:
    """Return a systematic (k + r, k) shortened Hamming code, d = 3.

    Parameters
    ----------
    k:
        Message length in bits.
    r:
        Number of parity bits; defaults to the minimum feasible.
    """
    r_needed = parity_bits_for(k)
    if r is None:
        r = r_needed
    elif r < r_needed:
        raise CodeConstructionError(
            f"k={k} needs at least r={r_needed} parity bits, got {r}"
        )
    columns = _data_columns(r, k)
    # P row i is the H column assigned to data bit i.
    p_matrix = GF2Matrix(columns, r)
    generator, parity_check = systematic_pair(p_matrix)
    name = f"shortened Hamming ({k + r},{k})"
    if k == (1 << r) - 1 - r:
        name = f"Hamming ({k + r},{k})"
    return LinearBlockCode(generator, parity_check, name=name)


def extended_hamming_secded(k: int, r: int | None = None) -> LinearBlockCode:
    """Return a (k + r + 1, k) extended Hamming SECDED code, d = 4.

    Appends an overall parity bit to :func:`shortened_hamming_code`.
    The resulting parity-check matrix (systematic form) distinguishes
    1-bit errors (odd-looking syndromes that match a column) from 2-bit
    errors (anything else), exactly the SECDED contract of Sec. II-A.
    """
    r_needed = parity_bits_for(k)
    if r is None:
        r = r_needed
    elif r < r_needed:
        raise CodeConstructionError(
            f"k={k} needs at least r={r_needed} parity bits, got {r}"
        )
    columns = _data_columns(r, k)
    # Extended construction in systematic form: the new last parity bit
    # stores the overall parity of the codeword.  For data bit i with
    # inner column c_i (weight w_i), its contribution to the overall
    # parity is 1 (itself) + w_i (the inner parity bits it toggles), so
    # the extra P column entry is (1 + w_i) mod 2.
    extended_columns = []
    for column in columns:
        overall = (1 + popcount(column)) & 1
        extended_columns.append((column << 1) | overall)
    # Every resulting data column has odd weight (w_i even gains a 1,
    # w_i odd keeps weight odd) and the parity columns have weight 1, so
    # all columns are odd and distinct: the XOR of any two or three
    # columns is non-zero, giving minimum distance 4.  This is the same
    # odd-column argument Hsiao codes use.
    p_matrix = GF2Matrix(extended_columns, r + 1)
    generator, parity_check = systematic_pair(p_matrix)
    code = LinearBlockCode(
        generator,
        parity_check,
        name=f"extended Hamming SECDED ({k + r + 1},{k})",
    )
    if not code.verify_minimum_distance(4):
        raise CodeConstructionError(
            "extended Hamming construction failed to reach distance 4"
        )
    return code
