"""Binary BCH codes with t = 2 decoding, and a DECTED construction.

Sec. II-A of the paper names DECTED and BCH codes as the stronger —
and costlier — alternatives to SECDED for memories.  This module makes
that comparison concrete:

- :class:`BCHCode` — a (possibly shortened) primitive binary BCH code
  with algebraic decoding of up to ``t`` errors (direct solution of the
  error-locator polynomial for t <= 2, the regime memory codes use);
- :func:`dec_code` — double-error-correcting shortened BCH, e.g. the
  (44, 32) code;
- :func:`dected_code` — DEC plus an overall parity bit, e.g. (45, 32)
  DECTED: corrects 2-bit errors, flags 3-bit errors as DUEs.

Under a DECTED code the SWD-ECC story repeats one weight higher: 3-bit
DUEs have equidistant candidate codewords reachable by the trial-flip
enumeration of :class:`repro.ecc.candidates.CandidateEnumerator` with
``radius = 3``.
"""

from __future__ import annotations

from repro.bits import bit_mask
from repro.ecc.code import DecodeResult, DecodeStatus, LinearBlockCode
from repro.ecc.gf2 import GF2Matrix, identity
from repro.ecc.gf2m import GF2mField, poly_degree, poly_mod, poly_mul
from repro.errors import CodeConstructionError, DecodingError

__all__ = ["BCHCode", "bch_generator_poly", "dec_code", "dected_code"]


def bch_generator_poly(field: GF2mField, t: int) -> int:
    """Generator polynomial of the primitive t-error-correcting BCH code.

    The LCM of the minimal polynomials of alpha, alpha^2, ...,
    alpha^{2t}; since conjugates share a minimal polynomial, this is the
    product over distinct cyclotomic cosets of odd representatives.
    """
    if t < 1:
        raise CodeConstructionError(f"BCH needs t >= 1, got {t}")
    seen_cosets: set[tuple[int, ...]] = set()
    generator = 1
    for power in range(1, 2 * t + 1):
        coset = field.cyclotomic_coset(power)
        if coset in seen_cosets:
            continue
        seen_cosets.add(coset)
        generator = poly_mul(generator, field.minimal_polynomial(power))
    return generator


class BCHCode(LinearBlockCode):
    """A systematic (shortened) binary BCH code with algebraic decoding.

    Parameters
    ----------
    m:
        Field degree; the parent code has length ``2^m - 1``.
    t:
        Designed error-correction capability (1 or 2 supported by the
        decoder; the construction accepts any t).
    k:
        Message length after shortening; defaults to the full dimension.
    extended:
        Append an overall parity bit, raising the minimum distance by
        one (DEC -> DECTED when t = 2).
    """

    def __init__(
        self,
        m: int,
        t: int,
        k: int | None = None,
        extended: bool = False,
    ) -> None:
        field = GF2mField(m)
        full_length = field.order
        generator_poly = bch_generator_poly(field, t)
        parity_bits = poly_degree(generator_poly)
        full_k = full_length - parity_bits
        if full_k <= 0:
            raise CodeConstructionError(
                f"BCH(m={m}, t={t}) has no data bits (r={parity_bits})"
            )
        if k is None:
            k = full_k
        if not 1 <= k <= full_k:
            raise CodeConstructionError(
                f"cannot shorten BCH dimension {full_k} to k={k}"
            )
        self._field = field
        self._t = t
        self._generator_poly = generator_poly
        self._full_length = full_length
        self._inner_n = k + parity_bits  # BCH part, before extension
        self._extended = extended

        # Systematic P: row i (data position i, MSB-first) is the
        # remainder of x^(r + k - 1 - i) mod g(x), giving codeword
        # polynomial degrees n-1..r for data and r-1..0 for parity.
        p_rows = []
        for i in range(k):
            remainder = poly_mod(1 << (parity_bits + k - 1 - i), generator_poly)
            # Remainder bits: coefficient of x^j -> parity position with
            # MSB-first packing of degrees r-1..0.
            packed = 0
            for degree in range(parity_bits - 1, -1, -1):
                packed = (packed << 1) | ((remainder >> degree) & 1)
            p_rows.append(packed)
        if extended:
            # Extra parity column: overall parity of the systematic row
            # (the data bit itself plus its parity contributions).
            p_rows = [
                (row << 1) | ((1 + row.bit_count()) & 1) for row in p_rows
            ]
            parity_bits += 1
        p_matrix = GF2Matrix(p_rows, parity_bits)
        generator = identity(k).hstack(p_matrix)
        parity_check = p_matrix.transpose().hstack(identity(parity_bits))
        n = k + parity_bits
        label = "extended " if extended else ""
        super().__init__(
            generator,
            parity_check,
            name=f"{label}BCH ({n},{k}) t={t}",
        )

    @property
    def t(self) -> int:
        """Designed error-correction capability."""
        return self._t

    @property
    def field(self) -> GF2mField:
        """The GF(2^m) field the code is defined over."""
        return self._field

    @property
    def generator_poly(self) -> int:
        """The binary generator polynomial (LSB = x^0)."""
        return self._generator_poly

    @property
    def extended(self) -> bool:
        """True when an overall parity bit is appended."""
        return self._extended

    def correctable_bits(self) -> int:
        """The decoder corrects up to t errors."""
        return self._t

    # ------------------------------------------------------------------
    # Algebraic decoding
    # ------------------------------------------------------------------

    def _bch_syndromes(self, inner_word: int) -> list[int]:
        """Power sums S_1..S_2t of the inner (non-extended) word.

        Bit position p (MSB-first over the inner n bits) corresponds to
        polynomial degree ``inner_n - 1 - p``; shortening means degrees
        above ``inner_n - 1`` are structurally zero.
        """
        field = self._field
        degrees = []
        inner_n = self._inner_n
        word = inner_word
        degree = 0
        while word:
            if word & 1:
                degrees.append(degree)
            word >>= 1
            degree += 1
        syndromes = []
        for j in range(1, 2 * self._t + 1):
            acc = 0
            for degree in degrees:
                acc ^= field.alpha_power(j * degree)
            syndromes.append(acc)
        # Each power sum costs one table lookup (AND-class) plus one
        # XOR accumulate per set bit; charged batched, once per call.
        ops = len(degrees) * 2 * self._t
        self._m_xor.inc(ops)
        self._m_and.inc(ops)
        del inner_n
        return syndromes

    def decode(self, received: int) -> DecodeResult:
        """Decode up to t = 2 errors; anything beyond is a DUE.

        For the extended code, the overall parity bit arbitrates between
        correction and detection: a parity that disagrees with the
        inferred error weight means the true error weight exceeded t,
        so the word is flagged as a DUE instead of being miscorrected.
        """
        if self._t > 2:
            raise DecodingError(
                "algebraic decoding implemented for t <= 2 (memory-code regime)"
            )
        n = self.n
        if received < 0 or received > bit_mask(n):
            raise DecodingError(
                f"received word 0x{received:x} does not fit in {n} bits"
            )
        syndrome = self.syndrome(received)
        if syndrome == 0:
            return DecodeResult(
                status=DecodeStatus.OK,
                codeword=received,
                message=self.extract_message(received),
                syndrome=0,
            )
        if self._extended:
            inner = received >> 1
            overall_parity = (received.bit_count()) & 1
        else:
            inner = received
            overall_parity = None

        error_positions = self._locate_errors(inner)
        if error_positions is None:
            return self._due(syndrome)
        if overall_parity is not None:
            # The overall parity bit is invisible to the BCH syndromes.
            # If the parity of the received word disagrees with the
            # inferred inner error weight, the parity bit itself must
            # also be in error: total weight is inner weight + 1, which
            # is correctable only while it stays within t.
            inner_weight = len(error_positions)
            if inner_weight % 2 != overall_parity:
                if inner_weight + 1 <= self._t:
                    error_positions = error_positions + (n - 1,)
                else:
                    return self._due(syndrome)
        codeword = received
        top_bit = 1 << (n - 1)
        for position in error_positions:
            codeword ^= top_bit >> position
        if self.syndrome(codeword) != 0:
            return self._due(syndrome)
        return DecodeResult(
            status=DecodeStatus.CORRECTED,
            codeword=codeword,
            message=self.extract_message(codeword),
            syndrome=syndrome,
            corrected_positions=tuple(sorted(error_positions)),
        )

    def _locate_errors(self, inner_word: int) -> tuple[int, ...] | None:
        """Return MSB-first error positions in the inner word, or None.

        Solves the error-locator polynomial directly (Peterson's method
        for t <= 2).  Positions refer to the *extended* word when the
        code is extended (the inner word occupies positions 0..n-2).
        """
        field = self._field
        syndromes = self._bch_syndromes(inner_word)
        s1 = syndromes[0]
        s3 = syndromes[2] if self._t >= 2 else None
        inner_n = self._inner_n
        if s1 == 0 and (s3 is None or s3 == 0):
            return ()
        if s1 != 0:
            # Single-error hypothesis: S3 must equal S1^3.
            if s3 is None or s3 == field.pow(s1, 3):
                degree = field.log_alpha(s1)
                if degree < inner_n:
                    return (inner_n - 1 - degree,)
                return None
            # Double-error hypothesis: roots of x^2 + S1 x + sigma2.
            sigma2 = field.div(s3 ^ field.pow(s1, 3), s1)
            positions = []
            tried = 0
            for degree in range(inner_n):
                tried += 1
                x1 = field.alpha_power(degree)
                if field.mul(x1, x1) ^ field.mul(s1, x1) ^ sigma2 == 0:
                    positions.append(inner_n - 1 - degree)
                    if len(positions) == 2:
                        break
            # Chien-style root search: ~2 field multiplies (AND-class)
            # and 2 XORs per trial degree, charged batched.
            self._m_and.inc(2 * tried)
            self._m_xor.inc(2 * tried)
            if len(positions) == 2:
                return tuple(positions)
            return None
        # s1 == 0 but s3 != 0: not decodable as weight <= 2.
        return None

    def _due(self, syndrome: int) -> DecodeResult:
        return DecodeResult(
            status=DecodeStatus.DUE,
            codeword=None,
            message=None,
            syndrome=syndrome,
        )


def dec_code(k: int = 32, m: int = 6) -> BCHCode:
    """Shortened double-error-correcting BCH, default (44, 32)."""
    return BCHCode(m=m, t=2, k=k, extended=False)


def dected_code(k: int = 32, m: int = 6) -> BCHCode:
    """Shortened DECTED code (DEC BCH + overall parity), default (45, 32)."""
    return BCHCode(m=m, t=2, k=k, extended=True)
