"""Systematic linear block codes and bounded-distance syndrome decoding.

This module provides the generic machinery of Sec. II-A of the paper: an
(n, k) systematic linear block code over GF(2), encoding by generator
matrix, and decoding by syndrome lookup with the three outcomes the ECC
hardware reports upward — no error, corrected error (CE), or detected
but uncorrectable error (DUE).

Layout convention
-----------------
Codewords are ``n``-bit integers with MSB-first bit positions (see
:mod:`repro.bits`).  Systematic codes place the ``k`` message bits in
positions ``0..k-1`` and the ``r = n - k`` parity bits in positions
``k..n-1``, i.e. ``G = [I_k | P]`` and ``H = [P^T | I_r]``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.bits import bit_mask, popcount
from repro.ecc.gf2 import GF2Matrix, identity
from repro.errors import CodeConstructionError, DecodingError, EncodingError
from repro.obs import metrics as obs_metrics

__all__ = [
    "DecodeStatus",
    "DecodeResult",
    "LinearBlockCode",
    "systematic_pair",
]


class DecodeStatus(enum.Enum):
    """Outcome of a decode attempt, as reported by ECC hardware."""

    OK = "ok"
    """The received word is a codeword; no error was detected."""

    CORRECTED = "corrected"
    """A correctable error (CE) was found and repaired."""

    DUE = "due"
    """A detected-but-uncorrectable error; recovery is up to the system."""


@dataclass(frozen=True)
class DecodeResult:
    """Everything a decoder can report about one received word.

    Attributes
    ----------
    status:
        One of OK / CORRECTED / DUE.
    codeword:
        The decoded codeword, or ``None`` for a DUE.
    message:
        The extracted k-bit message, or ``None`` for a DUE.
    syndrome:
        The raw r-bit syndrome of the received word.
    corrected_positions:
        MSB-first bit positions that were flipped to reach the codeword
        (empty for OK and DUE).
    """

    status: DecodeStatus
    codeword: int | None
    message: int | None
    syndrome: int
    corrected_positions: tuple[int, ...] = ()

    @property
    def is_due(self) -> bool:
        """True when the word was detected as uncorrectable."""
        return self.status is DecodeStatus.DUE

    @property
    def is_clean(self) -> bool:
        """True when no error at all was detected."""
        return self.status is DecodeStatus.OK


class LinearBlockCode:
    """A systematic (n, k) linear block code with 1-bit syndrome decoding.

    The default decoder is the bounded-distance decoder used by SECDED
    hardware: correct any single-bit error, flag everything else as a
    DUE.  Code families with stronger correction (e.g. BCH in
    :mod:`repro.ecc.bch`) subclass and override :meth:`decode`.

    Parameters
    ----------
    generator:
        ``k x n`` generator matrix, systematic form ``[I_k | P]``.
    parity_check:
        ``r x n`` parity-check matrix with ``G @ H^T = 0``.
    name:
        Human-readable name, e.g. ``"Hsiao (39,32) SECDED"``.
    """

    def __init__(
        self,
        generator: GF2Matrix,
        parity_check: GF2Matrix,
        name: str = "",
        allow_ambiguous_columns: bool = False,
    ) -> None:
        k, n_g = generator.shape
        r, n_h = parity_check.shape
        if n_g != n_h:
            raise CodeConstructionError(
                f"generator has {n_g} columns but parity check has {n_h}"
            )
        if k + r != n_g:
            raise CodeConstructionError(
                f"dimensions disagree: k={k}, r={r}, n={n_g}"
            )
        product = generator @ parity_check.transpose()
        if not product.is_zero():
            raise CodeConstructionError("G @ H^T != 0: matrices are inconsistent")
        if parity_check.rank() != r:
            raise CodeConstructionError("parity-check matrix is rank deficient")
        self._generator = generator
        self._parity_check = parity_check
        self._name = name or f"({n_g},{k}) linear code"
        self._n = n_g
        self._k = k
        self._r = r
        # Syndrome of a single-bit error at position i is column i of H.
        self._column_syndromes = parity_check.columns()
        self._syndrome_to_position: dict[int, int] = {}
        ambiguous: set[int] = set()
        for position, column in enumerate(self._column_syndromes):
            if column == 0:
                raise CodeConstructionError(
                    f"H column {position} is zero: single errors there are invisible"
                )
            if column in self._syndrome_to_position:
                if not allow_ambiguous_columns:
                    raise CodeConstructionError(
                        f"H columns {self._syndrome_to_position[column]} and "
                        f"{position} are equal: single errors are ambiguous"
                    )
                ambiguous.add(column)
            else:
                self._syndrome_to_position[column] = position
        # Codes with repeated columns (d = 2, detect-only) must not
        # "correct" a bit they cannot actually locate.
        for column in ambiguous:
            del self._syndrome_to_position[column]
        # Op-level work counters (energy accounting): costs are charged
        # by closed-form formulas here rather than inside the gf2 bit
        # loops, so the hot path pays a few batched inc() calls per
        # decode instead of one per matrix row.
        registry = obs_metrics.get_registry()
        self._m_syndromes = registry.counter(
            "ops.syndrome_computes", help="Syndrome computations (H @ r)"
        )
        self._m_xor = registry.counter(
            "ops.xor", help="Modeled GF(2) XOR word operations"
        )
        self._m_and = registry.counter(
            "ops.and", help="Modeled GF(2) AND word operations"
        )

    # ------------------------------------------------------------------
    # Basic parameters
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Codeword length in bits."""
        return self._n

    @property
    def k(self) -> int:
        """Message length in bits."""
        return self._k

    @property
    def r(self) -> int:
        """Number of parity bits (n - k)."""
        return self._r

    @property
    def name(self) -> str:
        """Human-readable code name."""
        return self._name

    @property
    def generator(self) -> GF2Matrix:
        """The k x n generator matrix."""
        return self._generator

    @property
    def parity_check(self) -> GF2Matrix:
        """The r x n parity-check matrix."""
        return self._parity_check

    @property
    def column_syndromes(self) -> tuple[int, ...]:
        """Columns of H: the syndrome each single-bit error produces."""
        return self._column_syndromes

    @property
    def syndrome_to_position(self) -> dict[int, int]:
        """Map from single-bit-error syndrome to its bit position."""
        return dict(self._syndrome_to_position)

    def correctable_bits(self) -> int:
        """Number of bit errors the default decoder corrects (t = 1)."""
        return 1

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, message: int) -> int:
        """Encode a k-bit message into an n-bit codeword."""
        if message < 0 or message > bit_mask(self._k):
            raise EncodingError(
                f"message 0x{message:x} does not fit in {self._k} bits"
            )
        self._m_xor.inc(self._k)
        return self._generator.left_mul_vector(message)

    def syndrome(self, received: int) -> int:
        """Return the r-bit syndrome of an n-bit received word."""
        if received < 0 or received > bit_mask(self._n):
            raise DecodingError(
                f"received word 0x{received:x} does not fit in {self._n} bits"
            )
        # One AND + one parity-XOR per H row (see GF2Matrix.mul_vector);
        # those row ops are folded into the syndrome-compute energy
        # constant rather than charged as separate incs — syndrome() is
        # the hottest instrumented call and stays at one inc.
        self._m_syndromes.inc()
        return self._parity_check.mul_vector(received)

    def is_codeword(self, word: int) -> bool:
        """True when *word* has a zero syndrome."""
        return self.syndrome(word) == 0

    def extract_message(self, codeword: int) -> int:
        """Return the k message bits of a systematic codeword."""
        if codeword < 0 or codeword > bit_mask(self._n):
            raise DecodingError(
                f"codeword 0x{codeword:x} does not fit in {self._n} bits"
            )
        return codeword >> self._r

    def decode(self, received: int) -> DecodeResult:
        """Bounded-distance decode: fix 1-bit errors, flag the rest as DUE."""
        syndrome = self.syndrome(received)
        if syndrome == 0:
            return DecodeResult(
                status=DecodeStatus.OK,
                codeword=received,
                message=self.extract_message(received),
                syndrome=0,
            )
        position = self._syndrome_to_position.get(syndrome)
        if position is None:
            return DecodeResult(
                status=DecodeStatus.DUE,
                codeword=None,
                message=None,
                syndrome=syndrome,
            )
        self._m_xor.inc()
        codeword = received ^ (1 << (self._n - 1 - position))
        return DecodeResult(
            status=DecodeStatus.CORRECTED,
            codeword=codeword,
            message=self.extract_message(codeword),
            syndrome=syndrome,
            corrected_positions=(position,),
        )

    # ------------------------------------------------------------------
    # Code-analysis helpers
    # ------------------------------------------------------------------

    def codewords(self) -> Iterator[int]:
        """Yield all 2^k codewords (only sensible for small k)."""
        if self._k > 24:
            raise DecodingError(
                f"refusing to enumerate 2^{self._k} codewords; "
                "use verify_minimum_distance for large codes"
            )
        for message in range(1 << self._k):
            yield self.encode(message)

    def weight_distribution(self) -> dict[int, int]:
        """Return {weight: count} over all codewords (small codes only)."""
        distribution: dict[int, int] = {}
        for codeword in self.codewords():
            weight = popcount(codeword)
            distribution[weight] = distribution.get(weight, 0) + 1
        return distribution

    def minimum_distance(self) -> int:
        """Exact minimum distance by exhaustive search (small codes only)."""
        best = self._n + 1
        for codeword in self.codewords():
            if codeword != 0:
                best = min(best, popcount(codeword))
        return best

    def verify_minimum_distance(self, distance: int) -> bool:
        """Check ``d_min >= distance`` without enumerating codewords.

        A linear code has minimum distance ``>= d`` iff no non-empty set
        of at most ``d - 1`` columns of H is linearly dependent (sums to
        zero).  Cost is ``sum_{w<=d-1} C(n, w)`` XOR-sums, which is fine
        for the small ``d`` used by memory codes.
        """
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        columns = self._column_syndromes
        for weight in range(1, distance):
            for subset in combinations(columns, weight):
                acc = 0
                for column in subset:
                    acc ^= column
                if acc == 0:
                    return False
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name} n={self._n} k={self._k}>"


def systematic_pair(p_matrix: GF2Matrix) -> tuple[GF2Matrix, GF2Matrix]:
    """Build (G, H) from the parity part P of a systematic code.

    Given the ``k x r`` matrix P, returns ``G = [I_k | P]`` and
    ``H = [P^T | I_r]``, which satisfy ``G @ H^T = 0`` by construction.
    """
    k, r = p_matrix.shape
    generator = identity(k).hstack(p_matrix)
    parity_check = p_matrix.transpose().hstack(identity(r))
    return generator, parity_check
