"""Candidate-codeword enumeration for DUEs (on-demand list decoding).

This is the first requirement of SWD-ECC (Sec. III-B): given a received
word that the decoder flagged as a DUE, compute *every* codeword that
could have produced it under the assumed error weight.  For a SECDED
code and a 2-bit DUE the paper's procedure is to flip each of the n bits
in turn and keep the trial strings that the hardware would decode as
1-bit CEs; those decode targets are exactly the codewords at Hamming
distance 2 from the received word.

:class:`CandidateEnumerator` implements that procedure with a syndrome
shortcut — flipping bit *i* XORs column *i* of H into the syndrome, so
each trial is one table lookup instead of a full re-decode — plus a
generic ``radius`` mode for stronger codes (e.g. 3-bit DUEs under a
DECTED code).

Because the code is linear, the *flip patterns* that turn a DUE into a
codeword depend only on the word's syndrome, never on the word itself:
a pair (i, j) works exactly when column i XOR column j of H equals the
syndrome.  The enumerator therefore memoizes ``syndrome -> flip
masks``, so repeat enumerations over the same coset — the common case
in exhaustive sweeps, where all 741 double-bit patterns map onto at
most ``2^r`` distinct syndromes — are pure XORs instead of a fresh
n-column walk.  Cache hits and misses are exported through
``repro.obs`` as ``candidates.cache_hits`` / ``candidates.cache_misses``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb

from repro.bits import bit_mask, popcount
from repro.ecc.code import DecodeStatus, LinearBlockCode
from repro.errors import DecodingError
from repro.obs import metrics as obs_metrics

__all__ = [
    "CandidateEnumerator",
    "CandidateCountProfile",
    "candidate_count_profile",
]

#: Escalation-cache entries before the memo is cleared and restarted —
#: the same clear-in-place policy (and the same bound) as
#: ``repro.core.cache.MAX_ENTRIES``, kept as a local constant so the
#: ecc layer does not depend on the core layer.
MAX_RADIUS_ENTRIES = 1 << 16


class CandidateEnumerator:
    """Enumerates equidistant candidate codewords for a DUE.

    Parameters
    ----------
    code:
        The linear block code protecting the memory.
    memoize:
        Cache per-syndrome flip masks (and radius offsets) so repeat
        enumerations over the same coset are pure XORs.  On by default;
        disable only to measure the uncached baseline (the throughput
        benchmark does).
    """

    def __init__(self, code: LinearBlockCode, memoize: bool = True) -> None:
        self._code = code
        self._n = code.n
        self._column_syndromes = code.column_syndromes
        self._syndrome_to_position = code.syndrome_to_position
        self._memoize = memoize
        # Precompiled syndrome table (see repro.ecc.decode_table);
        # installed by SwdEcc.precompile() and consulted ahead of the
        # lazy per-syndrome walk.
        self._table = None
        # syndrome -> flip masks whose XOR reaches a distance-2 codeword
        self._pair_masks: dict[int, tuple[int, ...]] = {}
        # (syndrome, radius) -> flip offsets for the escalated search
        self._radius_offsets: dict[tuple[int, int], tuple[int, ...]] = {}
        registry = obs_metrics.get_registry()
        self._m_hits = registry.counter("candidates.cache_hits")
        self._m_misses = registry.counter("candidates.cache_misses")
        self._m_enumerations = registry.counter(
            "ops.candidate_enumerations",
            help="Candidate-codeword enumerations for DUEs",
        )
        self._m_xor = registry.counter(
            "ops.xor", help="Modeled GF(2) XOR word operations"
        )

    @property
    def code(self) -> LinearBlockCode:
        """The code this enumerator works over."""
        return self._code

    def install_table(self, table) -> None:
        """Serve :meth:`pair_masks` from a precompiled
        :class:`~repro.ecc.decode_table.DecodeTable`.

        The table covers every syndrome at once (it enumerated all
        column pairs at build), so installed lookups count as cache
        hits — the per-syndrome walk, already charged at table build,
        never runs again.  The escalation path
        (:meth:`candidates_within_radius`) deliberately bypasses the
        table: its trial-flip search is not a pair enumeration.
        """
        if table.code is not self._code:
            raise DecodingError(
                "decode table was built for a different code instance"
            )
        self._table = table

    def pair_masks(self, syndrome: int) -> tuple[int, ...]:
        """Flip masks reaching every distance-2 codeword of a coset.

        For each unordered column pair (i, j) of H with
        ``column_i XOR column_j == syndrome``, the returned tuple holds
        the n-bit mask with bits i and j set; XOR-ing any received word
        of that syndrome with each mask yields exactly the distance-2
        candidate codewords.  Results are memoized per syndrome, or
        answered directly from an installed precompiled table.
        """
        table = self._table
        if table is not None:
            self._m_hits.inc()
            return table.pair_masks(syndrome)
        masks = self._pair_masks.get(syndrome)
        if masks is not None:
            self._m_hits.inc()
            return masks
        self._m_misses.inc()
        self._m_xor.inc(self._n)  # the fresh n-column walk below
        top_bit = 1 << (self._n - 1)
        found = []
        for position, column in enumerate(self._column_syndromes):
            partner = self._syndrome_to_position.get(syndrome ^ column)
            # Each pair is discovered from both ends; keep the i < j view.
            if partner is not None and partner > position:
                found.append((top_bit >> position) | (top_bit >> partner))
        masks = tuple(found)
        if self._memoize:
            self._pair_masks[syndrome] = masks
        return masks

    def _check_due(self, received: int) -> int:
        """Validate *received* as a DUE and return its syndrome."""
        n = self._n
        if received < 0 or received > bit_mask(n):
            raise DecodingError(
                f"received word 0x{received:x} does not fit in {n} bits"
            )
        syndrome = self._code.syndrome(received)
        if syndrome == 0:
            raise DecodingError(
                "received word is a codeword, not a DUE; nothing to enumerate"
            )
        if syndrome in self._syndrome_to_position:
            raise DecodingError(
                "received word is a correctable 1-bit error, not a DUE"
            )
        return syndrome

    def candidates(self, received: int) -> tuple[int, ...]:
        """Return all codewords at Hamming distance 2 from *received*.

        *received* must be a 2-bit DUE (non-zero syndrome that matches
        no single column of H).  The true original codeword is always in
        the returned tuple when the actual error had weight 2.

        Returns candidates in increasing numeric order.
        """
        syndrome = self._check_due(received)
        masks = self.pair_masks(syndrome)
        self._m_enumerations.inc()
        self._m_xor.inc(len(masks))
        return tuple(sorted(received ^ mask for mask in masks))

    def candidate_messages(self, received: int) -> tuple[int, ...]:
        """Return the k-bit messages of :meth:`candidates`, same order."""
        return tuple(
            self._code.extract_message(codeword)
            for codeword in self.candidates(received)
        )

    def candidates_within_radius(self, received: int, radius: int) -> tuple[int, ...]:
        """Return all codewords within Hamming distance *radius*.

        Generalises :meth:`candidates` to codes whose decoder corrects
        ``t`` bits: trial-flips every combination of up to
        ``radius - t`` bits and collects the successful decodes.  The
        enumeration cost grows as ``C(n, radius - t)``.

        The set of *offsets* ``codeword XOR received`` reached this way
        is a function of (syndrome, radius) alone — each trial decode
        corrects based purely on the trial word's syndrome, which the
        flip set determines given the received word's syndrome — so the
        offsets are memoized per coset, like :meth:`pair_masks`.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        n = self._n
        if received < 0 or received > bit_mask(n):
            raise DecodingError(
                f"received word 0x{received:x} does not fit in {n} bits"
            )
        syndrome = self._code.syndrome(received)
        key = (syndrome, radius)
        offsets = self._radius_offsets.get(key)
        if offsets is not None:
            self._m_hits.inc()
            self._m_enumerations.inc()
            self._m_xor.inc(len(offsets))
            return tuple(sorted(received ^ offset for offset in offsets))
        self._m_misses.inc()
        t = self._code.correctable_bits()
        extra_flips = max(radius - t, 0)
        self._m_enumerations.inc()
        # Trial-flip XOR work below (the trial decodes count their own
        # syndrome ops via code.decode).
        self._m_xor.inc(
            sum(comb(n, w) * w for w in range(extra_flips + 1))
        )
        top_bit = 1 << (n - 1)
        found: set[int] = set()
        for flip_count in range(extra_flips + 1):
            for positions in combinations(range(n), flip_count):
                trial = received
                for position in positions:
                    trial ^= top_bit >> position
                result = self._code.decode(trial)
                if result.status is DecodeStatus.DUE:
                    continue
                codeword = result.codeword
                assert codeword is not None
                if popcount(codeword ^ received) <= radius:
                    found.add(codeword)
        if self._memoize:
            if len(self._radius_offsets) >= MAX_RADIUS_ENTRIES:
                # Clear in place, like ContextCache: bound worst-case
                # RAM under pathological syndrome/radius churn without
                # invalidating outstanding references to the dict.
                self._radius_offsets.clear()
            self._radius_offsets[key] = tuple(
                codeword ^ received for codeword in found
            )
        return tuple(sorted(found))


@dataclass(frozen=True)
class CandidateCountProfile:
    """Candidate-count statistics over all 2-bit error patterns (Fig. 4).

    Attributes
    ----------
    counts:
        ``counts[(i, j)]`` is the number of equidistant candidate
        codewords when bits *i* and *j* (MSB-first, i < j) are in error.
        By linearity this is independent of the stored message.
    """

    counts: dict[tuple[int, int], int]

    @property
    def minimum(self) -> int:
        """Best case: fewest candidates over all patterns."""
        return min(self.counts.values())

    @property
    def maximum(self) -> int:
        """Worst case: most candidates over all patterns."""
        return max(self.counts.values())

    @property
    def mean(self) -> float:
        """Average candidate count over all patterns."""
        return sum(self.counts.values()) / len(self.counts)

    @property
    def num_patterns(self) -> int:
        """Number of 2-bit patterns (741 for n = 39)."""
        return len(self.counts)

    def as_matrix(self, width: int) -> list[list[int]]:
        """Return a symmetric width x width matrix (0 on the diagonal)."""
        matrix = [[0] * width for _ in range(width)]
        for (i, j), count in self.counts.items():
            matrix[i][j] = count
            matrix[j][i] = count
        return matrix


def candidate_count_profile(code: LinearBlockCode) -> CandidateCountProfile:
    """Compute the Fig. 4 heatmap data for *code*.

    Because the code is linear, the number of candidates for a 2-bit DUE
    depends only on the error positions, not the stored codeword; we
    evaluate every pattern against the all-zero codeword.  Each count is
    the number of unordered column pairs of H whose XOR equals the XOR
    of the two error columns (the original codeword included).
    """
    enumerator = CandidateEnumerator(code)
    n = code.n
    top_bit = 1 << (n - 1)
    counts: dict[tuple[int, int], int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            received = (top_bit >> i) | (top_bit >> j)
            counts[(i, j)] = len(enumerator.candidates(received))
    return CandidateCountProfile(counts=counts)
