"""Canonical, frozen parity-check matrices for the evaluation.

The paper uses the (39, 32) SECDED generator/parity-check pair from the
Lattice Semiconductor ECC reference design RD1025 (its ref. [39]).
That document is not redistributable, so the evaluation here pins an
equivalent code: the odd-weight-column Hsiao (39, 32) construction from
:mod:`repro.ecc.hsiao`, with its H columns frozen as literals below so
results are stable even if the greedy column selection ever changes.

Equivalence argument (also in DESIGN.md): both are distance-4 SECDED
codes of identical (n, k) from the truncated-Hamming/Hsiao family, so
they share every property the evaluation depends on — all 1-bit errors
corrected, all 2-bit errors detected, and a position-dependent
candidate-codeword count for 2-bit DUEs ranging 8..15 with mean ~12
(the paper's Fig. 4 reports exactly that range for RD1025's matrix).
"""

from __future__ import annotations

from repro.ecc.code import LinearBlockCode
from repro.ecc.gf2 import from_columns, identity
from repro.errors import CodeConstructionError

__all__ = ["CANONICAL_39_32_COLUMNS", "canonical_secded_39_32", "code_from_h_columns"]

# H columns for the canonical (39, 32) SECDED code, one 7-bit value per
# codeword bit position 0..38 (MSB-first).  Positions 0..31 carry the
# message (all odd weight >= 3), positions 32..38 the parity identity.
CANONICAL_39_32_COLUMNS: tuple[int, ...] = (
    7, 56, 67, 28, 97, 14, 112, 11, 52, 69, 26, 98, 13, 19, 100, 88,
    35, 44, 81, 22, 104, 21, 42, 70, 25, 37, 74, 38, 41, 82, 84, 49,
    64, 32, 16, 8, 4, 2, 1,
)


def code_from_h_columns(
    columns: tuple[int, ...], k: int, r: int, name: str
) -> LinearBlockCode:
    """Build a systematic code from explicit H columns.

    The last *r* columns must form the identity block (in MSB-first row
    order, that is ``2^(r-1), ..., 2, 1``); the first *k* columns are
    the parity contributions of the data bits.
    """
    if len(columns) != k + r:
        raise CodeConstructionError(
            f"expected {k + r} columns, got {len(columns)}"
        )
    expected_identity = tuple(1 << (r - 1 - i) for i in range(r))
    if tuple(columns[k:]) != expected_identity:
        raise CodeConstructionError(
            "last r columns must be the identity block for a systematic code"
        )
    parity_check = from_columns(columns, r)
    # G = [I_k | P] with P rows read from the data columns of H.
    p_matrix = parity_check.submatrix_columns(range(k)).transpose()
    generator = identity(k).hstack(p_matrix)
    return LinearBlockCode(generator, parity_check, name=name)


def canonical_secded_39_32() -> LinearBlockCode:
    """The frozen (39, 32) SECDED code used by every experiment.

    Stand-in for the Lattice RD1025 matrix the paper used; see the
    module docstring for the equivalence argument.
    """
    return code_from_h_columns(
        CANONICAL_39_32_COLUMNS, k=32, r=7, name="canonical (39,32) SECDED"
    )
