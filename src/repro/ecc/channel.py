"""Channel and fault models: the BSC and exhaustive error-pattern sweeps.

The paper assumes a binary symmetric channel (BSC): every bit of a
stored codeword flips independently with the same probability, so all
``C(n, 2)`` double-bit error patterns are equally likely (Sec. IV-A).
The evaluation then *exhaustively* enumerates those 741 patterns for the
(39, 32) code rather than sampling them; both modes live here.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.bits import bit_mask, pair_index, popcount, support

__all__ = [
    "ErrorPattern",
    "exhaustive_error_patterns",
    "double_bit_patterns",
    "adjacent_burst_patterns",
    "BinarySymmetricChannel",
    "AdjacentBurstChannel",
]


@dataclass(frozen=True)
class ErrorPattern:
    """A weight-w error vector over an n-bit word.

    Attributes
    ----------
    vector:
        Bit-packed error vector (MSB-first positions).
    width:
        Word width n.
    positions:
        The MSB-first bit positions in error.
    index:
        Enumeration index in the paper's ordering (pattern 0 flips bits
        0 and 1, pattern 740 flips bits 37 and 38 for n = 39); ``-1``
        for randomly sampled patterns.
    """

    vector: int
    width: int
    positions: tuple[int, ...]
    index: int = -1

    @property
    def weight(self) -> int:
        """Number of bits in error."""
        return len(self.positions)

    def apply(self, word: int) -> int:
        """Return *word* with this error pattern XOR-ed in."""
        if word < 0 or word > bit_mask(self.width):
            raise ValueError(
                f"word 0x{word:x} does not fit in {self.width} bits"
            )
        return word ^ self.vector

    def __str__(self) -> str:
        return (
            f"ErrorPattern(width={self.width}, positions={self.positions}, "
            f"index={self.index})"
        )


def exhaustive_error_patterns(width: int, weight: int) -> Iterator[ErrorPattern]:
    """Yield every weight-*weight* pattern over *width* bits, paper order.

    For ``weight == 2`` the enumeration index matches the paper's
    pattern numbering (0..740 for a 39-bit word).
    """
    if weight < 0 or weight > width:
        return
    for index, positions in enumerate(combinations(range(width), weight)):
        vector = 0
        for position in positions:
            vector |= 1 << (width - 1 - position)
        yield ErrorPattern(
            vector=vector, width=width, positions=positions, index=index
        )


def double_bit_patterns(width: int) -> list[ErrorPattern]:
    """Return all C(width, 2) double-bit patterns as a list, paper order."""
    return list(exhaustive_error_patterns(width, 2))


class BinarySymmetricChannel:
    """A BSC that corrupts words with i.i.d. bit flips.

    Parameters
    ----------
    flip_probability:
        Per-bit flip probability p, ``0 <= p <= 1``.
    width:
        Word width in bits.
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible experiments.
    """

    def __init__(
        self,
        flip_probability: float,
        width: int,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip probability must be in [0, 1], got {flip_probability}"
            )
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._p = flip_probability
        self._width = width
        self._rng = rng if rng is not None else random.Random()

    @property
    def flip_probability(self) -> float:
        """The per-bit flip probability."""
        return self._p

    @property
    def width(self) -> int:
        """The word width in bits."""
        return self._width

    def sample_error(self) -> ErrorPattern:
        """Draw one error vector from the BSC."""
        vector = 0
        positions = []
        for position in range(self._width):
            if self._rng.random() < self._p:
                vector |= 1 << (self._width - 1 - position)
                positions.append(position)
        return ErrorPattern(
            vector=vector, width=self._width, positions=tuple(positions)
        )

    def sample_error_of_weight(self, weight: int) -> ErrorPattern:
        """Draw an error vector uniformly among those of given weight.

        This is the conditional BSC distribution the paper uses: given
        that a DUE occurred as a double-bit flip, all ``C(n, 2)``
        patterns are equally likely.
        """
        if not 0 <= weight <= self._width:
            raise ValueError(
                f"weight {weight} out of range for width {self._width}"
            )
        positions = tuple(sorted(self._rng.sample(range(self._width), weight)))
        vector = 0
        for position in positions:
            vector |= 1 << (self._width - 1 - position)
        index = (
            pair_index(positions[0], positions[1], self._width)
            if weight == 2
            else -1
        )
        return ErrorPattern(
            vector=vector, width=self._width, positions=positions, index=index
        )

    def transmit(self, word: int) -> tuple[int, ErrorPattern]:
        """Send *word* through the channel; return (received, error)."""
        error = self.sample_error()
        return error.apply(word), error


def adjacent_burst_patterns(width: int, length: int) -> list[ErrorPattern]:
    """Every contiguous *length*-bit burst over a *width*-bit word.

    There are ``width - length + 1`` such patterns; the enumeration
    index is the burst's starting (MSB-first) position.
    """
    if length < 1 or length > width:
        raise ValueError(
            f"burst length {length} out of range for width {width}"
        )
    patterns = []
    for start in range(width - length + 1):
        positions = tuple(range(start, start + length))
        vector = 0
        for position in positions:
            vector |= 1 << (width - 1 - position)
        patterns.append(
            ErrorPattern(
                vector=vector, width=width, positions=positions, index=start
            )
        )
    return patterns


class AdjacentBurstChannel:
    """A channel whose errors are contiguous multi-bit bursts (MBUs).

    Models the adjacent multi-bit upsets of scaled DRAM/SRAM: one
    particle strike flips a solid run of physically neighbouring cells.
    Each event picks a burst length from the configured distribution
    and a uniformly random starting position, and flips that contiguous
    run.

    Parameters
    ----------
    width:
        Word width in bits.
    burst_lengths:
        ``{length: weight}`` distribution over burst lengths (weights
        need not sum to 1; they are normalized).  Default
        ``{2: 0.75, 3: 0.25}`` — mostly adjacent doubles, the class a
        SEC-DED-DAEC code corrects, with a tail of triples.
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible experiments.
    """

    DEFAULT_BURST_LENGTHS = {2: 0.75, 3: 0.25}

    def __init__(
        self,
        width: int,
        burst_lengths: dict[int, float] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        lengths = dict(
            burst_lengths if burst_lengths is not None
            else self.DEFAULT_BURST_LENGTHS
        )
        if not lengths:
            raise ValueError("burst_lengths must not be empty")
        for length, weight in lengths.items():
            if not 1 <= length <= width:
                raise ValueError(
                    f"burst length {length} out of range for width {width}"
                )
            if weight <= 0:
                raise ValueError(
                    f"burst length {length} has non-positive weight {weight}"
                )
        total = sum(lengths.values())
        self._width = width
        self._lengths = tuple(sorted(lengths))
        self._weights = tuple(lengths[l] / total for l in self._lengths)
        self._rng = rng if rng is not None else random.Random()

    @property
    def width(self) -> int:
        """The word width in bits."""
        return self._width

    @property
    def burst_lengths(self) -> dict[int, float]:
        """The normalized burst-length distribution."""
        return dict(zip(self._lengths, self._weights))

    def sample_length(self) -> int:
        """Draw one burst length from the configured distribution."""
        roll = self._rng.random()
        acc = 0.0
        for length, weight in zip(self._lengths, self._weights):
            acc += weight
            if roll < acc:
                return length
        return self._lengths[-1]

    def sample_error(self) -> ErrorPattern:
        """Draw one contiguous burst at a uniformly random start."""
        length = self.sample_length()
        start = self._rng.randrange(self._width - length + 1)
        positions = tuple(range(start, start + length))
        vector = 0
        for position in positions:
            vector |= 1 << (self._width - 1 - position)
        return ErrorPattern(
            vector=vector, width=self._width, positions=positions, index=start
        )

    def transmit(self, word: int) -> tuple[int, ErrorPattern]:
        """Send *word* through the channel; return (received, error)."""
        error = self.sample_error()
        return error.apply(word), error


def pattern_from_positions(positions: tuple[int, ...], width: int) -> ErrorPattern:
    """Build an :class:`ErrorPattern` from explicit bit positions."""
    ordered = tuple(sorted(set(positions)))
    if ordered != tuple(sorted(positions)):
        raise ValueError(f"duplicate positions in {positions}")
    vector = 0
    for position in ordered:
        if not 0 <= position < width:
            raise ValueError(
                f"position {position} out of range for width {width}"
            )
        vector |= 1 << (width - 1 - position)
    index = (
        pair_index(ordered[0], ordered[1], width) if len(ordered) == 2 else -1
    )
    return ErrorPattern(vector=vector, width=width, positions=ordered, index=index)


def pattern_from_vector(vector: int, width: int) -> ErrorPattern:
    """Build an :class:`ErrorPattern` from a bit-packed error vector."""
    positions = support(vector, width)
    index = (
        pair_index(positions[0], positions[1], width)
        if popcount(vector) == 2
        else -1
    )
    return ErrorPattern(vector=vector, width=width, positions=positions, index=index)


__all__ += ["pattern_from_positions", "pattern_from_vector"]
