"""Hsiao odd-weight-column SECDED codes, including (39, 32) and (72, 64).

Hsiao's construction [Hsiao 1970, cited as ref. 12 of the paper] builds
a distance-4 SECDED code by choosing every column of H to have *odd*
weight: the XOR of two distinct odd columns is even and non-zero, and
the XOR of three odd columns is odd and non-zero, so no 1-, 2-, or
3-bit error is a codeword.  Decoding is cheap: a non-zero syndrome with
even weight is always a double-bit DUE; an odd syndrome that matches a
column is a single-bit CE.

Hsiao additionally balances the number of ones per row of H, which in
hardware equalises the parity-tree depths.  We reproduce that with a
deterministic greedy selection so the canonical matrices in
:mod:`repro.ecc.matrices` are stable across library versions.
"""

from __future__ import annotations

from itertools import combinations

from repro.bits import popcount
from repro.ecc.code import LinearBlockCode, systematic_pair
from repro.ecc.gf2 import GF2Matrix
from repro.errors import CodeConstructionError

__all__ = [
    "hsiao_code",
    "hsiao_data_columns",
    "hsiao_39_32",
    "hsiao_72_64",
]


def _odd_weight_columns(r: int, weight: int) -> list[int]:
    """All r-bit values of the given odd weight, in increasing order."""
    values = []
    for positions in combinations(range(r), weight):
        value = 0
        for position in positions:
            value |= 1 << position
        values.append(value)
    return sorted(values)


def hsiao_data_columns(k: int, r: int) -> list[int]:
    """Choose k odd-weight (>= 3) columns for the data part of H.

    Candidates are consumed weight-3 first, then weight-5, and so on,
    matching Hsiao's minimum-total-ones rule.  Within a weight class a
    greedy pass keeps the row weights (count of ones per H row) as
    balanced as possible; ties break on the smallest column value, so
    the selection is fully deterministic.
    """
    if k < 1:
        raise CodeConstructionError(f"message length must be >= 1, got {k}")
    if r < 3:
        raise CodeConstructionError(f"Hsiao codes need r >= 3, got {r}")
    available: list[int] = []
    weight = 3
    while len(available) < k and weight <= r:
        available.extend(_odd_weight_columns(r, weight))
        weight += 2
    if len(available) < k:
        raise CodeConstructionError(
            f"r={r} offers only {len(available)} odd-weight columns, need {k}"
        )
    row_weights = [0] * r
    chosen: list[int] = []
    remaining = list(available)
    for _ in range(k):
        best_column = None
        best_score: tuple[int, int, int] | None = None
        for column in remaining:
            # Score = (resulting max row weight, resulting weight spread,
            # column value); smaller is better on every component.
            trial = list(row_weights)
            for bit in range(r):
                if (column >> bit) & 1:
                    trial[bit] += 1
            score = (max(trial), max(trial) - min(trial), column)
            if best_score is None or score < best_score:
                best_score = score
                best_column = column
        assert best_column is not None
        chosen.append(best_column)
        remaining.remove(best_column)
        for bit in range(r):
            if (best_column >> bit) & 1:
                row_weights[bit] += 1
    return chosen


def hsiao_code(n: int, k: int) -> LinearBlockCode:
    """Construct the (n, k) Hsiao SECDED code, where ``n = k + r``.

    Raises :class:`CodeConstructionError` if no odd-column selection
    exists for the requested parameters.
    """
    r = n - k
    if r < 3:
        raise CodeConstructionError(
            f"({n},{k}) leaves r={r} < 3 parity bits; SECDED needs more"
        )
    columns = hsiao_data_columns(k, r)
    p_matrix = GF2Matrix(columns, r)
    generator, parity_check = systematic_pair(p_matrix)
    code = LinearBlockCode(
        generator, parity_check, name=f"Hsiao ({n},{k}) SECDED"
    )
    # Construction invariant: distance exactly 4 (SECDED).
    if not code.verify_minimum_distance(4):
        raise CodeConstructionError("Hsiao construction failed distance check")
    return code


def hsiao_39_32() -> LinearBlockCode:
    """The (39, 32) SECDED code used throughout the paper's evaluation."""
    return hsiao_code(39, 32)


def hsiao_72_64() -> LinearBlockCode:
    """The (72, 64) SECDED code common in 64-bit memories (Sec. III-B)."""
    return hsiao_code(72, 64)


def is_hsiao(code: LinearBlockCode) -> bool:
    """True when every column of the code's H matrix has odd weight."""
    return all(popcount(column) & 1 for column in code.column_syndromes)


__all__.append("is_hsiao")
