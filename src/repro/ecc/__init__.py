"""Coding-theory substrate: GF(2)/GF(2^m) algebra, code families, channels.

Public surface of the :mod:`repro.ecc` package.  The exemplar code of
the paper is :func:`~repro.ecc.matrices.canonical_secded_39_32`; the
enumeration machinery that SWD-ECC builds on is
:class:`~repro.ecc.candidates.CandidateEnumerator`.
"""

from repro.ecc.bch import BCHCode, bch_generator_poly, dec_code, dected_code
from repro.ecc.candidates import (
    CandidateCountProfile,
    CandidateEnumerator,
    candidate_count_profile,
)
from repro.ecc.channel import (
    AdjacentBurstChannel,
    BinarySymmetricChannel,
    ErrorPattern,
    adjacent_burst_patterns,
    double_bit_patterns,
    exhaustive_error_patterns,
    pattern_from_positions,
    pattern_from_vector,
)
from repro.ecc.code import DecodeResult, DecodeStatus, LinearBlockCode
from repro.ecc.daec import (
    DAEC_41_32_COLUMNS,
    DaecCode,
    adjacent_pair_syndromes,
    adjacent_syndrome_set,
    daec_code,
)
from repro.ecc.gf2 import GF2Matrix
from repro.ecc.gf2m import GF2mField
from repro.ecc.hamming import (
    extended_hamming_secded,
    hamming_code,
    shortened_hamming_code,
)
from repro.ecc.hsiao import hsiao_39_32, hsiao_72_64, hsiao_code, is_hsiao
from repro.ecc.matrices import (
    CANONICAL_39_32_COLUMNS,
    canonical_secded_39_32,
    code_from_h_columns,
)
from repro.ecc.parity import repetition_code, single_parity_code

__all__ = [
    "BCHCode",
    "bch_generator_poly",
    "dec_code",
    "dected_code",
    "GF2mField",
    "CANONICAL_39_32_COLUMNS",
    "canonical_secded_39_32",
    "code_from_h_columns",
    "CandidateCountProfile",
    "CandidateEnumerator",
    "candidate_count_profile",
    "AdjacentBurstChannel",
    "BinarySymmetricChannel",
    "ErrorPattern",
    "adjacent_burst_patterns",
    "double_bit_patterns",
    "exhaustive_error_patterns",
    "pattern_from_positions",
    "pattern_from_vector",
    "DAEC_41_32_COLUMNS",
    "DaecCode",
    "adjacent_pair_syndromes",
    "adjacent_syndrome_set",
    "daec_code",
    "DecodeResult",
    "DecodeStatus",
    "LinearBlockCode",
    "GF2Matrix",
    "extended_hamming_secded",
    "hamming_code",
    "shortened_hamming_code",
    "hsiao_39_32",
    "hsiao_72_64",
    "hsiao_code",
    "is_hsiao",
    "repetition_code",
    "single_parity_code",
]
