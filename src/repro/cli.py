"""Command-line interface: regenerate figures and poke at the pipeline.

Usage (also ``python -m repro``)::

    repro fig4                     # candidate-count heatmap
    repro fig5 [--benchmark mcf] [--instructions 25] [--seed 2016]
    repro fig6 [--benchmark bzip2] [--instructions 25] [--seed 2016] [--jobs 4]
    repro fig7
    repro fig8 [--instructions 25] [--jobs 4]
    repro legality                 # Sec. III-B counts
    repro properties               # Sec. IV-B code properties
    repro resilience [--trials 5] [--jobs 4] [--json]
    repro resilience --mbu [--record BENCH_sweep.json]   # adaptive vs static
    repro sweep [--benchmark mcf] [--strategy filter-and-rank] [--jobs 4]
    repro pareto [--benchmark mcf] [--record BENCH_energy.json] [--json]
    repro synth mcf --length 1024 --out mcf.elf
    repro disasm mcf.elf [--limit 32]
    repro recover 0x8fbf0018 --bits 1,4 [--benchmark mcf] [--json]
    repro stats fig8 --instructions 5   # any command + profiling summary
    repro serve --port 9100 sweep --jobs 4   # any command + live /metrics
    repro serve-recovery --port 9200 --preload mcf   # online DUE recovery
    repro trace [TRACE_ID] [--url http://127.0.0.1:9200] [--limit 10]

Every command also accepts the observability flags (see
``docs/observability.md``): ``--profile`` prints metric and
stage-latency tables after the run, ``--trace`` prints just the
stage-latency table, ``--events PATH`` writes one JSON line per DUE
handled, and ``--log-json PATH`` (``-`` for stderr) emits structured
JSON logs.  ``repro stats <command> ...`` is shorthand for running
*command* with ``--profile``; ``repro serve <command> ...`` runs a
command while exposing live metrics over HTTP.

``--jobs N`` (on ``fig6``, ``fig8``, ``resilience``, and ``sweep``)
fans the work out over N processes with results bit-identical to the
serial run — see ``docs/performance.md``.  The same four commands take
``--serve PORT`` (scrape ``/metrics`` mid-run) and ``--progress`` (a
live stderr rate/ETA line).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections.abc import Sequence

from repro.analysis.experiments import (
    default_code,
    run_code_properties,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_isa_legality,
)
from repro.analysis.heatmap import render_table
from repro.analysis.resilience import ResilienceConfig, survival_study
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.core import RecoveryContext, SwdEcc
from repro.isa.disassembler import disassemble, render_instruction
from repro.isa.decoder import try_decode
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.progress import SweepProgress
from repro.obs.server import ObsServer
from repro.program.elf import read_elf, write_elf
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software-Defined ECC (DSN 2016) reproduction toolkit",
    )
    # Observability flags shared by every subcommand.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--profile", action="store_true",
        help="print metric, stage-latency, and DUE-event summaries "
        "after the command (implies --trace)",
    )
    obs_flags.add_argument(
        "--trace", action="store_true",
        help="collect tracing spans and print the stage-latency table",
    )
    obs_flags.add_argument(
        "--events", metavar="PATH", default=None,
        help="write per-DUE event records to PATH as JSON lines",
    )
    obs_flags.add_argument(
        "--log-json", metavar="PATH", default=None, dest="log_json",
        help="emit structured JSON logs to PATH ('-' for stderr)",
    )
    # Parallelism/liveness flags shared by the sweep-shaped subcommands.
    jobs_flag = argparse.ArgumentParser(add_help=False)
    jobs_flag.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the sweep out over N worker processes "
        "(results are bit-identical to --jobs 1)",
    )
    jobs_flag.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="expose live metrics at http://127.0.0.1:PORT/metrics "
        "for the duration of the run (0 = ephemeral port)",
    )
    jobs_flag.add_argument(
        "--progress", action="store_true",
        help="render a live progress line (rate, ETA) on stderr",
    )

    subparsers = parser.add_subparsers(dest="command", required=True)

    for figure in ("fig4", "fig7", "legality", "properties"):
        subparsers.add_parser(
            figure, help=f"regenerate {figure}", parents=[obs_flags]
        )

    for figure, default_benchmark in (("fig5", "mcf"), ("fig6", "bzip2")):
        parents = [obs_flags] if figure == "fig5" else [obs_flags, jobs_flag]
        sub = subparsers.add_parser(
            figure, help=f"regenerate {figure}", parents=parents
        )
        sub.add_argument("--benchmark", default=default_benchmark)
        sub.add_argument("--instructions", type=int, default=25)
        sub.add_argument("--seed", type=int, default=2016,
                         help="benchmark synthesis seed (pins the image)")

    fig8 = subparsers.add_parser(
        "fig8", help="regenerate the headline Fig. 8",
        parents=[obs_flags, jobs_flag],
    )
    fig8.add_argument("--instructions", type=int, default=25)

    sweep = subparsers.add_parser(
        "sweep", help="exhaustive DUE sweep of one benchmark image",
        parents=[obs_flags, jobs_flag],
    )
    sweep.add_argument("--benchmark", default="mcf")
    sweep.add_argument(
        "--strategy",
        choices=[strategy.value for strategy in RecoveryStrategy],
        default=RecoveryStrategy.FILTER_AND_RANK.value,
    )
    sweep.add_argument("--instructions", type=int, default=25)
    sweep.add_argument("--length", type=int, default=2048,
                       help="synthetic image length in instructions")
    sweep.add_argument("--seed", type=int, default=2016,
                       help="benchmark synthesis seed (pins the image)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable memoization and sweep word-by-word "
                            "(slow reference path; logs every DUE event)")
    sweep.add_argument("--precompile", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="build the full syndrome decode table before "
                            "sweeping (bit-identical results)")
    sweep.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON results")

    pareto = subparsers.add_parser(
        "pareto",
        help="recovery-rate vs joules-per-recovery vs latency frontier "
        "across codes and strategies",
        parents=[obs_flags, jobs_flag],
    )
    pareto.add_argument("--benchmark", default="mcf")
    pareto.add_argument("--instructions", type=int, default=25)
    pareto.add_argument("--length", type=int, default=2048,
                        help="synthetic image length in instructions")
    pareto.add_argument("--seed", type=int, default=2016,
                        help="benchmark synthesis seed (pins the image)")
    pareto.add_argument(
        "--codes", default=None, metavar="ID[,ID]",
        help="comma-separated code ids to compare "
        "(default: all SECDED-family codes)",
    )
    pareto.add_argument(
        "--strategies", default=None, metavar="S[,S]",
        help="comma-separated recovery strategies "
        "(default: all three paper strategies)",
    )
    pareto.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON results")
    pareto.add_argument("--csv", action="store_true",
                        help="emit the points as CSV on stdout")
    pareto.add_argument(
        "--record", metavar="PATH", default=None,
        help="append the measured points (with frontier membership) "
        "to a JSON trajectory file, e.g. BENCH_energy.json",
    )

    report = subparsers.add_parser(
        "report", help="regenerate every figure/table in one run",
        parents=[obs_flags],
    )
    report.add_argument("--instructions", type=int, default=15)

    resilience = subparsers.add_parser(
        "resilience", help="survival study: crash vs SWD-ECC, +/- scrubbing "
        "(or, with --mbu, adaptive code selection under adjacent bursts)",
        parents=[obs_flags, jobs_flag],
    )
    resilience.add_argument("--trials", type=int, default=5)
    resilience.add_argument("--epochs", type=int, default=None,
                            help="rounds per trial (default: 40, or 24 "
                                 "with --mbu)")
    resilience.add_argument("--mbu", action="store_true",
                            help="run the adjacent-MBU study instead: static "
                                 "SECDED vs static DAEC vs the adaptive "
                                 "selector, across burst profiles")
    resilience.add_argument("--seed", type=int, default=0,
                            help="base trial seed (--mbu only)")
    resilience.add_argument(
        "--record", metavar="PATH", default=None,
        help="append the --mbu study to a JSON trajectory file, "
        "e.g. BENCH_sweep.json",
    )
    resilience.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON results")

    synth = subparsers.add_parser(
        "synth", help="generate a synthetic benchmark ELF", parents=[obs_flags]
    )
    synth.add_argument("benchmark")
    synth.add_argument("--length", type=int, default=1024)
    synth.add_argument("--seed", type=int, default=2016)
    synth.add_argument("--out", required=True)

    disasm = subparsers.add_parser(
        "disasm", help="disassemble an ELF .text", parents=[obs_flags]
    )
    disasm.add_argument("path")
    disasm.add_argument("--limit", type=int, default=None)

    recover = subparsers.add_parser(
        "recover", help="recover one instruction word from a 2-bit DUE",
        parents=[obs_flags],
    )
    recover.add_argument("word", help="32-bit instruction word, e.g. 0x8fbf0018")
    recover.add_argument(
        "--bits", required=True,
        help="two codeword bit positions to flip, e.g. 1,4 (0 = MSB)",
    )
    recover.add_argument("--benchmark", default="mcf",
                         help="benchmark supplying the frequency table")
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON results")

    stats = subparsers.add_parser(
        "stats",
        help="run any repro command with profiling enabled "
        "(shorthand for <command> --profile)",
    )
    stats.add_argument("--events", metavar="PATH", default=None,
                       help="also write per-DUE events to PATH")
    stats.add_argument("rest", nargs=argparse.REMAINDER,
                       help="the command to run, e.g. fig8 --instructions 5")

    serve = subparsers.add_parser(
        "serve",
        help="run any repro command while serving live metrics over "
        "HTTP (GET /metrics, /metrics.json, /events, /spans, /healthz)",
    )
    serve.add_argument("--port", type=int, default=9100,
                       help="TCP port to bind (0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("rest", nargs=argparse.REMAINDER,
                       help="the command to run, e.g. sweep --jobs 4")

    recovery = subparsers.add_parser(
        "serve-recovery",
        help="run the batched DUE-recovery service "
        "(POST /recover, /recover/batch; GET /metrics, /healthz)",
        parents=[obs_flags],
    )
    recovery.add_argument("--port", type=int, default=9200,
                          help="TCP port to bind (0 = ephemeral)")
    recovery.add_argument("--host", default="127.0.0.1",
                          help="bind address (default: loopback only)")
    recovery.add_argument("--max-batch", type=int, default=256,
                          metavar="WORDS",
                          help="words per micro-batch before it closes")
    recovery.add_argument("--linger-ms", type=float, default=2.0,
                          metavar="MS",
                          help="longest a batch waits for more requests")
    recovery.add_argument("--queue-limit", type=int, default=4096,
                          metavar="WORDS",
                          help="queued words before backpressure engages")
    recovery.add_argument("--workers", type=int, default=0, metavar="N",
                          help="pre-forked recovery shard processes "
                          "(0 = execute in-process)")
    recovery.add_argument("--policy", choices=["degrade", "reject"],
                          default="degrade",
                          help="overload behaviour: answer detect-only "
                          "(degrade) or 429 + Retry-After (reject)")
    recovery.add_argument("--timeout-ms", type=float, default=2000.0,
                          metavar="MS",
                          help="default per-request wait before degrading")
    recovery.add_argument("--cost", action="store_true",
                          help="attach per-request op-count and joule "
                          "attribution to /recover responses")
    recovery.add_argument("--precompile",
                          action=argparse.BooleanOptionalAction,
                          default=True,
                          help="pre-warm engines with precompiled syndrome "
                          "decode tables (per worker; bit-identical "
                          "answers — disable to serve via the reference "
                          "path)")
    recovery.add_argument("--preload", default=None, metavar="CTX[,CTX]",
                          help="contexts to build before serving, "
                          "e.g. mcf,bzip2")
    recovery.add_argument("--duration", type=float, default=None,
                          metavar="SECONDS",
                          help="serve for a fixed time then exit "
                          "(default: until interrupted)")

    trace_cmd = subparsers.add_parser(
        "trace",
        help="fetch the slowest request traces from a running recovery "
        "service (GET /traces) and print a latency waterfall",
    )
    trace_cmd.add_argument("trace_id", nargs="?", default=None,
                           help="trace id (or unique prefix) to render; "
                           "omit to list the slowest retained traces")
    trace_cmd.add_argument("--url", default="http://127.0.0.1:9200",
                           help="base URL of the service "
                           "(default: the serve-recovery default)")
    trace_cmd.add_argument("--limit", type=int, default=10, metavar="N",
                           help="how many slow traces to fetch")
    return parser


def _command_report(args: argparse.Namespace) -> int:
    """Regenerate every paper artifact at the requested scale."""
    from repro.analysis.experiments import default_images

    banner = "=" * 78
    images = default_images(length=2048)
    sections = [
        ("Sec. III-B | ISA legality", run_isa_legality().render()),
        ("Sec. IV-B | code properties", run_code_properties().render()),
        ("Fig. 4", run_fig4().render()),
        ("Fig. 5", run_fig5(
            image=next(i for i in images if i.name == "mcf"),
            num_instructions=args.instructions,
        ).render()),
        ("Fig. 6", run_fig6(
            image=next(i for i in images if i.name == "bzip2"),
            num_instructions=args.instructions,
        ).render()),
        ("Fig. 7", run_fig7(images).render()),
        ("Fig. 8", run_fig8(
            images=images, num_instructions=args.instructions
        ).render()),
    ]
    for title, body in sections:
        print(f"{banner}\n{title}\n{banner}\n{body}\n")
    return 0


def _progress_for(args: argparse.Namespace, unit: str = "patterns"):
    """A stderr-rendering progress tracker when --progress was given."""
    if getattr(args, "progress", False):
        return SweepProgress(stream=sys.stderr, unit=unit)
    return None


def _command_resilience(args: argparse.Namespace) -> int:
    if args.mbu:
        return _command_mbu(args)
    if args.record:
        print("resilience: --record applies to the --mbu study only",
              file=sys.stderr)
        return 2
    epochs = args.epochs if args.epochs is not None else 40
    code = default_code()
    image = synthesize_benchmark("mcf", length=512)
    progress = _progress_for(args, unit="trials")
    study = survival_study(
        code,
        image,
        trials=args.trials,
        base_config=ResilienceConfig(epochs=epochs),
        jobs=args.jobs,
        progress=progress,
    )
    if progress is not None:
        progress.finish()
    if args.json:
        print(obs_export.to_json({
            "command": "resilience",
            "trials": args.trials,
            "epochs": epochs,
            "configurations": study,
        }))
        return 0
    rows = [
        [
            label,
            f"{metrics['mean_survived_epochs']:.1f}/{epochs}",
            f"{metrics['completion_rate']:.0%}",
            f"{metrics['mean_correct_recoveries']:.1f}",
            f"{metrics['mean_silent_corruptions']:.1f}",
        ]
        for label, metrics in study.items()
    ]
    print(render_table(
        ["configuration", "survived epochs", "completed", "correct recoveries",
         "silent corruptions"],
        rows,
        title="Survival study (mcf image, BSC fault arrivals)",
    ))
    return 0


def _command_mbu(args: argparse.Namespace) -> int:
    """``repro resilience --mbu``: adaptive selection vs static codes."""
    from datetime import datetime, timezone

    from repro.analysis.mbu import MbuConfig, append_mbu_record, mbu_study

    epochs = args.epochs if args.epochs is not None else 24
    progress = _progress_for(args, unit="trials")
    study = mbu_study(
        trials=args.trials,
        base_config=MbuConfig(epochs=epochs, seed=args.seed),
        jobs=args.jobs,
        progress=progress,
    )
    if progress is not None:
        progress.finish()
    if args.record:
        depth = append_mbu_record(
            args.record,
            study,
            datetime.now(timezone.utc).isoformat(timespec="seconds"),
            meta={
                "trials": args.trials,
                "epochs": epochs,
                "seed": args.seed,
                "jobs": args.jobs,
            },
        )
        print(f"appended record #{depth} to {args.record}", file=sys.stderr)
    if args.json:
        print(obs_export.to_json({
            "command": "resilience",
            "mbu": True,
            "trials": args.trials,
            "epochs": epochs,
            "profiles": study,
        }))
        return 0
    rows = [
        [
            profile,
            arm,
            f"{metrics['recovery_rate']:.4f}",
            f"{metrics['mean_silent_corruptions']:.1f}",
            f"{metrics['mean_regions_upgraded']:.1f}",
            f"{metrics['joules_per_fault']:.3e}",
        ]
        for profile, arms in study.items()
        for arm, metrics in arms.items()
    ]
    print(render_table(
        ["burst profile", "arm", "recovery rate", "silent corruptions",
         "regions upgraded", "J/fault"],
        rows,
        title="Adjacent-MBU study (static SECDED vs static DAEC vs adaptive)",
    ))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.no_cache and args.precompile:
        print("sweep: --precompile requires caching (drop --no-cache)",
              file=sys.stderr)
        return 2
    code = default_code()
    image = synthesize_benchmark(
        args.benchmark, length=args.length, seed=args.seed
    )
    sweep = DueSweep(
        code, RecoveryStrategy(args.strategy), args.instructions,
        cache=not args.no_cache,
        precompile=args.precompile,
    )
    progress = _progress_for(args)
    result = sweep.run(image, jobs=args.jobs, progress=progress)
    if progress is not None:
        progress.finish()
    if args.json:
        print(obs_export.to_json({
            "command": "sweep",
            "benchmark": result.benchmark,
            "strategy": result.strategy.value,
            "instructions": result.num_instructions,
            "jobs": args.jobs,
            "mean_success_rate": result.mean_success_rate,
            "success_rates": result.success_series(),
        }))
        return 0
    rates = result.success_series()
    print(render_table(
        ["benchmark", "strategy", "instructions", "patterns",
         "mean recovery rate", "min", "max"],
        [[
            result.benchmark,
            result.strategy.value,
            result.num_instructions,
            len(result.outcomes),
            f"{result.mean_success_rate:.4f}",
            f"{min(rates):.3f}",
            f"{max(rates):.3f}",
        ]],
        title=f"Exhaustive 2-bit DUE sweep (jobs={args.jobs})",
    ))
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    """``repro pareto`` = sweep codes x strategies, print the frontier."""
    from datetime import datetime, timezone

    from repro.analysis.pareto import (
        PARETO_CODES,
        append_energy_record,
        pareto_front,
        sweep_pareto,
    )

    if args.codes is not None:
        unknown = [
            name for name in args.codes.split(",")
            if name and name not in PARETO_CODES
        ]
        if unknown:
            print(
                f"pareto: unknown code id(s) {', '.join(unknown)}; "
                f"choose from {', '.join(PARETO_CODES)}",
                file=sys.stderr,
            )
            return 2
        codes = {
            name: PARETO_CODES[name]
            for name in args.codes.split(",") if name
        }
    else:
        codes = None
    strategies = (
        [RecoveryStrategy(s) for s in args.strategies.split(",") if s]
        if args.strategies is not None else None
    )

    def announce(point) -> None:
        print(
            f"  measured {point.code} / {point.strategy}: "
            f"rate={point.recovery_rate:.4f} "
            f"J/recovery={point.joules_per_recovery:.3e}",
            file=sys.stderr,
        )

    points = sweep_pareto(
        codes=codes,
        strategies=strategies,
        benchmark=args.benchmark,
        num_instructions=args.instructions,
        length=args.length,
        seed=args.seed,
        jobs=args.jobs,
        on_point=announce,
    )
    frontier = pareto_front(points)
    frontier_keys = {(p.code, p.strategy) for p in frontier}
    if args.record:
        depth = append_energy_record(
            args.record,
            points,
            datetime.now(timezone.utc).isoformat(timespec="seconds"),
            meta={
                "benchmark": args.benchmark,
                "instructions": args.instructions,
                "length": args.length,
                "seed": args.seed,
                "jobs": args.jobs,
            },
        )
        print(f"appended record #{depth} to {args.record}", file=sys.stderr)
    if args.json:
        print(obs_export.to_json({
            "command": "pareto",
            "benchmark": args.benchmark,
            "instructions": args.instructions,
            "points": [point.as_dict() for point in points],
            "frontier": [point.as_dict() for point in frontier],
        }))
        return 0
    rows = [
        [
            point.code,
            point.strategy,
            f"{point.recovery_rate:.4f}",
            f"{point.joules_per_recovery:.3e}",
            f"{point.seconds_per_recovery:.3e}",
            "*" if (point.code, point.strategy) in frontier_keys else "",
        ]
        for point in sorted(
            points, key=lambda p: (p.joules_per_recovery, p.code)
        )
    ]
    if args.csv:
        print("code,strategy,recovery_rate,joules_per_recovery,"
              "seconds_per_recovery,on_frontier")
        for row in rows:
            print(",".join(
                [*row[:5], "1" if row[5] else "0"]
            ))
        return 0
    print(render_table(
        ["code", "strategy", "recovery rate", "J/recovery",
         "s/recovery", "frontier"],
        rows,
        title=f"Energy/recovery Pareto sweep ({args.benchmark}, "
        f"{args.instructions} instructions)",
    ))
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    code = default_code()
    word = int(args.word, 0)
    positions = [int(p) for p in args.bits.split(",")]
    if len(positions) != 2:
        print("--bits needs exactly two comma-separated positions", file=sys.stderr)
        return 2
    instruction = try_decode(word)
    received = code.encode(word)
    for position in positions:
        received ^= 1 << (code.n - 1 - position)
    image = synthesize_benchmark(args.benchmark, length=2048)
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    engine = SwdEcc(code, rng=random.Random(args.seed))
    result = engine.recover(received, context)
    # The CLI knows ground truth: annotate the DUE event the engine
    # just emitted so the events API reports the verdict too.
    obs_events.get_event_log().annotate_last(true_message=word)
    if args.json:
        print(obs_export.to_json({
            "command": "recover",
            "original": word,
            "original_text": (
                render_instruction(instruction) if instruction else None
            ),
            "flipped_bits": positions,
            "received": result.received,
            "num_candidates": result.num_candidates,
            "num_valid": result.num_valid,
            "filter_fell_back": result.filter_fell_back,
            "tied": result.tied,
            "chosen_message": result.chosen_message,
            "recovered": result.recovered(word),
            "valid_messages": [
                {
                    "word": message,
                    "text": (
                        render_instruction(decoded)
                        if (decoded := try_decode(message)) else None
                    ),
                    "chosen": message == result.chosen_message,
                }
                for message in result.valid_messages
            ],
        }))
        return 0
    print(f"original:  0x{word:08x}  "
          f"{render_instruction(instruction) if instruction else '<illegal>'}")
    print(f"candidates: {result.num_candidates}, "
          f"legal: {result.num_valid}"
          f"{' (filter fell back)' if result.filter_fell_back else ''}")
    for message in result.valid_messages:
        decoded = try_decode(message)
        text = render_instruction(decoded) if decoded else "<illegal>"
        marker = "  <== chosen" if message == result.chosen_message else ""
        print(f"  0x{message:08x}  {text}{marker}")
    print(f"recovered correctly: {result.recovered(word)}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """``repro stats <command> ...`` = run the command with --profile."""
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest or rest[0] == "stats":
        print("stats needs a command to profile, e.g. "
              "repro stats fig8 --instructions 5", file=sys.stderr)
        return 2
    forwarded = [*rest, "--profile"]
    if args.events:
        forwarded += ["--events", args.events]
    return main(forwarded)


def _command_serve(args: argparse.Namespace) -> int:
    """``repro serve <command> ...`` = run the command with a live
    observability endpoint for its duration (mirrors ``stats``)."""
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest or rest[0] == "serve":
        print("serve needs a command to run, e.g. "
              "repro serve --port 9100 sweep --jobs 4", file=sys.stderr)
        return 2
    server = ObsServer(host=args.host, port=args.port)
    try:
        server.start()
    except OSError as error:
        print(f"serve: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    # Everything after a successful bind runs under the teardown: a
    # failure anywhere (even printing the banner) must release the port.
    try:
        print(f"serving observability on {server.url}", file=sys.stderr)
        return main(rest)
    finally:
        server.stop()


def _command_serve_recovery(args: argparse.Namespace) -> int:
    """``repro serve-recovery`` = run the batched DUE-recovery service."""
    from repro.errors import ServiceError
    from repro.service import RecoveryService, ServiceCatalog

    catalog = ServiceCatalog(precompile=args.precompile)
    service = RecoveryService(
        catalog=catalog,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
        workers=args.workers,
        overload_policy=args.policy,
        default_timeout_s=args.timeout_ms / 1000.0,
        report_cost=args.cost,
    )
    # Preload before start: in sharded mode the forked workers inherit
    # the parent's warm context list, so contexts built here are warm
    # in every shard from the first request.
    contexts = [
        name for name in (args.preload or "").split(",") if name
    ]
    try:
        catalog.preload(contexts)
    except ServiceError as error:
        print(f"serve-recovery: {error}", file=sys.stderr)
        return 2
    try:
        service.start()
    except OSError as error:
        print(f"serve-recovery: cannot bind {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return 2
    try:
        print(f"recovery service on {service.url} "
              f"(policy={args.policy}, max_batch={args.max_batch}, "
              f"queue_limit={args.queue_limit}, "
              f"workers={args.workers}, "
              f"precompile={args.precompile})", file=sys.stderr)
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        service.stop()
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    """``repro trace`` = print request waterfalls from ``GET /traces``."""
    import urllib.error
    import urllib.request

    url = f"{args.url.rstrip('/')}/traces?limit={args.limit}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        print(f"trace: cannot fetch {url}: {error}", file=sys.stderr)
        return 2
    if not payload.get("tracing"):
        print("trace: tracing is disabled on the service "
              "(start it with --trace or --profile)", file=sys.stderr)
        return 1
    traces = payload.get("traces", [])
    if args.trace_id is None:
        if not traces:
            print("no traces retained yet")
            return 0
        rows = [
            [t["trace_id"], f"{t['duration_ms']:.3f}", t["span_count"]]
            for t in traces
        ]
        print(render_table(
            ["trace id", "duration ms", "spans"], rows,
            title="slowest requests",
        ))
        return 0
    matches = [
        t for t in traces if t["trace_id"].startswith(args.trace_id)
    ]
    if not matches:
        print(f"trace: no retained trace matches {args.trace_id!r} "
              f"(fetched {len(traces)})", file=sys.stderr)
        return 1
    exact = [t for t in matches if t["trace_id"] == args.trace_id]
    if len(matches) > 1 and not exact:
        ids = ", ".join(t["trace_id"] for t in matches)
        print(f"trace: ambiguous prefix {args.trace_id!r}: {ids}",
              file=sys.stderr)
        return 1
    print(obs_export.render_waterfall((exact or matches)[0]))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    command = args.command
    if command == "fig4":
        print(run_fig4().render())
    elif command == "fig5":
        image = synthesize_benchmark(args.benchmark, seed=args.seed)
        print(run_fig5(image=image, num_instructions=args.instructions).render())
    elif command == "fig6":
        image = synthesize_benchmark(args.benchmark, seed=args.seed)
        print(run_fig6(
            image=image, num_instructions=args.instructions, jobs=args.jobs,
            progress=_progress_for(args),
        ).render())
    elif command == "fig7":
        print(run_fig7().render())
    elif command == "fig8":
        print(run_fig8(
            num_instructions=args.instructions, jobs=args.jobs,
            progress=_progress_for(args),
        ).render())
    elif command == "legality":
        print(run_isa_legality().render())
    elif command == "properties":
        print(run_code_properties().render())
    elif command == "report":
        return _command_report(args)
    elif command == "resilience":
        return _command_resilience(args)
    elif command == "sweep":
        return _command_sweep(args)
    elif command == "pareto":
        return _command_pareto(args)
    elif command == "synth":
        image = synthesize_benchmark(args.benchmark, length=args.length,
                                     seed=args.seed)
        with open(args.out, "wb") as handle:
            handle.write(write_elf(image))
        print(f"wrote {args.out}: {len(image)} instructions, "
              f"base 0x{image.base_address:x}")
    elif command == "disasm":
        with open(args.path, "rb") as handle:
            image = read_elf(handle.read(), name=args.path)
        words = image.words[: args.limit] if args.limit else image.words
        print(disassemble(words, image.base_address))
    elif command == "recover":
        return _command_recover(args)
    elif command == "serve-recovery":
        return _command_serve_recovery(args)
    elif command == "trace":
        return _command_trace(args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "serve":
        return _command_serve(args)
    profile = getattr(args, "profile", False)
    want_trace = profile or getattr(args, "trace", False)
    events_path = getattr(args, "events", None)
    log_json = getattr(args, "log_json", None)
    serve_port = getattr(args, "serve", None)
    log_handler = (
        obs_logging.configure(log_json) if log_json is not None else None
    )
    server = None
    collector = None
    # One teardown covers everything that follows a successful bind:
    # the banner print, enabling tracing, and the command itself all
    # run inside the try, so the server thread and log handler are
    # released however the command exits (including on exceptions
    # raised before dispatch).
    try:
        if serve_port is not None:
            try:
                server = ObsServer(port=serve_port).start()
            except OSError as error:
                print(f"--serve: cannot bind port {serve_port}: {error}",
                      file=sys.stderr)
                return 2
            print(f"serving observability on {server.url}", file=sys.stderr)
        if want_trace:
            collector = obs_trace.enable_tracing()
        status = _dispatch(args)
    finally:
        if collector is not None:
            obs_trace.disable_tracing()
        if server is not None:
            server.stop()
        if log_handler is not None:
            obs_logging.unconfigure(log_handler)
    if profile:
        print()
        print(obs_export.render_metrics(
            obs_metrics.get_registry(), title="metrics"
        ))
        print()
        print(obs_export.render_spans(collector, title="stage latency"))
        print()
        print(obs_export.render_events_summary(obs_events.get_event_log()))
    elif collector is not None:
        # --trace alone: the process exits right after, so an unprinted
        # collector would be useless — show the stage-latency table.
        print()
        print(obs_export.render_spans(collector, title="stage latency"))
    if events_path is not None:
        try:
            written = obs_export.write_events(
                events_path, obs_events.get_event_log()
            )
        except OSError as error:
            print(f"--events: cannot write {events_path}: {error.strerror}",
                  file=sys.stderr)
            return 2
        print(f"wrote {written} DUE event(s) to {events_path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
