"""Bit-twiddling utilities shared across the library.

Words, codewords, and error vectors are represented as non-negative
Python integers together with an explicit bit *width*.  Bit positions
follow the paper's convention: **position 0 is the most-significant
bit** of the word, so the 39-bit error vector written ``1100...0000`` in
Sec. IV-A of the paper has errors at positions 0 and 1.

All helpers validate their inputs; silent wrap-around would corrupt
experiments in ways that are very hard to notice downstream.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import combinations

__all__ = [
    "bit_mask",
    "bit_at",
    "get_bit",
    "set_bit",
    "clear_bit",
    "flip_bit",
    "flip_bits",
    "popcount",
    "parity",
    "hamming_distance",
    "bits_of",
    "support",
    "pack_bits",
    "int_to_bits",
    "bits_to_int",
    "extract_field",
    "insert_field",
    "weight_k_vectors",
    "pair_index",
    "pair_from_index",
    "reverse_bits",
]


def bit_mask(width: int) -> int:
    """Return a mask with the low *width* bits set (``width >= 0``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_at(position: int, width: int) -> int:
    """Return an integer with only *position* set, MSB-first indexing."""
    _check_position(position, width)
    return 1 << (width - 1 - position)


def get_bit(value: int, position: int, width: int) -> int:
    """Return the bit of *value* at MSB-first *position* (0 or 1)."""
    _check_position(position, width)
    return (value >> (width - 1 - position)) & 1


def set_bit(value: int, position: int, width: int) -> int:
    """Return *value* with the bit at *position* set to 1."""
    return value | bit_at(position, width)


def clear_bit(value: int, position: int, width: int) -> int:
    """Return *value* with the bit at *position* cleared to 0."""
    return value & ~bit_at(position, width)


def flip_bit(value: int, position: int, width: int) -> int:
    """Return *value* with the bit at *position* inverted."""
    return value ^ bit_at(position, width)


def flip_bits(value: int, positions: Iterable[int], width: int) -> int:
    """Return *value* with every bit in *positions* inverted.

    Positions may repeat; repeats cancel pairwise, matching XOR
    semantics of error vectors.
    """
    result = value
    for position in positions:
        result ^= bit_at(position, width)
    return result


def popcount(value: int) -> int:
    """Return the Hamming weight of a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount of negative value {value}")
    return value.bit_count()


def parity(value: int) -> int:
    """Return the XOR of all bits of *value* (0 or 1)."""
    return popcount(value) & 1


def hamming_distance(a: int, b: int) -> int:
    """Return the Hamming distance between two equal-width words."""
    return popcount(a ^ b)


def bits_of(value: int, width: int) -> tuple[int, ...]:
    """Return the bits of *value*, MSB first, as a tuple of 0/1 ints."""
    _check_value(value, width)
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def support(value: int, width: int) -> tuple[int, ...]:
    """Return the MSB-first positions of the set bits of *value*."""
    _check_value(value, width)
    return tuple(i for i in range(width) if (value >> (width - 1 - i)) & 1)


def pack_bits(bits: Iterable[int]) -> int:
    """Pack an MSB-first iterable of 0/1 values into an integer."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def int_to_bits(value: int, width: int) -> list[int]:
    """Return the bits of *value* as a mutable MSB-first list."""
    return list(bits_of(value, width))


def bits_to_int(bits: Iterable[int]) -> int:
    """Alias of :func:`pack_bits` that reads more naturally in decoders."""
    return pack_bits(bits)


def extract_field(word: int, high: int, low: int, width: int = 32) -> int:
    """Extract bits ``high..low`` (inclusive, LSB-numbered) of *word*.

    MIPS manuals number instruction bits 31..0 with 31 the MSB; this
    helper follows that convention, e.g. ``extract_field(w, 31, 26)`` is
    the opcode.
    """
    if not 0 <= low <= high < width:
        raise ValueError(f"invalid field bounds [{high}:{low}] for width {width}")
    _check_value(word, width)
    return (word >> low) & bit_mask(high - low + 1)


def insert_field(word: int, high: int, low: int, value: int, width: int = 32) -> int:
    """Return *word* with bits ``high..low`` (LSB-numbered) set to *value*."""
    if not 0 <= low <= high < width:
        raise ValueError(f"invalid field bounds [{high}:{low}] for width {width}")
    field_width = high - low + 1
    if not 0 <= value <= bit_mask(field_width):
        raise ValueError(
            f"value 0x{value:x} does not fit in {field_width}-bit field"
        )
    cleared = word & ~(bit_mask(field_width) << low)
    return cleared | (value << low)


def weight_k_vectors(width: int, weight: int) -> Iterator[int]:
    """Yield every *width*-bit integer of Hamming weight *weight*.

    Vectors are produced in decreasing numeric order of their MSB-first
    support, matching the paper's enumeration of 2-bit error vectors:
    ``1100..0``, ``1010..0``, ..., ``0..0011``.
    """
    if weight < 0 or weight > width:
        return
    for positions in combinations(range(width), weight):
        yield flip_bits(0, positions, width)


def pair_index(i: int, j: int, width: int) -> int:
    """Return the paper-order index of the 2-bit error pattern (i, j).

    The paper enumerates the 741 patterns of a 39-bit word with pattern
    0 = bits (0, 1), pattern 1 = bits (0, 2), ..., pattern 740 =
    bits (37, 38).  Requires ``i < j``.
    """
    if not 0 <= i < j < width:
        raise ValueError(f"require 0 <= i < j < {width}, got ({i}, {j})")
    # Patterns with first index < i:  sum_{a<i} (width-1-a)
    preceding = i * (width - 1) - (i * (i - 1)) // 2
    return preceding + (j - i - 1)


def pair_from_index(index: int, width: int) -> tuple[int, int]:
    """Invert :func:`pair_index`: return the (i, j) pair for an index."""
    total = width * (width - 1) // 2
    if not 0 <= index < total:
        raise ValueError(f"index {index} out of range for width {width}")
    i = 0
    remaining = index
    while remaining >= width - 1 - i:
        remaining -= width - 1 - i
        i += 1
    return i, i + 1 + remaining


def reverse_bits(value: int, width: int) -> int:
    """Return *value* with its *width*-bit representation reversed."""
    _check_value(value, width)
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def _check_position(position: int, width: int) -> None:
    if not 0 <= position < width:
        raise ValueError(f"bit position {position} out of range for width {width}")


def _check_value(value: int, width: int) -> None:
    if value < 0 or value > bit_mask(width):
        raise ValueError(f"value 0x{value:x} does not fit in {width} bits")
