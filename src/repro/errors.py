"""Exception hierarchy for the SWD-ECC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CodeConstructionError",
    "DecodingError",
    "EncodingError",
    "IsaError",
    "IllegalInstructionError",
    "AssemblerError",
    "ProgramImageError",
    "ElfFormatError",
    "MemoryFaultError",
    "InjectionError",
    "UncorrectableError",
    "RecoveryError",
    "SimulationError",
    "CpuFault",
    "AnalysisError",
    "ObservabilityError",
    "ServiceError",
    "ServiceOverloadError",
    "ShardFailureError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested.

    Raised, for example, when the requested (n, k) parameters are
    infeasible for the code family, or when a user-supplied parity-check
    matrix is rank deficient.
    """


class EncodingError(ReproError):
    """A message could not be encoded (e.g. it does not fit in k bits)."""


class DecodingError(ReproError):
    """A received word could not be processed by a decoder.

    This signals *API misuse* (wrong word width, corrupt decoder state),
    not a channel error: detected-but-uncorrectable channel errors are
    reported through :class:`repro.ecc.code.DecodeResult`, never through
    exceptions, because they are an expected outcome.
    """


class IsaError(ReproError):
    """Base class for instruction-set-architecture errors."""


class IllegalInstructionError(IsaError):
    """A 32-bit word does not decode to any legal MIPS-I instruction."""

    def __init__(self, word: int, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"illegal instruction word 0x{word:08x}{detail}")
        self.word = word
        self.reason = reason


class AssemblerError(IsaError):
    """Assembly source text could not be translated to machine code."""


class ProgramImageError(ReproError):
    """A program image is malformed or an operation on it is invalid."""


class ElfFormatError(ProgramImageError):
    """Bytes presented as an ELF object violate the ELF32 format."""


class MemoryFaultError(ReproError):
    """Base class for faults surfaced by the ECC memory model."""


class InjectionError(MemoryFaultError):
    """A fault-injection request could not be carried out.

    Raised, for example, when a random-target injector is pointed at a
    memory with no mapped addresses, or a burst does not fit the
    codeword width.  Subclasses :class:`MemoryFaultError` so existing
    campaign harnesses that catch the base class keep working.
    """


class UncorrectableError(MemoryFaultError):
    """A DUE escalated to the caller (e.g. under the crash policy).

    Mirrors the machine-check / kernel-panic path of conventional
    systems described in Sec. III of the paper.
    """

    def __init__(self, address: int, syndrome: int) -> None:
        super().__init__(
            f"detected-but-uncorrectable error at address 0x{address:x} "
            f"(syndrome 0x{syndrome:x})"
        )
        self.address = address
        self.syndrome = syndrome


class RecoveryError(ReproError):
    """Heuristic recovery could not produce any candidate at all."""


class SimulationError(ReproError):
    """The MIPS functional simulator entered an unrecoverable state."""


class CpuFault(SimulationError):
    """An architectural fault raised while simulating a program.

    Carries the symptom classification used by the forked-execution use
    model (Sec. III-C) to prune incorrect recovery candidates.
    """

    def __init__(self, symptom: str, pc: int, detail: str = "") -> None:
        extra = f" ({detail})" if detail else ""
        super().__init__(f"{symptom} at pc=0x{pc:08x}{extra}")
        self.symptom = symptom
        self.pc = pc
        self.detail = detail


class AnalysisError(ReproError):
    """An experiment driver was configured inconsistently."""


class ObservabilityError(ReproError):
    """A metric, span, or event API was used inconsistently.

    Raised, for example, when one metric name is requested as two
    different types, or a counter is asked to decrease.
    """


class ServiceError(ReproError):
    """The DUE-recovery service rejected a request or misbehaved.

    Covers malformed requests (unknown code/context ids, out-of-range
    words) and lifecycle misuse (submitting to a stopped batcher).
    """


class ServiceOverloadError(ServiceError):
    """The recovery queue is full; the request was rejected, not queued.

    Backpressure is explicit: callers receive a ``retry_after``
    hint (seconds) instead of unbounded buffering.  The HTTP layer maps
    this to 429 + ``Retry-After`` or to the detect-only degradation
    path, depending on the configured overload policy.
    """

    def __init__(self, queued: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"recovery queue full ({queued}/{limit} words); "
            f"retry in {retry_after:.3f}s"
        )
        self.queued = queued
        self.limit = limit
        self.retry_after = retry_after


class ShardFailureError(ServiceError):
    """A recovery shard process died and could not serve the batch.

    Raised after the requeue-once policy is exhausted: the shard was
    respawned and the batch retried, but the retry (or the respawn
    itself) failed too.  The HTTP layer maps this to the configured
    overload behaviour — detect-only degradation or 429 — because the
    correct client response is the same: back off and retry.
    """

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"recovery shard {shard} failed: {detail}")
        self.shard = shard
