"""The SWD-ECC engine: enumerate -> filter -> rank -> choose.

This is the paper's primary contribution (Sec. III-B), assembled from
the substrates:

1. *Enumerate* the equidistant candidate codewords of the DUE with
   :class:`~repro.ecc.candidates.CandidateEnumerator`;
2. *Filter* the candidate messages with hard side information
   (:mod:`repro.core.filters`), falling back to the unfiltered list if
   the filter rejects everything;
3. *Rank* the survivors with soft side information
   (:mod:`repro.core.rankers`);
4. *Choose* the top-ranked candidate, breaking ties randomly (the
   paper's policy) or deterministically.

SWD-ECC costs nothing when no DUE occurs: this engine is only invoked
on a word the hardware decoder has already flagged.
"""

from __future__ import annotations

import enum
import logging
import random
import time
from bisect import bisect_left
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.cache import MAX_ENTRIES as _ROW_CACHE_MAX
from repro.core.cache import ContextCache
from repro.core.filters import CandidateFilter, FilterChain, InstructionLegalityFilter
from repro.core.rankers import CandidateRanker, FrequencyRanker
from repro.core.sideinfo import RecoveryContext
from repro.ecc.candidates import CandidateEnumerator
from repro.ecc.code import LinearBlockCode
from repro.ecc.decode_table import DecodeTable
from repro.errors import DecodingError, RecoveryError
from repro.isa.decoder import (
    ALL_SELECTOR_FIELDS,
    selector_key,
    spec_for_selector_key,
)
from repro.obs import events as obs_events
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

_log = obs_logging.get_logger("swdecc")

__all__ = ["TieBreak", "RecoveryResult", "SwdEcc", "success_probability"]


class TieBreak(enum.Enum):
    """How the engine resolves equal top scores."""

    RANDOM = "random"
    """Choose uniformly among the tied candidates (the paper's policy;
    explains the ~15% plateau for low-order-bit errors in Fig. 8)."""

    FIRST = "first"
    """Choose the numerically smallest tied candidate (deterministic)."""


@dataclass(frozen=True)
class RecoveryResult:
    """Full trace of one heuristic recovery attempt.

    Attributes
    ----------
    received:
        The DUE word as read from memory.
    candidates:
        All equidistant candidate codewords.
    candidate_messages:
        Their decoded k-bit messages (same order).
    valid_messages:
        The messages surviving the filter stage.
    filter_fell_back:
        True when filtering rejected everything and the engine reverted
        to the unfiltered candidates.
    scores:
        Ranker score per surviving message (same order as
        ``valid_messages``).
    chosen_message:
        The recovery target message.
    chosen_codeword:
        Its codeword.
    tied:
        Number of candidates sharing the winning score (1 = the ranker
        was decisive).
    """

    received: int
    candidates: tuple[int, ...]
    candidate_messages: tuple[int, ...]
    valid_messages: tuple[int, ...]
    filter_fell_back: bool
    scores: tuple[float, ...]
    chosen_message: int
    chosen_codeword: int
    tied: int

    @property
    def num_candidates(self) -> int:
        """Size of the unfiltered candidate list (Fig. 5a)."""
        return len(self.candidates)

    @property
    def num_valid(self) -> int:
        """Size of the filtered list (Fig. 5b)."""
        return len(self.valid_messages)

    def recovered(self, original_message: int) -> bool:
        """Did the attempt pick the true original message?"""
        return self.chosen_message == original_message


#: RecoveryResult fields, in declaration order (for the lazy variant's
#: equality/pickle downcast).
_RESULT_FIELDS = (
    "received",
    "candidates",
    "candidate_messages",
    "valid_messages",
    "filter_fell_back",
    "scores",
    "chosen_message",
    "chosen_codeword",
    "tied",
)


class _PrecompiledResult(RecoveryResult):
    """A :class:`RecoveryResult` whose tuple fields materialize lazily.

    The precompiled fast path decides the recovery from per-syndrome
    offsets without ever building the candidate/score tuples; most
    callers (the service, sweeps driven by ``sweep_probabilities``)
    only read ``chosen_message``/``chosen_codeword``, so the tuples
    are reconstructed on first access instead of per call.  Every
    field, once read, is bit-identical to the reference path's, and
    equality/hash/pickle interoperate with plain results.
    """

    def __init__(
        self,
        received: int,
        filter_fell_back: bool,
        chosen_message: int,
        chosen_codeword: int,
        tied: int,
        received_message: int,
        shift: int,
        entry,
        row,
    ) -> None:
        # Frozen-dataclass __setattr__ raises; seed the instance dict
        # wholesale (the frozen contract still holds for callers).
        self.__dict__ = {
            "received": received,
            "filter_fell_back": filter_fell_back,
            "chosen_message": chosen_message,
            "chosen_codeword": chosen_codeword,
            "tied": tied,
            "_received_message": received_message,
            "_shift": shift,
            "_entry": entry,
            "_row": row,
        }

    def __getattr__(self, name: str):
        if name == "candidates":
            received = self.received
            value = tuple(
                sorted(received ^ mask for mask in self._entry.masks)
            )
        elif name == "candidate_messages":
            shift = self._shift
            value = tuple(codeword >> shift for codeword in self.candidates)
        elif name == "valid_messages":
            if self.filter_fell_back:
                value = self.candidate_messages
            else:
                valid_offsets = self._row[0]
                received_message = self._received_message
                value = tuple(
                    message
                    for message in self.candidate_messages
                    if message ^ received_message in valid_offsets
                )
        elif name == "scores":
            scores_by_offset = self._row[1]
            received_message = self._received_message
            value = tuple(
                scores_by_offset[message ^ received_message]
                for message in self.valid_messages
            )
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value

    def _field_values(self) -> tuple:
        return tuple(getattr(self, name) for name in _RESULT_FIELDS)

    def __eq__(self, other: object):
        # The generated dataclass __eq__ requires identical classes;
        # interoperate with plain RecoveryResult in both directions
        # (reference __eq__ returns NotImplemented, Python reflects).
        if isinstance(other, RecoveryResult):
            return self._field_values() == tuple(
                getattr(other, name) for name in _RESULT_FIELDS
            )
        return NotImplemented

    def __hash__(self) -> int:
        # Matches the generated frozen-dataclass hash (field tuple).
        return hash(self._field_values())

    def __reduce__(self):
        # Pickle (and copy) as a fully materialized plain result: the
        # row holds table internals that must not cross process
        # boundaries, and receivers need no lazy machinery.
        return (RecoveryResult, self._field_values())


class SwdEcc:
    """Software-Defined ECC heuristic recovery engine.

    Parameters
    ----------
    code:
        The ECC code protecting the memory.
    filters:
        Hard-constraint filters; defaults to instruction legality (the
        paper's exemplar).  Pass an empty sequence for no filtering.
    ranker:
        Soft-preference ranker; defaults to mnemonic frequency.
    tie_break:
        Tie resolution policy (random by default, as in the paper).
    rng:
        RNG for random tie-breaking; supply a seeded instance for
        reproducible sweeps.
    cache:
        Enable the syndrome-memoized enumerator and the filter/ranker
        context caches (default).  Disable only to measure the uncached
        baseline; a ranker supplied by the caller keeps whatever cache
        setting it was built with.
    precompile:
        Build the full syndrome decode table at construction (see
        :meth:`precompile`).  Off by default: sweeps and tests mostly
        construct engines they drive through the already-vectorized
        paths, and the service opts in per worker.
    """

    def __init__(
        self,
        code: LinearBlockCode,
        filters: Sequence[CandidateFilter] | None = None,
        ranker: CandidateRanker | None = None,
        tie_break: TieBreak = TieBreak.RANDOM,
        rng: random.Random | None = None,
        cache: bool = True,
        precompile: bool = False,
    ) -> None:
        self._code = code
        self._enumerator = CandidateEnumerator(code, memoize=cache)
        if filters is None:
            filters = (InstructionLegalityFilter(),)
        self._filter = FilterChain(filters, cache=cache)
        self._ranker = ranker if ranker is not None else FrequencyRanker(cache=cache)
        self._tie_break = tie_break
        self._rng = rng if rng is not None else random.Random()
        # Metric objects are cached here so the per-recover() cost is a
        # couple of attribute reads and integer adds (counters are
        # default-on; see repro.obs).
        registry = obs_metrics.get_registry()
        self._event_log = obs_events.get_event_log()
        self._m_recoveries = registry.counter("swdecc.recoveries")
        self._m_ranker_evals = registry.counter(
            "ops.ranker_evals",
            help="Candidate messages scored by the ranker",
        )
        # The vectorized sweep path enumerates by per-message XORs
        # without going through the enumerator, so it charges the same
        # op classes itself (keeps sweep energy comparable to recover).
        self._m_ops_enum = registry.counter(
            "ops.candidate_enumerations",
            help="Candidate-codeword enumerations for DUEs",
        )
        self._m_ops_xor = registry.counter(
            "ops.xor", help="Modeled GF(2) XOR word operations"
        )
        self._m_fallbacks = registry.counter("swdecc.filter_fallbacks")
        self._m_escalations = registry.counter("swdecc.radius_escalations")
        self._m_ties = registry.counter("swdecc.tie_breaks")
        self._h_candidates = registry.histogram(
            "swdecc.candidates", buckets=obs_metrics.DEFAULT_COUNT_BUCKETS
        )
        self._h_valid = registry.histogram(
            "swdecc.valid_messages", buckets=obs_metrics.DEFAULT_COUNT_BUCKETS
        )
        # Precompiled fast-path state (see precompile()).
        self._m_ops_syndromes = registry.counter(
            "ops.syndrome_computes", help="Syndrome computations (H @ r)"
        )
        self._m_ops_filter = registry.counter(
            "ops.filter_evals",
            help="Candidate messages evaluated by the filter chain",
        )
        self._table: DecodeTable | None = None
        self._fast_hooks: tuple | None = None
        self._fast_chunks: tuple = ()
        self._fast_entry_get = None
        self._fast_word_bits = code.n
        self._row_cache = ContextCache()
        self._ce_syndromes: dict[int, int] = {}
        self._message_shift = code.n - code.k
        if precompile:
            if not cache:
                raise ValueError(
                    "precompile=True requires cache=True: the decode "
                    "table and its per-context decision rows are caches"
                )
            self.precompile()

    @property
    def code(self) -> LinearBlockCode:
        """The underlying ECC code."""
        return self._code

    @property
    def precompiled(self) -> bool:
        """True once :meth:`precompile` has built the decode table."""
        return self._table is not None

    @property
    def decode_table(self) -> DecodeTable | None:
        """The precompiled syndrome table, or ``None``."""
        return self._table

    def precompile(self) -> DecodeTable:
        """Build and install the syndrome decode table (idempotent).

        Materializes the complete ``syndrome -> (flip masks, message
        offsets)`` mapping (see :mod:`repro.ecc.decode_table`), wires
        it under the enumerator so even reference-path enumerations
        skip the per-syndrome column walk, and — when the code, filter
        chain, and ranker all certify spec-local semantics — arms the
        single-word fast path that turns :meth:`recover` into syndrome
        XOR + table probe + (cached) rank + choose.

        The fast path stays bit-identical to the reference pipeline:
        ineligible configurations (exotic code subclasses, filters or
        rankers without spec hooks, k > 32 messages) simply keep the
        reference path, and eligible ones fall back word-by-word for
        non-double-bit cosets so radius escalation bypasses the table
        cleanly.
        """
        if self._table is not None:
            return self._table
        table = DecodeTable(self._code)
        self._enumerator.install_table(table)
        self._ce_syndromes = self._code.syndrome_to_position
        hooks = None
        if table.supports_fast_path and self._code.k <= 32:
            predicate = self._filter.spec_predicate()
            scorer = self._ranker.spec_scorer()
            if predicate is not None and scorer is not None:
                hooks = (predicate, scorer)
        self._table = table
        self._fast_hooks = hooks
        # Hot-loop snapshots: the fast path inlines the chunked
        # syndrome XOR and the entry probe to skip method dispatch.
        self._fast_chunks = table.chunks
        self._fast_entry_get = table.entries.get
        self._fast_word_bits = self._code.n
        return table

    @property
    def filter_chain(self) -> FilterChain:
        """The configured filter chain."""
        return self._filter

    @property
    def ranker(self) -> CandidateRanker:
        """The configured ranker."""
        return self._ranker

    def _candidates_with_escalation(self, received: int) -> tuple[int, ...]:
        """Distance-2 candidates, escalating one radius if none exist.

        The fast enumeration assumes the DUE came from a double-bit
        flip; an accumulated triple-bit error may sit at distance >= 3
        from every codeword, in which case we escalate to radius
        ``t + 2`` list decoding before giving up.
        """
        candidates = self._enumerator.candidates(received)
        if candidates:
            return candidates
        self._m_escalations.inc()
        radius = self._code.correctable_bits() + 2
        obs_logging.emit(
            _log, logging.DEBUG, "radius escalation",
            received=f"0x{received:x}", radius=radius,
        )
        candidates = self._enumerator.candidates_within_radius(received, radius)
        if not candidates:
            raise RecoveryError(
                f"word 0x{received:x} has no candidate codewords within "
                f"radius {radius}"
            )
        return candidates

    def recover(
        self, received: int, context: RecoveryContext | None = None
    ) -> RecoveryResult:
        """Heuristically recover from the DUE word *received*.

        Assumes a double-bit error first (the paper's model); if no
        codeword lies at distance 2 — an accumulated higher-weight
        error — the enumeration escalates one radius before giving up
        with :class:`~repro.errors.RecoveryError`.  Propagates
        :class:`~repro.errors.DecodingError` when *received* is not a
        DUE in the first place.

        A precompiled engine (see :meth:`precompile`) serves clean
        2-bit cosets straight from the decode table — bit-identical
        results, including tie-break RNG consumption, at a fraction of
        the cost — and runs this reference pipeline for everything
        else.
        """
        if context is None:
            context = RecoveryContext()
        if self._fast_hooks is not None:
            result = self._recover_precompiled(received, context)
            if result is not None:
                return result
        start_ns = time.perf_counter_ns()
        with span("swdecc.recover"):
            with span("swdecc.enumerate"):
                candidates = self._candidates_with_escalation(received)
                candidate_messages = tuple(
                    self._code.extract_message(codeword)
                    for codeword in candidates
                )
            with span("swdecc.filter"):
                valid_messages = self._filter.apply(candidate_messages, context)
            fell_back = not valid_messages
            if fell_back:
                # The side information's premise failed (e.g. the original
                # word was not a legal instruction): recover from the raw
                # candidate list rather than giving up.
                valid_messages = candidate_messages
            with span("swdecc.rank"):
                scores = tuple(
                    self._ranker.score(message, context)
                    for message in valid_messages
                )
            with span("swdecc.choose"):
                best_score = max(scores)
                tied_messages = [
                    message
                    for message, score in zip(valid_messages, scores)
                    if score == best_score
                ]
                if len(tied_messages) == 1 or self._tie_break is TieBreak.FIRST:
                    chosen_message = min(tied_messages)
                else:
                    chosen_message = self._rng.choice(tied_messages)
                chosen_codeword = candidates[
                    candidate_messages.index(chosen_message)
                ]
        latency_ns = time.perf_counter_ns() - start_ns
        num_valid = 0 if fell_back else len(valid_messages)
        self._m_recoveries.inc()
        self._m_ranker_evals.inc(len(scores))
        if fell_back:
            self._m_fallbacks.inc()
            obs_logging.emit(
                _log, logging.DEBUG, "filter fell back",
                received=f"0x{received:x}",
                candidates=len(candidates),
                latency_ns=latency_ns,
            )
        if len(tied_messages) > 1:
            self._m_ties.inc()
        self._h_candidates.observe(len(candidates))
        self._h_valid.observe(num_valid)
        self._event_log.record(
            obs_events.DueEvent(
                received=received,
                num_candidates=len(candidates),
                num_valid=num_valid,
                filter_fell_back=fell_back,
                chosen_message=chosen_message,
                chosen_codeword=chosen_codeword,
                tied=len(tied_messages),
                latency_ns=latency_ns,
            )
        )
        return RecoveryResult(
            received=received,
            candidates=candidates,
            candidate_messages=candidate_messages,
            valid_messages=tuple(valid_messages),
            filter_fell_back=fell_back,
            scores=scores,
            chosen_message=chosen_message,
            chosen_codeword=chosen_codeword,
            tied=len(tied_messages),
        )

    def _recover_precompiled(
        self, received: int, context: RecoveryContext
    ) -> RecoveryResult | None:
        """Serve one recovery from the decode table, or ``None``.

        Returns ``None`` when *received* is not a clean 2-bit coset
        (no table entry), handing the radius-escalation case to the
        reference path untouched.  Raises the same
        :class:`~repro.errors.DecodingError` family, with the same
        messages, as the reference ``_check_due`` for non-DUE inputs.

        Op accounting charges what the lookup actually performs — one
        syndrome compute, one enumeration, a handful of XORs, plus
        filter/ranker evaluations only when a decision row is built —
        with the table's own construction charged once at build time,
        so grouping recoveries differently never changes the totals.
        """
        start_ns = time.perf_counter_ns()
        # Inlined DecodeTable.syndrome_of: same range check (negative
        # words shift to -1, which is truthy), same message, then the
        # chunked XOR probes, without per-call method dispatch.
        if received >> self._fast_word_bits:
            raise DecodingError(
                f"received word 0x{received:x} does not fit in "
                f"{self._code.n} bits"
            )
        chunks = self._fast_chunks
        if len(chunks) == 3:
            # Unrolled for the 3-probe shape every n <= 39 code takes.
            (low0, mask0, chunk0), (low1, mask1, chunk1), (low2, mask2, chunk2) = chunks
            syndrome = (
                chunk0[(received >> low0) & mask0]
                ^ chunk1[(received >> low1) & mask1]
                ^ chunk2[(received >> low2) & mask2]
            )
        else:
            syndrome = 0
            for low, mask, chunk in chunks:
                syndrome ^= chunk[(received >> low) & mask]
        self._m_ops_syndromes._value += 1
        if syndrome == 0:
            raise DecodingError(
                "received word is a codeword, not a DUE; nothing to enumerate"
            )
        if syndrome in self._ce_syndromes:
            raise DecodingError(
                "received word is a correctable 1-bit error, not a DUE"
            )
        entry = self._fast_entry_get(syndrome)
        if entry is None:
            return None
        received_message = received >> self._message_shift
        base = received_message & ALL_SELECTOR_FIELDS
        # Inlined ContextCache.values_for: same generation and cap
        # checks, minus the method dispatch.
        row_cache = self._row_cache
        if (
            context is row_cache._context
            and len(row_cache._values) < _ROW_CACHE_MAX
        ):
            rows = row_cache._values
        else:
            rows = row_cache.values_for(context)
        row_key = (syndrome << 32) | base
        row = rows.get(row_key)
        if row is None:
            row = self._build_decision_row(entry, base, context)
            rows[row_key] = row
        tied_offsets = row[2]
        fell_back = row[3]
        tied = row[5]
        if tied == 1:
            chosen_message = received_message ^ tied_offsets[0]
        elif self._tie_break is TieBreak.FIRST:
            chosen_message = min(
                [received_message ^ offset for offset in tied_offsets]
            )
        else:
            # Candidate messages are strictly increasing in candidate
            # order (distinct offsets, systematic extraction), so the
            # reference tie list is exactly this sorted list — one
            # rng.choice on an equal-length sequence consumes identical
            # RNG state and picks the identical element.
            chosen_message = self._rng.choice(
                sorted(received_message ^ offset for offset in tied_offsets)
            )
        chosen_codeword = received ^ entry.mask_by_offset[
            chosen_message ^ received_message
        ]
        latency_ns = time.perf_counter_ns() - start_ns
        num_candidates = row[6]
        num_valid = row[4]
        # Counter.inc minus its non-negativity guard (these amounts are
        # constants >= 0), and Histogram.observe with the row's
        # precomputed bucket indices: the per-call bookkeeping storm is
        # a measurable slice of a ~5 us fast path.
        self._m_ops_enum._value += 1
        self._m_ops_xor._value += tied + 1
        self._m_recoveries._value += 1
        if fell_back:
            self._m_fallbacks.inc()
            obs_logging.emit(
                _log, logging.DEBUG, "filter fell back",
                received=f"0x{received:x}",
                candidates=num_candidates,
                latency_ns=latency_ns,
            )
        if tied > 1:
            self._m_ties._value += 1
        histogram = self._h_candidates
        histogram._bucket_counts[row[7]] += 1
        histogram._count += 1
        histogram._sum += num_candidates
        if histogram._min is None or num_candidates < histogram._min:
            histogram._min = num_candidates
        if histogram._max is None or num_candidates > histogram._max:
            histogram._max = num_candidates
        histogram = self._h_valid
        histogram._bucket_counts[row[8]] += 1
        histogram._count += 1
        histogram._sum += num_valid
        if histogram._min is None or num_valid < histogram._min:
            histogram._min = num_valid
        if histogram._max is None or num_valid > histogram._max:
            histogram._max = num_valid
        # tuple.__new__ skips the namedtuple keyword/default wrapper;
        # the trailing None/None are DueEvent's address/true_message
        # defaults.
        self._event_log.record(
            tuple.__new__(
                obs_events.DueEvent,
                (
                    received, num_candidates, num_valid, fell_back,
                    chosen_message, chosen_codeword, tied, latency_ns,
                    None, None,
                ),
            )
        )
        result = _PrecompiledResult.__new__(_PrecompiledResult)
        result.__dict__ = {
            "received": received,
            "filter_fell_back": fell_back,
            "chosen_message": chosen_message,
            "chosen_codeword": chosen_codeword,
            "tied": tied,
            "_received_message": received_message,
            "_shift": self._message_shift,
            "_entry": entry,
            "_row": row,
        }
        return result

    def _build_decision_row(
        self, entry, base: int, context: RecoveryContext
    ) -> tuple:
        """Precompute one (syndrome, selector-class) decision row.

        Filter verdicts and ranker scores are pure functions of a
        candidate's decoded spec, and every candidate's spec is fixed
        by ``base`` (the received message's selector-field bits) XOR
        the syndrome's message offsets — so the whole
        filter → fallback → rank → find-ties pipeline runs once per
        (syndrome, base, context) and every later word in the class
        reuses the row.
        """
        predicate, scorer = self._fast_hooks
        offsets = entry.offsets
        all_fields = ALL_SELECTOR_FIELDS
        specs = [
            spec_for_selector_key(selector_key(base ^ (offset & all_fields)))
            for offset in offsets
        ]
        if self._filter.filters:
            self._m_ops_filter.inc(len(offsets))
        survivors = [
            (offset, spec)
            for offset, spec in zip(offsets, specs)
            if predicate(spec)
        ]
        fell_back = not survivors
        pool = list(zip(offsets, specs)) if fell_back else survivors
        scores = [scorer(spec, context) for _, spec in pool]
        self._m_ranker_evals.inc(len(scores))
        best_score = max(scores)
        tied_offsets = tuple(
            offset
            for (offset, _), score in zip(pool, scores)
            if score == best_score
        )
        # Histogram observations on the fast path are row constants, so
        # their bucket indices are resolved here, once per row.
        num_candidates = len(offsets)
        num_valid = len(survivors)
        return (
            frozenset(offset for offset, _ in survivors),
            {offset: score for (offset, _), score in zip(pool, scores)},
            tied_offsets,
            fell_back,
            num_valid,
            len(tied_offsets),
            num_candidates,
            bisect_left(self._h_candidates.buckets, num_candidates),
            bisect_left(self._h_valid.buckets, num_valid),
        )

    def recover_batch(
        self,
        received_words: Sequence[int],
        context: RecoveryContext | None = None,
    ) -> list[RecoveryResult]:
        """Recover a batch of DUE words sharing one side-info context.

        The batch entry point the sweep engine uses: the context is
        resolved once, and because enumeration is syndrome-memoized
        (words corrupted by the same error pattern share a syndrome),
        the pair set is computed once per coset and every subsequent
        word in the batch enumerates by pure XORs.  Results match
        word-by-word :meth:`recover` calls exactly.
        """
        if context is None:
            context = RecoveryContext()
        with span("swdecc.recover_batch"):
            return [self.recover(received, context) for received in received_words]

    def sweep_probabilities(
        self,
        messages: Sequence[int],
        error: int,
        context: RecoveryContext | None = None,
    ) -> list[tuple[float, int, int]]:
        """Exact per-message recovery stats for one error pattern.

        The pattern-vectorized fast path behind
        :class:`~repro.analysis.sweep.DueSweep` (see
        ``docs/performance.md``): every flip-pair mask of the pattern's
        syndrome satisfies ``H @ (error ^ mask) = 0``, so each
        ``error ^ mask`` is itself a codeword and the candidate
        *messages* of ``encode(m) ^ error`` are exactly
        ``m ^ extract_message(error ^ mask)``.  Per stored message,
        enumeration and extraction collapse into XORs against offsets
        computed once per pattern; filtering and ranking run through
        their usual (cached) paths.

        Returns ``(success_probability, num_candidates, num_valid)``
        per message — ``num_valid`` is 0 when the filter fell back —
        bit-identical to recovering ``encode(m) ^ error`` with
        :meth:`recover` and scoring the trace with
        :func:`success_probability` under this engine's tie-break.
        Recovery counters and histograms advance as usual; per-DUE
        *events* are not recorded (an exhaustive sweep would only churn
        the bounded ring).
        """
        if context is None:
            context = RecoveryContext()
        if not messages:
            return []
        code = self._code
        try:
            syndrome = self._enumerator._check_due(error)
        except DecodingError:
            return self._sweep_probabilities_slow(messages, error, context)
        masks = self._enumerator.pair_masks(syndrome)
        if not masks:
            # No distance-2 candidates: the per-word path escalates.
            return self._sweep_probabilities_slow(messages, error, context)
        offsets = tuple(
            code.extract_message(error ^ mask) for mask in masks
        )
        self._m_ops_xor.inc(len(masks))
        # Guard the linearity assumption (extract_message(a ^ b) ==
        # extract_message(a) ^ extract_message(b)) against exotic code
        # subclasses by checking the first word exhaustively.
        received0 = code.encode(messages[0]) ^ error
        if any(
            code.extract_message(received0 ^ mask) != messages[0] ^ offset
            for mask, offset in zip(masks, offsets)
        ):
            return self._sweep_probabilities_slow(messages, error, context)

        filter_chain = self._filter
        score_many = self._ranker.score_many
        tie_first = self._tie_break is TieBreak.FIRST
        num_candidates = len(offsets)
        stats: list[tuple[float, int, int]] = []
        fallbacks = 0
        tie_count = 0
        scored_total = 0
        h_candidates = self._h_candidates
        h_valid = self._h_valid
        for message in messages:
            candidate_messages = [message ^ offset for offset in offsets]
            valid = filter_chain.apply(candidate_messages, context)
            if valid:
                pool = valid
                num_valid = len(valid)
            else:
                pool = candidate_messages
                num_valid = 0
                fallbacks += 1
            scores = score_many(pool, context)
            scored_total += len(pool)
            best_score = max(scores)
            tied = [
                m for m, score in zip(pool, scores) if score == best_score
            ]
            if len(tied) > 1:
                tie_count += 1
            if message not in pool or message not in tied:
                probability = 0.0
            elif tie_first:
                probability = 1.0 if message == min(tied) else 0.0
            else:
                probability = 1.0 / len(tied)
            h_candidates.observe(num_candidates)
            h_valid.observe(num_valid)
            stats.append((probability, num_candidates, num_valid))
        self._m_recoveries.inc(len(messages))
        self._m_ranker_evals.inc(scored_total)
        self._m_ops_enum.inc(len(messages))
        self._m_ops_xor.inc(len(messages) * len(offsets))
        if fallbacks:
            self._m_fallbacks.inc(fallbacks)
            obs_logging.emit(
                _log, logging.DEBUG, "filter fell back (vectorized sweep)",
                error=f"0x{error:x}", count=fallbacks,
                messages=len(messages),
            )
        if tie_count:
            self._m_ties.inc(tie_count)
        return stats

    def _sweep_probabilities_slow(
        self,
        messages: Sequence[int],
        error: int,
        context: RecoveryContext,
    ) -> list[tuple[float, int, int]]:
        """Per-word reference path for :meth:`sweep_probabilities`.

        Used when the pattern is not a clean 2-bit DUE coset (so the
        per-word path can escalate or raise exactly as :meth:`recover`
        would) or the code's message extraction is not linear.
        """
        code = self._code
        stats = []
        for message in messages:
            result = self.recover(code.encode(message) ^ error, context)
            stats.append((
                success_probability(result, message, self._tie_break),
                result.num_candidates,
                0 if result.filter_fell_back else result.num_valid,
            ))
        return stats

    def recovery_probability(
        self, received: int, original_message: int, context: RecoveryContext | None = None
    ) -> float:
        """Exact probability that :meth:`recover` returns the original.

        Computes the analytical success probability of the configured
        strategy — 1/|tied| when the original is among the top-scored
        candidates, else 0 — removing tie-break sampling noise from
        sweeps.  This is how the per-pattern success *rates* of Figs. 6
        and 8 are evaluated.
        """
        if context is None:
            context = RecoveryContext()
        candidates = self._candidates_with_escalation(received)
        candidate_messages = tuple(
            self._code.extract_message(codeword) for codeword in candidates
        )
        valid_messages = self._filter.apply(candidate_messages, context)
        if not valid_messages:
            valid_messages = candidate_messages
        if original_message not in valid_messages:
            return 0.0
        scores = [self._ranker.score(m, context) for m in valid_messages]
        self._m_ranker_evals.inc(len(scores))
        best_score = max(scores)
        tied = [
            message
            for message, score in zip(valid_messages, scores)
            if score == best_score
        ]
        if original_message not in tied:
            return 0.0
        if self._tie_break is TieBreak.FIRST:
            return 1.0 if original_message == min(tied) else 0.0
        return 1.0 / len(tied)


def success_probability(
    result: RecoveryResult,
    original_message: int,
    tie_break: TieBreak = TieBreak.RANDOM,
) -> float:
    """Exact success probability of an already-computed recovery trace.

    Equivalent to :meth:`SwdEcc.recovery_probability` but reusing the
    enumeration/filter/rank work captured in *result* — the sweep
    harness calls :meth:`SwdEcc.recover` once per DUE and derives the
    probability from the trace.
    """
    if original_message not in result.valid_messages:
        return 0.0
    best_score = max(result.scores)
    tied = [
        message
        for message, score in zip(result.valid_messages, result.scores)
        if score == best_score
    ]
    if original_message not in tied:
        return 0.0
    if tie_break is TieBreak.FIRST:
        return 1.0 if original_message == min(tied) else 0.0
    return 1.0 / len(tied)
