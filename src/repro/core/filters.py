"""Candidate filters: hard side-information constraints.

A filter removes candidate messages that the side information proves
impossible.  The exemplar is :class:`InstructionLegalityFilter` — the
paper's "filter out the candidates that are not legal MIPS
instructions" — and the data-memory filters implement the Sec. III-B
suggestions (low-magnitude integers, pointers within the address
space).

Filters must be *sound with respect to their premise*: if the premise
holds (the word really was a legal instruction / small integer /
pointer), the true message always survives.  The engine in
:mod:`repro.core.swdecc` handles the premise-violated case by falling
back to the unfiltered candidate list when a filter empties it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

from repro.isa.decoder import is_legal
from repro.core.cache import MISSING, ContextCache
from repro.core.sideinfo import RecoveryContext
from repro.obs import metrics as obs_metrics

__all__ = [
    "CandidateFilter",
    "InstructionLegalityFilter",
    "InstructionPairLegalityFilter",
    "OracleLegalityFilter",
    "IntegerMagnitudeFilter",
    "PointerRangeFilter",
    "FilterChain",
]


class CandidateFilter(ABC):
    """Interface: reduce a candidate message list using side information."""

    #: Human-readable name used in experiment reports.
    name: str = "filter"

    #: True when the filter decides each message independently of the
    #: others in the list (all built-in filters do).  Pointwise chains
    #: are eligible for per-message verdict caching; set this False in
    #: subclasses whose keep/drop decision depends on the whole list
    #: (e.g. a top-k filter) to opt out of the cache.
    pointwise: bool = True

    @abstractmethod
    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        """Return the messages consistent with the side information.

        Implementations must preserve order and must not invent
        messages that were not in the input.
        """

    def spec_predicate(self):
        """A ``spec -> bool`` verdict function, or ``None``.

        The precompiled fast path (see ``repro.ecc.decode_table``)
        caches filter verdicts per (syndrome, selector-field) class,
        which is only sound when the filter's keep/drop decision is a
        pure function of the message's decoded
        :class:`~repro.isa.opcodes.InstructionSpec` (``None`` for
        illegal words) — i.e. legality-style field-local filters.
        Filters whose verdict depends on other message bits or on the
        context must return ``None`` (the default) to keep the engine
        on the reference path.
        """
        return None


class InstructionLegalityFilter(CandidateFilter):
    """Keep only messages that decode as legal MIPS instructions.

    The first stage of both the filtering-only and the
    filtering-and-ranking strategies of Sec. IV.
    """

    name = "instruction-legality"

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        return tuple(message for message in messages if is_legal(message))

    def spec_predicate(self):
        """Legality is exactly "the word decodes to a spec"."""
        return _spec_is_legal


class OracleLegalityFilter(CandidateFilter):
    """Legality filtering for any ISA, via a supplied oracle.

    The paper's technique is ISA-agnostic: all it needs is a predicate
    "is this word a legal instruction?".  Supply one (e.g.
    :func:`repro.isa_rv.is_legal` for RV32I) and this filter plays the
    role :class:`InstructionLegalityFilter` plays for MIPS.
    """

    def __init__(
        self, is_legal_word: Callable[[int], bool], name: str = "oracle-legality"
    ) -> None:
        self._is_legal = is_legal_word
        self.name = name

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        return tuple(message for message in messages if self._is_legal(message))


class InstructionPairLegalityFilter(CandidateFilter):
    """Keep 64-bit messages whose two halves are both legal instructions.

    The paper's future work proposes adapting SWD-ECC to 64-bit ISAs
    and memories; with the common (72, 64) SECDED code, one protected
    word holds *two* 32-bit MIPS instructions, so a candidate message
    is plausible only when both halves decode.  Requiring two legality
    checks prunes roughly quadratically harder than one.
    """

    name = "instruction-pair-legality"

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        return tuple(
            message
            for message in messages
            if is_legal(message >> 32) and is_legal(message & 0xFFFF_FFFF)
        )


class IntegerMagnitudeFilter(CandidateFilter):
    """Keep messages below the context's unsigned magnitude bound.

    Implements the paper's example of ruling out candidates "whose
    messages have 1s in the most-significant bit positions" when the
    location is known to hold small unsigned integers.  A no-op when
    the context carries no bound.
    """

    name = "integer-magnitude"

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        bound = context.value_bound
        if bound is None:
            return tuple(messages)
        return tuple(message for message in messages if message < bound)


class PointerRangeFilter(CandidateFilter):
    """Keep messages inside the application's virtual address range.

    Implements the paper's pointer example: candidates pointing outside
    the allocated address space cannot be the original pointer.  A
    no-op when the context carries no range.
    """

    name = "pointer-range"

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        if context.pointer_range is None:
            return tuple(messages)
        low, high = context.pointer_range
        return tuple(message for message in messages if low <= message < high)


def _spec_is_legal(spec) -> bool:
    """`InstructionLegalityFilter`'s verdict, keyed by decoded spec."""
    return spec is not None


def _spec_always_true(spec) -> bool:
    """The identity chain's verdict: every message survives."""
    return True


class FilterChain(CandidateFilter):
    """Apply several filters in sequence.

    Unlike the engine-level fallback, the chain itself is strict: it
    simply composes its members.  An empty chain is the identity.

    When every member is pointwise (see
    :attr:`CandidateFilter.pointwise`), the chain memoizes per-message
    keep/drop verdicts per context (see :mod:`repro.core.cache`): a
    legality verdict is a pure function of the message, and exhaustive
    sweeps re-ask about the same messages hundreds of times.  Hit/miss
    totals are exported as ``filter.cache_hits`` /
    ``filter.cache_misses``.

    Parameters
    ----------
    filters:
        The member filters, applied in order.
    cache:
        Enable the per-message verdict memo (default).  Disable to
        measure the uncached baseline.
    """

    name = "chain"

    def __init__(
        self, filters: Sequence[CandidateFilter], cache: bool = True
    ) -> None:
        self._filters = tuple(filters)
        self.name = "+".join(f.name for f in self._filters) or "identity"
        self._cacheable = (
            cache
            and bool(self._filters)
            and all(f.pointwise for f in self._filters)
        )
        self._verdicts = ContextCache()
        registry = obs_metrics.get_registry()
        self._m_hits = registry.counter("filter.cache_hits")
        self._m_misses = registry.counter("filter.cache_misses")
        self._m_evals = registry.counter(
            "ops.filter_evals",
            help="Candidate messages evaluated by the filter chain",
        )

    @property
    def filters(self) -> tuple[CandidateFilter, ...]:
        """The composed filters, in application order."""
        return self._filters

    def spec_predicate(self):
        """The chain's composed spec verdict, or ``None``.

        Available only when *every* member provides one (an empty
        chain is the always-keep identity); any member on the
        reference-only default disables the whole chain's fast path.
        """
        predicates = []
        for candidate_filter in self._filters:
            predicate = candidate_filter.spec_predicate()
            if predicate is None:
                return None
            predicates.append(predicate)
        if not predicates:
            return _spec_always_true
        if len(predicates) == 1:
            return predicates[0]
        return lambda spec: all(predicate(spec) for predicate in predicates)

    def apply(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> tuple[int, ...]:
        # One batched inc per apply(); the identity chain does no work.
        if self._filters and messages:
            self._m_evals.inc(len(messages))
        if not self._cacheable:
            current = tuple(messages)
            for candidate_filter in self._filters:
                current = candidate_filter.apply(current, context)
            return current
        verdicts = self._verdicts.values_for(context)
        hits = 0
        kept = []
        for message in messages:
            verdict = verdicts.get(message, MISSING)
            if verdict is MISSING:
                verdict = self._passes(message, context)
                verdicts[message] = verdict
            else:
                hits += 1
            if verdict:
                kept.append(message)
        # Batch the counter updates: one inc pair per apply() call keeps
        # the per-message hot loop free of instrumentation.
        if hits:
            self._m_hits.inc(hits)
        misses = len(messages) - hits
        if misses:
            self._m_misses.inc(misses)
        return tuple(kept)

    def _passes(self, message: int, context: RecoveryContext) -> bool:
        """Run the full chain on a single message (pointwise members)."""
        for candidate_filter in self._filters:
            if not candidate_filter.apply((message,), context):
                return False
        return True
