"""The system-level DUE handling flow of the paper's Fig. 3.

On a DUE, a conventional system crashes; a high-end system poisons the
word or rolls back.  Fig. 3 inserts two cheap outs before heuristic
recovery — reload a *clean page* from backing store, or roll back to a
*recent checkpoint* — and only then lets SWD-ECC speculate.

:class:`RecoveryPipeline` implements that decision ladder over two
small protocols so any memory model can plug in:

- :class:`PageSource` — can the original word be refetched (clean page)?
- :class:`CheckpointSource` — is there a checkpoint to roll back to?
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import RecoveryResult, SwdEcc
from repro.obs import events as obs_events
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

_log = obs_logging.get_logger("recovery")

__all__ = [
    "RecoveryAction",
    "RecoveryOutcome",
    "PageSource",
    "CheckpointSource",
    "RecoveryPipeline",
]


class RecoveryAction(enum.Enum):
    """What the system did about a DUE."""

    PAGE_FAULT_RELOAD = "page-fault-reload"
    """The page was clean; the word was refetched from backing store."""

    ROLLBACK = "rollback"
    """Execution state was restored from a checkpoint."""

    HEURISTIC = "heuristic"
    """SWD-ECC chose a candidate message (probabilistic success)."""

    CRASH = "crash"
    """No recovery path was available or configured (kernel panic)."""


@dataclass(frozen=True)
class RecoveryOutcome:
    """Result of running the Fig. 3 ladder for one DUE.

    Attributes
    ----------
    action:
        Which rung of the ladder handled the error.
    word:
        The recovered 32-bit message, when the action produced one
        (reload or heuristic); ``None`` for rollback and crash.
    heuristic:
        The full :class:`~repro.core.swdecc.RecoveryResult` trace when
        the heuristic ran.
    """

    action: RecoveryAction
    word: int | None = None
    heuristic: RecoveryResult | None = None

    @property
    def made_forward_progress(self) -> bool:
        """True when execution can continue without replaying work."""
        return self.action in (
            RecoveryAction.PAGE_FAULT_RELOAD,
            RecoveryAction.HEURISTIC,
        )


@runtime_checkable
class PageSource(Protocol):
    """Backing store that may hold a clean copy of a corrupted word."""

    def clean_copy(self, address: int) -> int | None:
        """Return the original word at *address*, or ``None`` if the
        page is dirty or unmapped."""


@runtime_checkable
class CheckpointSource(Protocol):
    """A checkpointing facility the pipeline can roll back to."""

    def has_checkpoint(self) -> bool:
        """True when a restorable checkpoint exists."""

    def rollback(self) -> None:
        """Restore the most recent checkpoint."""


class RecoveryPipeline:
    """The Fig. 3 decision ladder: reload, roll back, or speculate.

    Parameters
    ----------
    engine:
        The SWD-ECC heuristic engine (the last rung).
    page_source:
        Optional clean-page backing store.
    checkpoint_source:
        Optional checkpoint facility.
    allow_heuristic:
        When False the ladder models a conventional system: after the
        cheap outs fail it crashes instead of speculating.
    """

    def __init__(
        self,
        engine: SwdEcc,
        page_source: PageSource | None = None,
        checkpoint_source: CheckpointSource | None = None,
        allow_heuristic: bool = True,
    ) -> None:
        self._engine = engine
        self._page_source = page_source
        self._checkpoint_source = checkpoint_source
        self._allow_heuristic = allow_heuristic
        registry = obs_metrics.get_registry()
        self._m_dues = registry.counter("recovery.dues_handled")
        self._m_actions = {
            action: registry.counter(f"recovery.action.{action.value}")
            for action in RecoveryAction
        }

    @property
    def engine(self) -> SwdEcc:
        """The SWD-ECC engine used on the heuristic rung."""
        return self._engine

    def handle_due(
        self,
        address: int,
        received: int,
        context: RecoveryContext | None = None,
    ) -> RecoveryOutcome:
        """Run the ladder for the DUE word *received* at *address*."""
        with span("recovery.handle_due"):
            outcome = self._run_ladder(address, received, context)
        self._m_dues.inc()
        self._m_actions[outcome.action].inc()
        obs_logging.emit(
            _log, logging.DEBUG, "due handled",
            address=f"0x{address:x}", action=outcome.action.value,
        )
        return outcome

    def _run_ladder(
        self,
        address: int,
        received: int,
        context: RecoveryContext | None,
    ) -> RecoveryOutcome:
        if self._page_source is not None:
            clean = self._page_source.clean_copy(address)
            if clean is not None:
                return RecoveryOutcome(
                    action=RecoveryAction.PAGE_FAULT_RELOAD, word=clean
                )
        if (
            self._checkpoint_source is not None
            and self._checkpoint_source.has_checkpoint()
        ):
            self._checkpoint_source.rollback()
            return RecoveryOutcome(action=RecoveryAction.ROLLBACK)
        if self._allow_heuristic:
            result = self._engine.recover(received, context)
            # The engine cannot know the faulting address; enrich the
            # event it just emitted now that the pipeline does.
            obs_events.get_event_log().annotate_last(address=address)
            return RecoveryOutcome(
                action=RecoveryAction.HEURISTIC,
                word=result.chosen_message,
                heuristic=result,
            )
        return RecoveryOutcome(action=RecoveryAction.CRASH)
