"""Context-keyed memoization for the filter/rank hot path.

Filter verdicts and ranker scores are pure functions of the k-bit
message *given a fixed* :class:`~repro.core.sideinfo.RecoveryContext`
(contexts are frozen dataclasses; their tables never mutate).  Sweeps
call those functions hundreds of thousands of times with one context
per benchmark image, so a per-context ``message -> value`` memo turns
the dominant cost — MIPS decode plus table lookups per candidate —
into a dict hit.

:class:`ContextCache` keys on context *identity* (``is``), not
equality: equality on a context would hash its frequency tables on
every lookup, costing more than the work it saves.  The cache keeps
one context generation at a time — rebinding to a new context clears
it — which matches how the sweep engine uses contexts and bounds the
memory to one workload's distinct messages.  A hard entry cap guards
pathological churn.

Aliasing contract: :meth:`ContextCache.values_for` hands hot loops the
*live* memo dict, so the cap must be enforced with an **in-place**
``dict.clear()`` — rebinding ``self._values`` to a fresh dict would
leave any caller that fetched the dict earlier in the same generation
writing into an orphaned copy, silently losing memoization (and
skewing the ``*.cache_hit_rate`` gauges) for the rest of its loop.  A
*context switch*, by contrast, deliberately rebinds to a fresh dict:
a stale holder's entries belong to the dead generation and must not
leak into the new one.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ContextCache", "MISSING"]

#: Sentinel distinguishing "not cached" from a cached ``None``/0 value.
MISSING = object()

#: Entries per generation before the memo is dropped and restarted.
#: 2^16 comfortably covers an exhaustive 741-pattern sweep (at most
#: ~12 candidate messages per pattern) while bounding worst-case RAM.
MAX_ENTRIES = 1 << 16


class ContextCache:
    """A one-generation ``(context, message) -> value`` memo.

    The caller owns the value semantics; this class only handles
    generation tracking (context identity) and the size cap.
    """

    __slots__ = ("_context", "_values")

    def __init__(self) -> None:
        self._context: Any = MISSING
        self._values: dict[int, Any] = {}

    def lookup(self, context: Any, message: int) -> Any:
        """Return the cached value for *message*, or :data:`MISSING`.

        Rebinding to a different context (by identity) clears the memo.
        """
        if context is not self._context:
            self._context = context
            self._values = {}
            return MISSING
        return self._values.get(message, MISSING)

    def store(self, message: int, value: Any) -> None:
        """Record *value* for *message* under the current generation."""
        if len(self._values) >= MAX_ENTRIES:
            # In place: hot loops may hold this dict via values_for().
            self._values.clear()
        self._values[message] = value

    def values_for(self, context: Any) -> dict[int, Any]:
        """The live memo dict for *context*, for inlined hot loops.

        Callers that look up many messages per call can fetch the dict
        once and use plain ``dict.get``/``dict.__setitem__``, skipping a
        method call per message.  Rebinding to a new context rebinds to
        a fresh dict (old-generation holders must not pollute the new
        context); arriving at the entry cap clears **in place**, so a
        holder fetched earlier in the same generation keeps memoizing
        into the live dict instead of an orphaned one.
        """
        if context is not self._context:
            self._context = context
            self._values = {}
        elif len(self._values) >= MAX_ENTRIES:
            self._values.clear()
        return self._values

    def __len__(self) -> int:
        return len(self._values)
