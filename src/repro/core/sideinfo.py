"""Side-information containers passed to filters and rankers.

Sec. III-B of the paper defines side information as knowledge about the
*source* (message contents) that the ECC layer alone does not have:
whether the word is an instruction or data, the program's instruction
mix, the data type stored at the address, neighbouring words in the
cache line.  :class:`RecoveryContext` carries whichever of those the
system can supply; filters and rankers consume the fields they
understand and ignore the rest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.program.stats import BigramTable, FrequencyTable

__all__ = ["MemoryKind", "RecoveryContext"]


class MemoryKind(enum.Enum):
    """What the corrupted word is believed to hold."""

    INSTRUCTION = "instruction"
    DATA = "data"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RecoveryContext:
    """Everything the system knows about a DUE besides the received bits.

    Attributes
    ----------
    kind:
        Instruction vs data memory; selects the recovery strategy in
        the Fig. 3 flow.
    frequency_table:
        Per-mnemonic statistics of the program image (instruction
        memory side information, Fig. 7).
    bigram_table:
        Adjacent-mnemonic statistics (the "more sophisticated side
        information" extension); used together with the neighbour
        mnemonics below.
    preceding_mnemonic:
        Mnemonic of the instruction immediately before the corrupted
        word, when it is known good.
    following_mnemonic:
        Mnemonic of the instruction immediately after, when known good.
    neighborhood:
        Known-good 32-bit words from the same cache line (data memory
        side information; Sec. III-B's intra-cache-line correlation).
    value_bound:
        When the location is known to hold small unsigned integers, an
        exclusive upper bound on plausible values.
    pointer_range:
        When the location is known to hold a pointer, the (lo, hi)
        byte range of the application's address space.
    address:
        The memory address of the DUE, when known.
    """

    kind: MemoryKind = MemoryKind.UNKNOWN
    frequency_table: FrequencyTable | None = None
    bigram_table: BigramTable | None = None
    preceding_mnemonic: str | None = None
    following_mnemonic: str | None = None
    neighborhood: tuple[int, ...] = field(default_factory=tuple)
    value_bound: int | None = None
    pointer_range: tuple[int, int] | None = None
    address: int | None = None

    @classmethod
    def for_instructions(
        cls,
        frequency_table: FrequencyTable | None = None,
        address: int | None = None,
        bigram_table: BigramTable | None = None,
        preceding_mnemonic: str | None = None,
        following_mnemonic: str | None = None,
    ) -> RecoveryContext:
        """Context for a DUE in instruction memory."""
        return cls(
            kind=MemoryKind.INSTRUCTION,
            frequency_table=frequency_table,
            bigram_table=bigram_table,
            preceding_mnemonic=preceding_mnemonic,
            following_mnemonic=following_mnemonic,
            address=address,
        )

    @classmethod
    def for_data(
        cls,
        neighborhood: tuple[int, ...] = (),
        value_bound: int | None = None,
        pointer_range: tuple[int, int] | None = None,
        address: int | None = None,
    ) -> RecoveryContext:
        """Context for a DUE in data memory."""
        return cls(
            kind=MemoryKind.DATA,
            neighborhood=tuple(neighborhood),
            value_bound=value_bound,
            pointer_range=pointer_range,
            address=address,
        )
