"""SWD-ECC core: the heuristic DUE-recovery engine and system flow.

Quickstart::

    from repro.core import SwdEcc, RecoveryContext
    from repro.ecc import canonical_secded_39_32
    from repro.program import synthesize_benchmark, FrequencyTable

    code = canonical_secded_39_32()
    image = synthesize_benchmark("mcf")
    engine = SwdEcc(code)
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))

    received = code.encode(image.words[0]) ^ 0b11  # a 2-bit DUE
    result = engine.recover(received, context)
    result.recovered(image.words[0])
"""

from repro.core.filters import (
    CandidateFilter,
    FilterChain,
    InstructionLegalityFilter,
    InstructionPairLegalityFilter,
    IntegerMagnitudeFilter,
    PointerRangeFilter,
)
from repro.core.rankers import (
    BigramContextRanker,
    BitwiseSimilarityRanker,
    CandidateRanker,
    FrequencyRanker,
    MagnitudeSimilarityRanker,
    PairFrequencyRanker,
    UniformRanker,
)
from repro.core.recovery import (
    CheckpointSource,
    PageSource,
    RecoveryAction,
    RecoveryOutcome,
    RecoveryPipeline,
)
from repro.core.sideinfo import MemoryKind, RecoveryContext
from repro.core.swdecc import RecoveryResult, SwdEcc, TieBreak

__all__ = [
    "CandidateFilter",
    "FilterChain",
    "InstructionLegalityFilter",
    "InstructionPairLegalityFilter",
    "IntegerMagnitudeFilter",
    "PointerRangeFilter",
    "BigramContextRanker",
    "BitwiseSimilarityRanker",
    "CandidateRanker",
    "FrequencyRanker",
    "PairFrequencyRanker",
    "MagnitudeSimilarityRanker",
    "UniformRanker",
    "CheckpointSource",
    "PageSource",
    "RecoveryAction",
    "RecoveryOutcome",
    "RecoveryPipeline",
    "MemoryKind",
    "RecoveryContext",
    "RecoveryResult",
    "SwdEcc",
    "TieBreak",
]
