"""Candidate rankers: soft side-information preferences.

After filtering, several candidates usually remain; a ranker scores
them so the engine can pick the most plausible one.  The paper's
exemplar is :class:`FrequencyRanker` — "choose a valid candidate whose
logical operation occurs most frequently in the application binary
image" — with random choice as the baseline.  The data-memory rankers
implement the Sec. III-B ideas: integral closeness to cache-line
neighbours and bitwise (majority-vote-like) similarity.

Scores are floats where higher is better; rankers must be
deterministic functions of (message, context) so experiments are
reproducible (randomness enters only through the engine's tie-breaker).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.bits import popcount
from repro.core.cache import MISSING, ContextCache
from repro.core.sideinfo import RecoveryContext
from repro.isa.decoder import try_decode
from repro.obs import metrics as obs_metrics

__all__ = [
    "CandidateRanker",
    "FrequencyRanker",
    "OracleFrequencyRanker",
    "BigramContextRanker",
    "PairFrequencyRanker",
    "UniformRanker",
    "MagnitudeSimilarityRanker",
    "BitwiseSimilarityRanker",
]


class CandidateRanker(ABC):
    """Interface: score a candidate message, higher = more plausible."""

    #: Human-readable name used in experiment reports.
    name: str = "ranker"

    @abstractmethod
    def score(self, message: int, context: RecoveryContext) -> float:
        """Return the plausibility score of *message*."""

    def score_many(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> list[float]:
        """Score several messages: ``[self.score(m, context) ...]``.

        Subclasses may override with a batched implementation; results
        must equal the per-message ones exactly.
        """
        return [self.score(message, context) for message in messages]

    def spec_scorer(self):
        """A ``(spec, context) -> float`` scorer, or ``None``.

        The precompiled fast path (see ``repro.ecc.decode_table``)
        caches scores per (syndrome, selector-field) class, which is
        only sound when the score is a pure function of the message's
        decoded :class:`~repro.isa.opcodes.InstructionSpec` (``None``
        for illegal words) and the context.  Rankers that read other
        message bits return ``None`` (the default) to keep the engine
        on the reference path; providers must return exactly what
        :meth:`score` would for any message decoding to that spec.
        """
        return None


class _MemoizedRanker(CandidateRanker):
    """Base for rankers whose score is a pure function of (message,
    context): memoizes ``message -> score`` per context identity (see
    :mod:`repro.core.cache`).  Subclasses implement
    :meth:`_compute_score`; hit/miss totals are exported as
    ``ranker.cache_hits`` / ``ranker.cache_misses``.
    """

    def __init__(self, cache: bool = True) -> None:
        self._cache = ContextCache() if cache else None
        registry = obs_metrics.get_registry()
        self._m_hits = registry.counter("ranker.cache_hits")
        self._m_misses = registry.counter("ranker.cache_misses")

    def score(self, message: int, context: RecoveryContext) -> float:
        cache = self._cache
        if cache is None:
            return self._compute_score(message, context)
        value = cache.lookup(context, message)
        if value is not MISSING:
            self._m_hits.inc()
            return value
        self._m_misses.inc()
        value = self._compute_score(message, context)
        cache.store(message, value)
        return value

    def score_many(
        self, messages: Sequence[int], context: RecoveryContext
    ) -> list[float]:
        """Batched :meth:`score`: one memo fetch, inline dict lookups."""
        cache = self._cache
        compute = self._compute_score
        if cache is None:
            return [compute(message, context) for message in messages]
        values = cache.values_for(context)
        get = values.get
        hits = 0
        scores = []
        for message in messages:
            value = get(message, MISSING)
            if value is MISSING:
                value = compute(message, context)
                values[message] = value
            else:
                hits += 1
            scores.append(value)
        if hits:
            self._m_hits.inc(hits)
        misses = len(messages) - hits
        if misses:
            self._m_misses.inc(misses)
        return scores

    @abstractmethod
    def _compute_score(self, message: int, context: RecoveryContext) -> float:
        """The uncached scoring function."""


class FrequencyRanker(_MemoizedRanker):
    """Score by the mnemonic's relative frequency in the program image.

    Messages that are not legal instructions score 0.0 (they only
    appear here when legality filtering was skipped or fell back).
    Without a frequency table in the context every legal message scores
    the same small positive value, degrading gracefully to
    filtering-only behaviour.
    """

    name = "mnemonic-frequency"

    def _compute_score(self, message: int, context: RecoveryContext) -> float:
        instruction = try_decode(message)
        if instruction is None:
            return 0.0
        if context.frequency_table is None:
            return 1.0
        return context.frequency_table.frequency(instruction.mnemonic)

    def spec_scorer(self):
        """Spec-keyed twin of :meth:`_compute_score`.

        ``Instruction.mnemonic`` is ``spec.mnemonic``, so the score is
        a pure function of the decoded spec.  Subclasses overriding
        ``_compute_score`` must opt in again explicitly — the exact
        type check keeps an inherited scorer from silently diverging
        from an overridden reference path.
        """
        if type(self) is not FrequencyRanker:
            return None
        return _frequency_spec_score


def _frequency_spec_score(spec, context: RecoveryContext) -> float:
    if spec is None:
        return 0.0
    if context.frequency_table is None:
        return 1.0
    return context.frequency_table.frequency(spec.mnemonic)


def _uniform_spec_score(spec, context: RecoveryContext) -> float:
    return 1.0


class OracleFrequencyRanker(_MemoizedRanker):
    """Frequency ranking for any ISA, via a supplied mnemonic oracle.

    The ISA-agnostic counterpart of :class:`FrequencyRanker`: scores
    ``context.frequency_table.frequency(mnemonic(message))`` using a
    caller-supplied ``mnemonic(word) -> str | None`` function (``None``
    for illegal words, which score 0.0).
    """

    def __init__(
        self,
        mnemonic_of_word,
        name: str = "oracle-frequency",
        cache: bool = True,
    ) -> None:
        super().__init__(cache=cache)
        self._mnemonic = mnemonic_of_word
        self.name = name

    def _compute_score(self, message: int, context: RecoveryContext) -> float:
        mnemonic = self._mnemonic(message)
        if mnemonic is None:
            return 0.0
        if context.frequency_table is None:
            return 1.0
        return context.frequency_table.frequency(mnemonic)


class BigramContextRanker(CandidateRanker):
    """Rank by fit with the *neighbouring* instructions, not just the
    global mix.

    The paper's conclusion notes "there is still room for improvement
    with a more sophisticated use of side information"; this is the
    natural next step after unigram frequency.  The score is

    ``P(candidate | preceding) * P(following | candidate)``

    using the smoothed conditionals of
    :class:`~repro.program.stats.BigramTable`.  Whichever neighbour is
    unknown contributes the unigram frequency instead, so the ranker
    degrades gracefully to :class:`FrequencyRanker` when no context is
    available.
    """

    name = "bigram-context"

    def __init__(self) -> None:
        # Degradation path when the context carries no bigram table;
        # built once because ranker construction resolves obs counters.
        self._unigram_fallback = FrequencyRanker()

    def score(self, message: int, context: RecoveryContext) -> float:
        instruction = try_decode(message)
        if instruction is None:
            return 0.0
        table = context.bigram_table
        if table is None:
            return self._unigram_fallback.score(message, context)
        mnemonic = instruction.mnemonic
        if context.preceding_mnemonic is not None:
            forward = table.conditional(mnemonic, context.preceding_mnemonic)
        else:
            forward = table.unigram.frequency(mnemonic)
        if context.following_mnemonic is not None:
            backward = table.conditional(context.following_mnemonic, mnemonic)
        else:
            backward = 1.0
        return forward * backward


class PairFrequencyRanker(_MemoizedRanker):
    """Frequency ranking for 64-bit messages holding two instructions.

    Scores the product of the two halves' mnemonic frequencies
    (treating adjacent instructions as independent draws from the
    program's mix — the same first-order model the paper's single-word
    ranker uses).  Messages with an illegal half score 0.0.
    """

    name = "pair-mnemonic-frequency"

    def _compute_score(self, message: int, context: RecoveryContext) -> float:
        high = try_decode(message >> 32)
        low = try_decode(message & 0xFFFF_FFFF)
        if high is None or low is None:
            return 0.0
        if context.frequency_table is None:
            return 1.0
        return context.frequency_table.frequency(
            high.mnemonic
        ) * context.frequency_table.frequency(low.mnemonic)


class UniformRanker(CandidateRanker):
    """Every candidate scores alike: selection is pure tie-breaking.

    With the engine's random tie-breaker this is the paper's baseline
    of choosing a candidate uniformly at random.
    """

    name = "uniform"

    def score(self, message: int, context: RecoveryContext) -> float:
        return 1.0

    def spec_scorer(self):
        """Constant, so trivially spec-pure (exact type only, as with
        :meth:`FrequencyRanker.spec_scorer`)."""
        if type(self) is not UniformRanker:
            return None
        return _uniform_spec_score


class MagnitudeSimilarityRanker(CandidateRanker):
    """Score by integral closeness to the cache-line neighbourhood.

    Sec. III-B: "if the data types of words in the cache line are
    known, then the integral magnitude can be used as a distance
    metric."  The score is the negated distance to the nearest
    neighbour word, so identical values score 0 and distant values
    score very negatively.  Without a neighbourhood, all messages tie.
    """

    name = "magnitude-similarity"

    def score(self, message: int, context: RecoveryContext) -> float:
        if not context.neighborhood:
            return 0.0
        return -min(abs(message - neighbor) for neighbor in context.neighborhood)


class BitwiseSimilarityRanker(CandidateRanker):
    """Score by bitwise similarity to the cache-line neighbourhood.

    The data-type-agnostic variant of Sec. III-B ("a simple
    majority-vote procedure on groups of bits"): the score is the
    negated mean Hamming distance to the neighbourhood, which prefers
    the candidate that agrees with the per-bit majority of its
    neighbours.
    """

    name = "bitwise-similarity"

    def score(self, message: int, context: RecoveryContext) -> float:
        if not context.neighborhood:
            return 0.0
        total = sum(
            popcount(message ^ neighbor) for neighbor in context.neighborhood
        )
        return -total / len(context.neighborhood)
