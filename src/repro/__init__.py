"""repro -- Software-Defined Error-Correcting Codes (SWD-ECC).

A from-scratch reproduction of *"Software-Defined Error-Correcting
Codes"* (Gottscho, Schoeny, Dolecek, Gupta; SELSE-12 / DSN 2016):
heuristic recovery from detected-but-uncorrectable errors (DUEs) in
ECC-protected memory, using side information about the stored messages.

Package map
-----------
``repro.ecc``
    Coding theory: GF(2)/GF(2^m) algebra, Hamming/Hsiao SECDED,
    BCH/DECTED, candidate-codeword enumeration, channel models.
``repro.isa``
    MIPS-I: decoder (the legality oracle), encoder, assembler,
    disassembler.
``repro.program``
    Program images, ELF32 I/O, mnemonic statistics, synthetic SPEC-like
    workloads, and a MiniLang compiler.
``repro.memory``
    ECC memory model, fault injection, DUE policies, checkpointing,
    scrubbing and page-retirement baselines.
``repro.sim``
    Functional MIPS CPU with delay slots and symptom detection;
    speculative forked execution over recovery candidates.
``repro.core``
    The SWD-ECC engine: enumerate -> filter -> rank -> choose, plus the
    Fig. 3 system recovery ladder.
``repro.analysis``
    Exhaustive DUE sweeps and drivers for every figure of the paper.
``repro.obs``
    Observability: metrics registry, tracing spans, and structured
    per-DUE event logging across the recovery pipeline.

Sixty-second tour::

    from repro.analysis import run_fig8
    print(run_fig8(num_instructions=20).render())
"""

from repro.core import RecoveryContext, RecoveryPipeline, RecoveryResult, SwdEcc
from repro.ecc import canonical_secded_39_32, hsiao_39_32, hsiao_72_64
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "RecoveryContext",
    "RecoveryPipeline",
    "RecoveryResult",
    "SwdEcc",
    "canonical_secded_39_32",
    "hsiao_39_32",
    "hsiao_72_64",
    "ReproError",
    "__version__",
]
