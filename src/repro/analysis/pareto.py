"""Recovery-rate vs. energy vs. latency Pareto frontiers.

SWD-ECC trades software work for DUE recovery; this module prices that
trade.  For each (code, strategy) combination it runs the exhaustive
2-bit-DUE sweep of :class:`~repro.analysis.sweep.DueSweep`, reads the
op-level counters the decode hot paths maintain (see
:mod:`repro.obs.energy`), and reduces each combination to one
:class:`ParetoPoint`: mean recovery rate, modeled joules per recovery,
and wall seconds per recovery.  :func:`pareto_front` then extracts the
non-dominated set — the only configurations worth deploying.

Counter deltas are measured around the sweep in the process registry;
``DueSweep.run(jobs > 1)`` folds worker-process snapshots back into the
parent, so the deltas are correct for parallel sweeps too.

The default code list is the three SECDED-family (39, 32) constructions
the repo ships — double-bit errors must still be *DUEs* for a recovery
sweep to make sense, which rules the DEC/DECTED codes out of the
default comparison (their 2-bit patterns are plain CEs).
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc import (
    canonical_secded_39_32,
    extended_hamming_secded,
    hsiao_39_32,
)
from repro.ecc.code import LinearBlockCode
from repro.errors import AnalysisError
from repro.obs import energy as obs_energy
from repro.obs import metrics as obs_metrics
from repro.program.image import ProgramImage
from repro.program.synth import synthesize_benchmark

__all__ = [
    "PARETO_CODES",
    "ParetoPoint",
    "sweep_pareto",
    "pareto_front",
    "append_energy_record",
]

#: Code factories compared by default: the SECDED-family (39, 32)
#: constructions, under which every double-bit pattern is a DUE.
PARETO_CODES: dict[str, Callable[[], LinearBlockCode]] = {
    "secded-39-32": canonical_secded_39_32,
    "hsiao-39-32": hsiao_39_32,
    "ext-hamming-39-32": lambda: extended_hamming_secded(32),
}


@dataclass(frozen=True)
class ParetoPoint:
    """One (code, strategy) combination reduced to its trade-off axes.

    Attributes
    ----------
    code / strategy:
        The combination's identifiers.
    recovery_rate:
        Mean exact recovery probability over all patterns and words.
    joules_per_recovery:
        Modeled energy per heuristic recovery during the sweep.
    seconds_per_recovery:
        Wall time per recovery (includes sweep bookkeeping; comparable
        across combinations measured by the same call).
    recoveries:
        Recoveries measured (the delta of ``swdecc.recoveries``).
    joules:
        Total modeled energy of the combination's sweep.
    ops:
        Op-counter deltas attributed to the sweep.
    """

    code: str
    strategy: str
    recovery_rate: float
    joules_per_recovery: float
    seconds_per_recovery: float
    recoveries: int
    joules: float
    ops: Mapping[str, int | float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "strategy": self.strategy,
            "recovery_rate": self.recovery_rate,
            "joules_per_recovery": self.joules_per_recovery,
            "seconds_per_recovery": self.seconds_per_recovery,
            "recoveries": self.recoveries,
            "joules": self.joules,
            "ops": dict(self.ops),
        }


def sweep_pareto(
    codes: Mapping[str, Callable[[], LinearBlockCode]] | None = None,
    strategies: Sequence[RecoveryStrategy] | None = None,
    benchmark: str = "mcf",
    num_instructions: int = 25,
    length: int = 2048,
    seed: int = 2016,
    jobs: int = 1,
    image: ProgramImage | None = None,
    on_point: Callable[[ParetoPoint], None] | None = None,
) -> list[ParetoPoint]:
    """Measure every (code, strategy) combination with one sweep each.

    *codes* maps display ids to code factories (default:
    :data:`PARETO_CODES`); *strategies* defaults to all three paper
    strategies.  Supplying *image* skips benchmark synthesis (tests
    pass a tiny image); *on_point* is called after each combination
    (the CLI uses it for progress lines).
    """
    codes = dict(codes) if codes is not None else dict(PARETO_CODES)
    if not codes:
        raise AnalysisError("no codes supplied to sweep_pareto")
    strategies = (
        tuple(strategies) if strategies is not None
        else tuple(RecoveryStrategy)
    )
    if not strategies:
        raise AnalysisError("no strategies supplied to sweep_pareto")
    if image is None:
        image = synthesize_benchmark(benchmark, length=length, seed=seed)
    registry = obs_metrics.get_registry()
    model = obs_energy.get_energy_model()
    points: list[ParetoPoint] = []
    for code_id, factory in codes.items():
        code = factory()
        for strategy in strategies:
            sweep = DueSweep(code, strategy, num_instructions)
            ops_before = obs_energy.op_counts(registry, model)
            recoveries_before = registry.counter("swdecc.recoveries").value
            started = time.perf_counter()
            result = sweep.run(image, jobs=jobs)
            elapsed = time.perf_counter() - started
            ops_after = obs_energy.op_counts(registry, model)
            recoveries = int(
                registry.counter("swdecc.recoveries").value
                - recoveries_before
            )
            deltas = {
                name: ops_after[name] - ops_before[name]
                for name in ops_after
            }
            joules = model.joules(deltas)
            point = ParetoPoint(
                code=code_id,
                strategy=strategy.value,
                recovery_rate=result.mean_success_rate,
                joules_per_recovery=joules / recoveries if recoveries else 0.0,
                seconds_per_recovery=(
                    elapsed / recoveries if recoveries else 0.0
                ),
                recoveries=recoveries,
                joules=joules,
                ops=deltas,
            )
            points.append(point)
            if on_point is not None:
                on_point(point)
    return points


def _dominates(
    a: ParetoPoint, b: ParetoPoint, include_latency: bool
) -> bool:
    """True when *a* is at least as good as *b* on every axis and
    strictly better on one (rate up; joules and latency down)."""
    at_least = (
        a.recovery_rate >= b.recovery_rate
        and a.joules_per_recovery <= b.joules_per_recovery
        and (
            not include_latency
            or a.seconds_per_recovery <= b.seconds_per_recovery
        )
    )
    strictly = (
        a.recovery_rate > b.recovery_rate
        or a.joules_per_recovery < b.joules_per_recovery
        or (
            include_latency
            and a.seconds_per_recovery < b.seconds_per_recovery
        )
    )
    return at_least and strictly


def pareto_front(
    points: Sequence[ParetoPoint], include_latency: bool = True
) -> list[ParetoPoint]:
    """The non-dominated subset of *points*, sorted by energy.

    With ``include_latency=False`` the frontier is taken over the
    (recovery rate, joules) plane only — sorted by joules ascending,
    its recovery rates are strictly increasing, which is the invariant
    the CI smoke check asserts (the 3-D frontier has no such 2-D
    monotonicity).
    """
    frontier = [
        point
        for point in points
        if not any(
            _dominates(other, point, include_latency)
            for other in points
            if other is not point
        )
    ]
    return sorted(
        frontier,
        key=lambda p: (p.joules_per_recovery, -p.recovery_rate, p.code),
    )


def append_energy_record(
    path: str | Path,
    points: Sequence[ParetoPoint],
    timestamp: str,
    meta: Mapping[str, object] | None = None,
) -> int:
    """Append one benchmark record to the ``BENCH_energy.json`` trajectory.

    Follows the repo's bench-history idiom: the file holds a JSON list
    of records, tolerates a missing/corrupt file, and each record
    carries its configuration next to the measured points plus the 2-D
    frontier membership.  Returns the new history length.
    """
    path = Path(path)
    try:
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, json.JSONDecodeError):
        history = []
    frontier = pareto_front(points, include_latency=False)
    frontier_keys = {(p.code, p.strategy) for p in frontier}
    record = {
        "timestamp": timestamp,
        "energy_model": obs_energy.get_energy_model().describe(),
        "points": [
            {
                **point.as_dict(),
                "on_frontier": (point.code, point.strategy)
                in frontier_keys,
            }
            for point in points
        ],
    }
    if meta:
        record.update(dict(meta))
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(history)
