"""Analytical properties of SWD-ECC (paper future work: "derive
theoretical properties").

Everything the empirical sweeps measure about candidate counts and the
baseline strategies can be predicted in closed form from the code's
parity-check matrix and a couple of scalar statistics:

**Candidate counts from column pair-XORs.**  For a 2-bit DUE at
positions (i, j) of a linear code, the equidistant candidates are the
codewords at distance 2 from the received word.  Each corresponds to an
unordered pair (k, l) with ``h_k ^ h_l == h_i ^ h_j`` (including (i, j)
itself).  So the Fig. 4 heatmap is exactly the multiset of pair-XOR
multiplicities of H's columns — no enumeration needed.

**Random-candidate baseline.**  Choosing uniformly among the
candidates succeeds with probability 1/count; averaging the reciprocal
multiplicities over all patterns gives the exact expectation of the
paper's gray Fig. 6 curve.

**Filtering-only model.**  If each non-original candidate is legal
independently with probability *p* (the legal-encoding density of the
message space), the number of surviving competitors is
Binomial(count - 1, p) and the success probability of a uniform pick
among survivors has the closed form ``(1 - (1-p)^count) / (count * p)``.

**Side-information value.**  The Shannon entropy of the mnemonic
distribution quantifies how concentrated the program's instruction
usage is; the lower the entropy, the more a frequency ranker can
extract.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.ecc.code import LinearBlockCode
from repro.errors import AnalysisError
from repro.program.stats import FrequencyTable

__all__ = [
    "pair_xor_multiplicities",
    "predicted_candidate_counts",
    "predicted_count_distribution",
    "expected_random_candidate_success",
    "expected_filter_only_success",
    "mnemonic_entropy",
    "effective_mnemonics",
    "triple_error_outcomes",
]


def pair_xor_multiplicities(code: LinearBlockCode) -> dict[int, int]:
    """Multiplicity of each value among the C(n,2) column pair-XORs."""
    columns = code.column_syndromes
    multiplicities: Counter[int] = Counter()
    n = len(columns)
    for i in range(n):
        for j in range(i + 1, n):
            multiplicities[columns[i] ^ columns[j]] += 1
    return dict(multiplicities)


def predicted_candidate_counts(code: LinearBlockCode) -> dict[tuple[int, int], int]:
    """Fig. 4 predicted analytically: counts[(i, j)] = multiplicity of
    ``h_i ^ h_j`` among all column pair-XORs."""
    columns = code.column_syndromes
    multiplicities = pair_xor_multiplicities(code)
    n = len(columns)
    return {
        (i, j): multiplicities[columns[i] ^ columns[j]]
        for i in range(n)
        for j in range(i + 1, n)
    }


def predicted_count_distribution(code: LinearBlockCode) -> dict[int, int]:
    """How many 2-bit patterns have each candidate count.

    A pair-XOR value with multiplicity m contributes m patterns of
    count m, so the distribution is ``{m: m * (#values with mult m)}``.
    """
    distribution: Counter[int] = Counter()
    for multiplicity in pair_xor_multiplicities(code).values():
        distribution[multiplicity] += multiplicity
    return dict(distribution)


def expected_random_candidate_success(code: LinearBlockCode) -> float:
    """Exact mean success of uniform random candidate choice.

    The average over all C(n,2) patterns of 1/candidate-count; by
    linearity it is message independent, so this single number is the
    exact expectation of the paper's random baseline.
    """
    multiplicities = pair_xor_multiplicities(code)
    total_patterns = sum(multiplicities.values())
    # Each XOR value v contributes m_v patterns, each succeeding with
    # probability 1/m_v: total successes sum to the number of distinct
    # pair-XOR values.
    return len(multiplicities) / total_patterns


def expected_filter_only_success(count: int, legal_probability: float) -> float:
    """Closed-form success of filtering-only for one pattern.

    Model: the original is always legal; each of the other
    ``count - 1`` candidates is independently legal with probability
    *p*; the decoder picks uniformly among the legal survivors.

    E[1 / (1 + B)] with B ~ Binomial(count - 1, p) has the closed form
    ``(1 - (1 - p)^count) / (count * p)`` (for p > 0).
    """
    if count < 1:
        raise AnalysisError(f"candidate count must be >= 1, got {count}")
    if not 0.0 <= legal_probability <= 1.0:
        raise AnalysisError(
            f"legal probability must be in [0, 1], got {legal_probability}"
        )
    if legal_probability == 0.0:
        return 1.0
    return (1.0 - (1.0 - legal_probability) ** count) / (
        count * legal_probability
    )


def triple_error_outcomes(code: LinearBlockCode) -> dict[str, int]:
    """Classify every weight-3 error of a SECDED code by its outcome.

    SWD-ECC's 2-bit procedure (and SECDED hardware itself) assumes DUEs
    come from double-bit flips.  A *triple*-bit error either:

    - ``miscorrected`` — its syndrome matches a single column of H, so
      the hardware silently "corrects" the wrong bit (classic SECDED
      miscorrection; SWD-ECC is never consulted);
    - ``detected`` — reported as a DUE.  The true codeword is at
      distance 3, outside the equidistant candidate list, so heuristic
      recovery of these is *structurally* wrong-or-lucky only.

    Returns counts over all C(n, 3) patterns, by linearity message
    independent.
    """
    columns = code.column_syndromes
    syndrome_to_position = code.syndrome_to_position
    n = code.n
    outcomes = {"miscorrected": 0, "detected": 0}
    for i in range(n):
        for j in range(i + 1, n):
            partial = columns[i] ^ columns[j]
            for k in range(j + 1, n):
                syndrome = partial ^ columns[k]
                if syndrome == 0:
                    raise AnalysisError(
                        "weight-3 codeword found: the code is not SECDED"
                    )
                if syndrome in syndrome_to_position:
                    outcomes["miscorrected"] += 1
                else:
                    outcomes["detected"] += 1
    return outcomes


def mnemonic_entropy(table: FrequencyTable) -> float:
    """Shannon entropy (bits) of the mnemonic distribution.

    Low entropy = concentrated usage = frequency ranking has a lot to
    work with.  A uniform distribution over M mnemonics has entropy
    log2(M); measured SPEC-like mixes sit far below it.
    """
    entropy = 0.0
    for _, frequency in table.ranked():
        if frequency > 0.0:
            entropy -= frequency * math.log2(frequency)
    return entropy


def effective_mnemonics(table: FrequencyTable) -> float:
    """Perplexity 2^H: the 'effective number' of mnemonics in use."""
    return 2.0 ** mnemonic_entropy(table)
