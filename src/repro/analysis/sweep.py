"""Exhaustive DUE sweeps: the paper's evaluation methodology (Sec. IV-A).

The paper examines *all* C(39, 2) = 741 double-bit error patterns
applied to each of the first 100 instructions of each benchmark, runs
the recovery heuristic, and reports per-pattern success rates.  This
module runs that sweep for any (code, strategy, images) combination.

Success is measured with
:meth:`repro.core.swdecc.SwdEcc.recovery_probability` — the exact
probability that the strategy picks the original message — rather than
a single sampled tie-break, so sweep output is deterministic and equals
the expectation of the paper's sampled procedure.
"""

from __future__ import annotations

import enum
import random
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.metrics import PatternOutcome
from repro.core.filters import InstructionLegalityFilter
from repro.core.rankers import FrequencyRanker, UniformRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak, success_probability
from repro.ecc.channel import ErrorPattern, double_bit_patterns
from repro.ecc.code import LinearBlockCode
from repro.errors import AnalysisError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.program.image import ProgramImage
from repro.program.stats import FrequencyTable

__all__ = ["RecoveryStrategy", "BenchmarkSweepResult", "DueSweep"]


class RecoveryStrategy(enum.Enum):
    """The three candidate-selection strategies evaluated in Sec. IV-B."""

    RANDOM_CANDIDATE = "random-candidate"
    """Choose uniformly among all candidate codewords (no side info)."""

    FILTER_ONLY = "filter-only"
    """Filter illegal instructions, then choose uniformly (Fig. 6)."""

    FILTER_AND_RANK = "filter-and-rank"
    """Filter, then rank by mnemonic frequency (Fig. 8, the paper's
    final strategy)."""


def _engine_for(
    strategy: RecoveryStrategy, code: LinearBlockCode
) -> SwdEcc:
    # The sweep consumes exact probabilities, so the tie-break RNG is
    # never sampled; a fixed instance keeps construction cheap.
    rng = random.Random(0)
    if strategy is RecoveryStrategy.RANDOM_CANDIDATE:
        return SwdEcc(code, filters=(), ranker=UniformRanker(), rng=rng)
    if strategy is RecoveryStrategy.FILTER_ONLY:
        return SwdEcc(
            code,
            filters=(InstructionLegalityFilter(),),
            ranker=UniformRanker(),
            rng=rng,
        )
    return SwdEcc(
        code,
        filters=(InstructionLegalityFilter(),),
        ranker=FrequencyRanker(),
        tie_break=TieBreak.RANDOM,
        rng=rng,
    )


@dataclass(frozen=True)
class BenchmarkSweepResult:
    """Per-benchmark sweep output.

    Attributes
    ----------
    benchmark:
        Image name.
    strategy:
        The strategy swept.
    num_instructions:
        Evaluation window size (100 in the paper).
    outcomes:
        One :class:`~repro.analysis.metrics.PatternOutcome` per error
        pattern, in the paper's pattern order.
    """

    benchmark: str
    strategy: RecoveryStrategy
    num_instructions: int
    outcomes: tuple[PatternOutcome, ...]

    @property
    def mean_success_rate(self) -> float:
        """Mean recovery rate over all patterns and instructions."""
        return sum(o.success_rate for o in self.outcomes) / len(self.outcomes)

    def success_series(self) -> list[float]:
        """Per-pattern success rates, indexed by pattern number (Fig. 8)."""
        return [o.success_rate for o in self.outcomes]


class DueSweep:
    """Exhaustive 2-bit-DUE sweep over program images.

    Parameters
    ----------
    code:
        The SECDED code under evaluation.
    strategy:
        Candidate-selection strategy.
    num_instructions:
        How many leading instructions of each image to corrupt (the
        paper uses 100).
    patterns:
        Error patterns to apply; defaults to all C(n, 2) double-bit
        patterns in paper order.
    """

    def __init__(
        self,
        code: LinearBlockCode,
        strategy: RecoveryStrategy = RecoveryStrategy.FILTER_AND_RANK,
        num_instructions: int = 100,
        patterns: Sequence[ErrorPattern] | None = None,
    ) -> None:
        if num_instructions < 1:
            raise AnalysisError(
                f"num_instructions must be >= 1, got {num_instructions}"
            )
        self._code = code
        self._strategy = strategy
        self._num_instructions = num_instructions
        self._patterns = (
            tuple(patterns) if patterns is not None
            else tuple(double_bit_patterns(code.n))
        )
        for pattern in self._patterns:
            if pattern.width != code.n:
                raise AnalysisError(
                    f"pattern width {pattern.width} != code length {code.n}"
                )
        self._engine = _engine_for(strategy, code)

    @property
    def patterns(self) -> tuple[ErrorPattern, ...]:
        """The error patterns the sweep applies."""
        return self._patterns

    @property
    def engine(self) -> SwdEcc:
        """The engine configured for the sweep's strategy."""
        return self._engine

    def run(self, image: ProgramImage) -> BenchmarkSweepResult:
        """Sweep one benchmark image.

        The frequency table is computed over the *whole* image (as in
        the paper: "the relative frequency that their mnemonics appear
        in the entire program image") while errors are injected only
        into the leading window.
        """
        window = min(self._num_instructions, len(image))
        context = RecoveryContext.for_instructions(
            FrequencyTable.from_image(image)
        )
        code = self._code
        engine = self._engine
        start_ns = time.perf_counter_ns()
        with span(f"sweep.run[{image.name}]"):
            encoded = [code.encode(word) for word in image.words[:window]]
            originals = image.words[:window]
            outcomes = []
            for pattern in self._patterns:
                success_total = 0.0
                candidates_total = 0
                valid_total = 0
                for codeword, original in zip(encoded, originals):
                    received = pattern.apply(codeword)
                    result = engine.recover(received, context)
                    candidates_total += result.num_candidates
                    valid_total += (
                        result.num_valid if not result.filter_fell_back else 0
                    )
                    success_total += success_probability(result, original)
                outcomes.append(
                    PatternOutcome(
                        index=pattern.index,
                        positions=pattern.positions,
                        success_rate=success_total / window,
                        mean_candidates=candidates_total / window,
                        mean_valid=valid_total / window,
                    )
                )
        elapsed_seconds = (time.perf_counter_ns() - start_ns) / 1e9
        registry = obs_metrics.get_registry()
        registry.counter("sweep.benchmarks").inc()
        registry.counter("sweep.patterns_swept").inc(len(self._patterns))
        registry.histogram("sweep.benchmark_wall_seconds").observe(
            elapsed_seconds
        )
        registry.gauge(f"sweep.wall_seconds[{image.name}]").set(
            elapsed_seconds
        )
        return BenchmarkSweepResult(
            benchmark=image.name,
            strategy=self._strategy,
            num_instructions=window,
            outcomes=tuple(outcomes),
        )

    def run_many(
        self, images: Sequence[ProgramImage]
    ) -> list[BenchmarkSweepResult]:
        """Sweep several benchmark images."""
        if not images:
            raise AnalysisError("no images supplied to sweep")
        return [self.run(image) for image in images]
