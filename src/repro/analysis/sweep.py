"""Exhaustive DUE sweeps: the paper's evaluation methodology (Sec. IV-A).

The paper examines *all* C(39, 2) = 741 double-bit error patterns
applied to each of the first 100 instructions of each benchmark, runs
the recovery heuristic, and reports per-pattern success rates.  This
module runs that sweep for any (code, strategy, images) combination.

Success is measured with
:meth:`repro.core.swdecc.SwdEcc.recovery_probability` — the exact
probability that the strategy picks the original message — rather than
a single sampled tie-break, so sweep output is deterministic and equals
the expectation of the paper's sampled procedure.

Two acceleration layers sit under the sweep (see
``docs/performance.md``): the engine's syndrome-memoized enumeration
and filter/rank caches make the serial path fast, and ``jobs > 1``
fans pattern chunks out over worker processes with a deterministic
merge — parallel results are bit-identical to serial ones, and worker
metrics are folded back into the parent registry.
"""

from __future__ import annotations

import enum
import logging
import random
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.metrics import PatternOutcome
from repro.analysis.parallel import chunk_evenly, parallel_map
from repro.core.filters import InstructionLegalityFilter
from repro.core.rankers import FrequencyRanker, UniformRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak, success_probability
from repro.ecc.channel import ErrorPattern, double_bit_patterns
from repro.ecc.code import LinearBlockCode
from repro.errors import AnalysisError
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.progress import SweepProgress
from repro.obs.trace import span
from repro.program.image import ProgramImage
from repro.program.stats import FrequencyTable

_log = obs_logging.get_logger("analysis.sweep")

__all__ = ["RecoveryStrategy", "BenchmarkSweepResult", "DueSweep"]


class RecoveryStrategy(enum.Enum):
    """The three candidate-selection strategies evaluated in Sec. IV-B."""

    RANDOM_CANDIDATE = "random-candidate"
    """Choose uniformly among all candidate codewords (no side info)."""

    FILTER_ONLY = "filter-only"
    """Filter illegal instructions, then choose uniformly (Fig. 6)."""

    FILTER_AND_RANK = "filter-and-rank"
    """Filter, then rank by mnemonic frequency (Fig. 8, the paper's
    final strategy)."""


def _engine_for(
    strategy: RecoveryStrategy,
    code: LinearBlockCode,
    cache: bool = True,
    precompile: bool = False,
) -> SwdEcc:
    # The sweep consumes exact probabilities, so the tie-break RNG is
    # never sampled; a fixed instance keeps construction cheap.
    rng = random.Random(0)
    if strategy is RecoveryStrategy.RANDOM_CANDIDATE:
        return SwdEcc(
            code, filters=(), ranker=UniformRanker(), rng=rng, cache=cache,
            precompile=precompile,
        )
    if strategy is RecoveryStrategy.FILTER_ONLY:
        return SwdEcc(
            code,
            filters=(InstructionLegalityFilter(),),
            ranker=UniformRanker(),
            rng=rng,
            cache=cache,
            precompile=precompile,
        )
    return SwdEcc(
        code,
        filters=(InstructionLegalityFilter(),),
        ranker=FrequencyRanker(cache=cache),
        tie_break=TieBreak.RANDOM,
        rng=rng,
        cache=cache,
        precompile=precompile,
    )


@dataclass(frozen=True)
class BenchmarkSweepResult:
    """Per-benchmark sweep output.

    Attributes
    ----------
    benchmark:
        Image name.
    strategy:
        The strategy swept.
    num_instructions:
        Evaluation window size (100 in the paper).
    outcomes:
        One :class:`~repro.analysis.metrics.PatternOutcome` per error
        pattern, in the paper's pattern order.
    """

    benchmark: str
    strategy: RecoveryStrategy
    num_instructions: int
    outcomes: tuple[PatternOutcome, ...]

    @property
    def mean_success_rate(self) -> float:
        """Mean recovery rate over all patterns and instructions."""
        return sum(o.success_rate for o in self.outcomes) / len(self.outcomes)

    def success_series(self) -> list[float]:
        """Per-pattern success rates, indexed by pattern number (Fig. 8)."""
        return [o.success_rate for o in self.outcomes]


class DueSweep:
    """Exhaustive 2-bit-DUE sweep over program images.

    Parameters
    ----------
    code:
        The SECDED code under evaluation.
    strategy:
        Candidate-selection strategy.
    num_instructions:
        How many leading instructions of each image to corrupt (the
        paper uses 100).
    patterns:
        Error patterns to apply; defaults to all C(n, 2) double-bit
        patterns in paper order.
    cache:
        Enable the engine's memoization layers (default); disable only
        for uncached baseline measurements.
    precompile:
        Build the engine's full syndrome decode table before sweeping
        (see :meth:`SwdEcc.precompile`).  Results are bit-identical
        either way; the sweep's vectorized kernel already amortizes
        enumeration per pattern, so this mainly helps the uncached-
        comparison and recover_batch paths.
    """

    def __init__(
        self,
        code: LinearBlockCode,
        strategy: RecoveryStrategy = RecoveryStrategy.FILTER_AND_RANK,
        num_instructions: int = 100,
        patterns: Sequence[ErrorPattern] | None = None,
        cache: bool = True,
        precompile: bool = False,
    ) -> None:
        if num_instructions < 1:
            raise AnalysisError(
                f"num_instructions must be >= 1, got {num_instructions}"
            )
        self._code = code
        self._strategy = strategy
        self._num_instructions = num_instructions
        self._cache = cache
        self._precompile = precompile
        self._patterns = (
            tuple(patterns) if patterns is not None
            else tuple(double_bit_patterns(code.n))
        )
        for pattern in self._patterns:
            if pattern.width != code.n:
                raise AnalysisError(
                    f"pattern width {pattern.width} != code length {code.n}"
                )
        self._engine = _engine_for(
            strategy, code, cache=cache, precompile=precompile
        )

    @property
    def patterns(self) -> tuple[ErrorPattern, ...]:
        """The error patterns the sweep applies."""
        return self._patterns

    @property
    def engine(self) -> SwdEcc:
        """The engine configured for the sweep's strategy."""
        return self._engine

    def _outcomes_for(
        self, image: ProgramImage, patterns: Sequence[ErrorPattern]
    ) -> list[PatternOutcome]:
        """Per-pattern outcomes over the image's leading window.

        This is the sweep kernel both the serial path and the parallel
        workers run; it must stay a pure function of (engine config,
        image, patterns) so chunked results concatenate into exactly
        the serial output.
        """
        window = min(self._num_instructions, len(image))
        context = RecoveryContext.for_instructions(
            FrequencyTable.from_image(image)
        )
        code = self._code
        engine = self._engine
        originals = image.words[:window]
        if not self._cache:
            encoded = [code.encode(word) for word in originals]
        outcomes = []
        for pattern in patterns:
            success_total = 0.0
            candidates_total = 0
            valid_total = 0
            if self._cache:
                # Vectorized fast path: one error pattern => one
                # syndrome, so the engine computes the flip-pair offsets
                # once and each word's candidates are pure XORs.
                stats = engine.sweep_probabilities(
                    originals, pattern.vector, context
                )
                for probability, num_candidates, num_valid in stats:
                    success_total += probability
                    candidates_total += num_candidates
                    valid_total += num_valid
            else:
                # Uncached baseline: full per-word recover() calls, the
                # original cost model the throughput benchmark compares
                # against.
                results = engine.recover_batch(
                    [pattern.apply(codeword) for codeword in encoded],
                    context,
                )
                for result, original in zip(results, originals):
                    candidates_total += result.num_candidates
                    valid_total += (
                        result.num_valid if not result.filter_fell_back
                        else 0
                    )
                    success_total += success_probability(result, original)
            outcomes.append(
                PatternOutcome(
                    index=pattern.index,
                    positions=pattern.positions,
                    success_rate=success_total / window,
                    mean_candidates=candidates_total / window,
                    mean_valid=valid_total / window,
                )
            )
        return outcomes

    def run(
        self,
        image: ProgramImage,
        jobs: int = 1,
        progress: SweepProgress | None = None,
    ) -> BenchmarkSweepResult:
        """Sweep one benchmark image.

        The frequency table is computed over the *whole* image (as in
        the paper: "the relative frequency that their mnemonics appear
        in the entire program image") while errors are injected only
        into the leading window.

        With ``jobs > 1`` the pattern list is split into contiguous
        chunks swept by worker processes; the merged result is
        bit-identical to the serial one, and worker metrics (recovery
        counters, cache hit/miss totals, histograms) plus a digest of
        worker DUE events are aggregated into this process's registry
        and event log.

        Progress is live either way: the ``sweep.progress.*`` gauges
        advance as each chunk *completes* (a serial run is one chunk),
        so a scraper watching ``/metrics`` sees patterns_done climb
        during the run.  Pass a :class:`SweepProgress` to share one
        rate/ETA estimate across several benchmarks (``run_many``
        does); otherwise the sweep creates its own.
        """
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        owns_progress = progress is None
        if progress is None:
            progress = SweepProgress()
        progress.add_total(len(self._patterns))

        def _chunk_done(
            chunk_index: int,
            chunk_outcomes: Sequence[PatternOutcome],
            wall_seconds: float,
        ) -> None:
            success_sum = sum(o.success_rate for o in chunk_outcomes)
            progress.on_chunk(
                len(chunk_outcomes), wall_seconds, success_sum
            )
            obs_logging.emit(
                _log, logging.INFO, "sweep chunk completed",
                benchmark=image.name,
                chunk=chunk_index,
                patterns=len(chunk_outcomes),
                wall_seconds=round(wall_seconds, 6),
                mean_success=(
                    round(success_sum / len(chunk_outcomes), 6)
                    if chunk_outcomes else None
                ),
                done=progress.done,
                total=progress.total,
            )

        start_ns = time.perf_counter_ns()
        with obs_logging.bind(
            benchmark=image.name, strategy=self._strategy.value
        ), span(f"sweep.run[{image.name}]"):
            if jobs > 1 and len(self._patterns) > 1:
                payloads = [
                    (self._code, self._strategy, self._num_instructions,
                     self._cache, self._precompile, image, chunk)
                    for chunk in chunk_evenly(self._patterns, jobs)
                ]
                outcomes = [
                    outcome
                    for chunk_outcomes in parallel_map(
                        _sweep_chunk_worker, payloads, jobs,
                        on_result=_chunk_done,
                    )
                    for outcome in chunk_outcomes
                ]
            else:
                outcomes = self._outcomes_for(image, self._patterns)
                elapsed = (time.perf_counter_ns() - start_ns) / 1e9
                _chunk_done(0, outcomes, elapsed)
        elapsed_seconds = (time.perf_counter_ns() - start_ns) / 1e9
        if owns_progress:
            progress.finish()
        registry = obs_metrics.get_registry()
        registry.counter("sweep.benchmarks").inc()
        registry.counter("sweep.patterns_swept").inc(len(self._patterns))
        registry.histogram("sweep.benchmark_wall_seconds").observe(
            elapsed_seconds
        )
        # Identity goes in an info metric, not a per-image gauge name:
        # minting one gauge per benchmark would grow the registry without
        # bound on user-supplied image names.
        registry.gauge("sweep.last_wall_seconds").set(elapsed_seconds)
        registry.info("sweep.last_benchmark").set(image.name)
        return BenchmarkSweepResult(
            benchmark=image.name,
            strategy=self._strategy,
            num_instructions=min(self._num_instructions, len(image)),
            outcomes=tuple(outcomes),
        )

    def run_many(
        self,
        images: Sequence[ProgramImage],
        jobs: int = 1,
        progress: SweepProgress | None = None,
    ) -> list[BenchmarkSweepResult]:
        """Sweep several benchmark images.

        Images are swept in order, each fanning its patterns out over
        *jobs* workers, so per-benchmark wall-time metrics keep their
        serial meaning and results stay deterministic.  One shared
        :class:`SweepProgress` (created here when not supplied) spans
        all the images, so the rendered rate/ETA covers the whole run.
        """
        if not images:
            raise AnalysisError("no images supplied to sweep")
        owns_progress = progress is None
        if progress is None:
            progress = SweepProgress()
        results = [
            self.run(image, jobs=jobs, progress=progress)
            for image in images
        ]
        if owns_progress:
            progress.finish()
        return results


def _sweep_chunk_worker(payload) -> list[PatternOutcome]:
    """Sweep one pattern chunk in a worker process.

    Module-level so it pickles; rebuilds the sweep (and its engine,
    with fresh caches) from plain data because engines hold
    process-local metric objects that must bind to the worker registry.
    """
    code, strategy, num_instructions, cache, precompile, image, patterns = (
        payload
    )
    sweep = DueSweep(
        code, strategy, num_instructions, patterns=patterns, cache=cache,
        precompile=precompile,
    )
    return sweep._outcomes_for(image, patterns)
