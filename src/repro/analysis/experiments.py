"""Experiment drivers: one entry point per figure/table of the paper.

Each ``run_*`` function computes the data behind one figure of the
evaluation (Sec. IV) and returns a result object with a ``render()``
method for human-readable output.  The benchmark harness under
``benchmarks/`` is a thin wrapper around these drivers; the test suite
asserts on their structured fields.

The default workload is the synthetic SPEC CPU2006 stand-in suite
(DESIGN.md substitution table): five images generated from the Fig. 7
mix profiles with a pinned seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.heatmap import (
    render_heatmap,
    render_histogram,
    render_series,
    render_table,
)
from repro.analysis.metrics import (
    BitRegion,
    arithmetic_mean,
    mean_series,
    rate_histogram,
    region_means,
)
from repro.analysis.parallel import chunk_evenly, parallel_map
from repro.analysis.sweep import BenchmarkSweepResult, DueSweep, RecoveryStrategy
from repro.core.sideinfo import RecoveryContext
from repro.ecc.candidates import CandidateCountProfile, candidate_count_profile
from repro.ecc.channel import double_bit_patterns
from repro.ecc.code import LinearBlockCode
from repro.ecc.matrices import canonical_secded_39_32
from repro.isa.opcodes import COP1_FMTS, LEGAL_OPCODES, SPECIAL_FUNCTS
from repro.obs.progress import SweepProgress
from repro.program.image import ProgramImage
from repro.program.profiles import BENCHMARK_NAMES
from repro.program.stats import FrequencyTable, power_law_fit
from repro.program.synth import synthesize_benchmark

__all__ = [
    "default_code",
    "default_images",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "IsaLegalityResult",
    "run_isa_legality",
    "CodePropertiesResult",
    "run_code_properties",
]

_DEFAULT_IMAGE_LENGTH = 4096
_DEFAULT_SEED = 2016


def default_code() -> LinearBlockCode:
    """The evaluation's (39, 32) SECDED code."""
    return canonical_secded_39_32()


def default_images(
    length: int = _DEFAULT_IMAGE_LENGTH, seed: int = _DEFAULT_SEED
) -> list[ProgramImage]:
    """The five synthetic SPEC stand-in images, pinned seed."""
    return [
        synthesize_benchmark(name, length=length, seed=seed)
        for name in BENCHMARK_NAMES
    ]


# ---------------------------------------------------------------------------
# Fig. 4 — candidate-count heatmap
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig4Result:
    """Candidate codeword counts per 2-bit error position pair."""

    code_name: str
    profile: CandidateCountProfile

    def render(self) -> str:
        matrix = self.profile.as_matrix(width=39)
        header = (
            f"Fig. 4 | {self.code_name}: candidate codewords per 2-bit DUE\n"
            f"patterns={self.profile.num_patterns} "
            f"min={self.profile.minimum} max={self.profile.maximum} "
            f"mean={self.profile.mean:.2f} "
            f"(paper: 741 patterns, 8..15, mean ~12)"
        )
        return header + "\n" + render_heatmap(matrix)


def run_fig4(code: LinearBlockCode | None = None) -> Fig4Result:
    """Compute the Fig. 4 heatmap for *code* (canonical by default)."""
    code = code or default_code()
    return Fig4Result(code_name=code.name, profile=candidate_count_profile(code))


# ---------------------------------------------------------------------------
# Fig. 5 — candidates vs legality-filtered valid messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5Result:
    """Per-(pattern, instruction) candidate and valid-message counts.

    Matrices are indexed ``[pattern_index][instruction_index]``.
    """

    benchmark: str
    candidate_matrix: tuple[tuple[int, ...], ...]
    valid_matrix: tuple[tuple[int, ...], ...]

    @property
    def mean_candidates(self) -> float:
        """Grand mean of candidate counts (message independent)."""
        return _matrix_mean(self.candidate_matrix)

    @property
    def mean_valid(self) -> float:
        """Grand mean of legality-filtered counts."""
        return _matrix_mean(self.valid_matrix)

    @property
    def candidates_message_independent(self) -> bool:
        """Linearity check: each pattern row is constant (Fig. 5a)."""
        return all(len(set(row)) == 1 for row in self.candidate_matrix)

    @property
    def single_valid_fraction(self) -> float:
        """Fraction of cases filtered down to exactly one valid message
        (recovery is then certain, the paper's best case)."""
        cells = [cell for row in self.valid_matrix for cell in row]
        return sum(1 for cell in cells if cell == 1) / len(cells)

    def render(self) -> str:
        reduction = self.mean_candidates - self.mean_valid
        parts = [
            f"Fig. 5 | {self.benchmark}: filtering candidate messages",
            f"(a) mean candidates            = {self.mean_candidates:.2f} "
            f"(message-independent: {self.candidates_message_independent})",
            f"(b) mean valid after filtering = {self.mean_valid:.2f}",
            f"    mean reduction             = {reduction:.2f} "
            "(paper: ~2 fewer on average)",
            f"    cases with a single valid message = "
            f"{self.single_valid_fraction:.3%} (recovery certain)",
        ]
        # The paper's 5(b) surface: pattern x instruction valid counts,
        # down-sampled to a terminal-sized character grid (dark = many
        # surviving candidates, light = few = easy recovery).
        parts.append("(b) valid messages, pattern (rows, bucketed) x instruction (cols):")
        parts.append(render_heatmap(self._bucketed_valid(), legend=True))
        return "\n".join(parts)

    def _bucketed_valid(self, rows: int = 24) -> list[list[float]]:
        bucket = max(1, len(self.valid_matrix) // rows)
        grid = []
        for start in range(0, len(self.valid_matrix), bucket):
            chunk = self.valid_matrix[start : start + bucket]
            columns = len(chunk[0])
            grid.append([
                sum(row[col] for row in chunk) / len(chunk)
                for col in range(columns)
            ])
        return grid


def run_fig5(
    code: LinearBlockCode | None = None,
    image: ProgramImage | None = None,
    num_instructions: int = 100,
) -> Fig5Result:
    """Compute Fig. 5 for *image* (synthetic mcf by default)."""
    code = code or default_code()
    image = image or synthesize_benchmark("mcf", length=_DEFAULT_IMAGE_LENGTH)
    window = min(num_instructions, len(image))
    sweep = DueSweep(code, RecoveryStrategy.FILTER_ONLY, window)
    engine = sweep.engine
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    encoded = [code.encode(word) for word in image.words[:window]]
    candidate_matrix = []
    valid_matrix = []
    for pattern in sweep.patterns:
        candidate_row = []
        valid_row = []
        for codeword in encoded:
            result = engine.recover(pattern.apply(codeword), context)
            candidate_row.append(result.num_candidates)
            valid_row.append(0 if result.filter_fell_back else result.num_valid)
        candidate_matrix.append(tuple(candidate_row))
        valid_matrix.append(tuple(valid_row))
    return Fig5Result(
        benchmark=image.name,
        candidate_matrix=tuple(candidate_matrix),
        valid_matrix=tuple(valid_matrix),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — filtering-only histogram (bzip2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig6Result:
    """Per-pattern success-rate distributions for the baseline strategies.

    ``random_rates`` and ``filter_rates`` hold the per-pattern mean
    success rate over the instruction window; ``filter_best_rates``
    holds, per pattern, the rate of the single most recoverable
    instruction (the paper's red "best case" curve).
    """

    benchmark: str
    random_rates: tuple[float, ...]
    filter_rates: tuple[float, ...]
    filter_best_rates: tuple[float, ...]

    def render(self, num_bins: int = 20) -> str:
        sections = [f"Fig. 6 | {self.benchmark}: filtering-only strategy"]
        for label, rates in (
            ("random choice among candidates", self.random_rates),
            ("filtering-only (average case)", self.filter_rates),
            ("filtering-only (best case)", self.filter_best_rates),
        ):
            sections.append(render_histogram(
                rate_histogram(rates, num_bins),
                title=f"-- {label}: mean={arithmetic_mean(rates):.4f} "
                f"min={min(rates):.3f} max={max(rates):.3f}",
            ))
        return "\n".join(sections)


def _fig6_pattern_rates(payload) -> list[tuple[float, float, float]]:
    """Fig. 6 rates for one chunk of patterns (parallel-map worker).

    Returns ``(random_rate, filter_rate, filter_best)`` per pattern.
    Module-level and driven by plain data so it pickles into worker
    processes; the serial path runs the same code in-process.
    """
    code, image, window, patterns = payload
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    originals = image.words[:window]
    random_engine = DueSweep(code, RecoveryStrategy.RANDOM_CANDIDATE, window).engine
    filter_engine = DueSweep(code, RecoveryStrategy.FILTER_ONLY, window).engine
    rows = []
    for pattern in patterns:
        random_stats = random_engine.sweep_probabilities(
            originals, pattern.vector, context
        )
        filter_stats = filter_engine.sweep_probabilities(
            originals, pattern.vector, context
        )
        random_total = 0.0
        filter_total = 0.0
        best = 0.0
        for (p_random, _, _), (p_filter, _, _) in zip(
            random_stats, filter_stats
        ):
            random_total += p_random
            filter_total += p_filter
            best = max(best, p_filter)
        rows.append((random_total / window, filter_total / window, best))
    return rows


def run_fig6(
    code: LinearBlockCode | None = None,
    image: ProgramImage | None = None,
    num_instructions: int = 100,
    jobs: int = 1,
    progress: SweepProgress | None = None,
) -> Fig6Result:
    """Compute Fig. 6 for *image* (synthetic bzip2 by default).

    With ``jobs > 1`` the pattern sweep fans out over worker processes;
    results are bit-identical to the serial run.  The
    ``sweep.progress.*`` gauges advance as each pattern chunk completes
    (live through a ``--serve`` endpoint); pass *progress* to also
    render a console line.
    """
    code = code or default_code()
    image = image or synthesize_benchmark("bzip2", length=_DEFAULT_IMAGE_LENGTH)
    window = min(num_instructions, len(image))
    chunks = chunk_evenly(tuple(double_bit_patterns(code.n)), jobs)
    payloads = [(code, image, window, chunk) for chunk in chunks]
    if progress is None:
        progress = SweepProgress()
    progress.add_total(sum(len(chunk) for chunk in chunks))

    def _chunk_done(index, chunk_rows, wall_seconds):
        progress.on_chunk(
            len(chunk_rows), wall_seconds,
            sum(row[1] for row in chunk_rows),
        )

    rows = [
        row
        for chunk_rows in parallel_map(
            _fig6_pattern_rates, payloads, jobs, on_result=_chunk_done
        )
        for row in chunk_rows
    ]
    progress.finish()
    random_rates = [row[0] for row in rows]
    filter_rates = [row[1] for row in rows]
    filter_best = [row[2] for row in rows]
    return Fig6Result(
        benchmark=image.name,
        random_rates=tuple(random_rates),
        filter_rates=tuple(filter_rates),
        filter_best_rates=tuple(filter_best),
    )


# ---------------------------------------------------------------------------
# Fig. 7 — instruction-mix distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig7Result:
    """Mnemonic frequency tables and power-law fits per benchmark."""

    tables: Mapping[str, FrequencyTable]
    fits: Mapping[str, tuple[float, float]]

    def render(self, top: int = 12) -> str:
        rows = []
        for name, table in self.tables.items():
            alpha, r_squared = self.fits[name]
            head = ", ".join(
                f"{mnemonic}={frequency:.3f}"
                for mnemonic, frequency in table.most_common(5)
            )
            rows.append([name, len(table.counts), f"{alpha:.2f}",
                         f"{r_squared:.2f}", head])
        table_text = render_table(
            ["benchmark", "mnemonics", "alpha", "r^2", "top-5 frequencies"],
            rows,
            title="Fig. 7 | instruction mixes (paper: power law, lw ~0.20)",
        )
        return table_text

    def lw_frequencies(self) -> dict[str, float]:
        """The ``lw`` share per benchmark (paper: ~20% everywhere)."""
        return {
            name: table.frequency("lw") for name, table in self.tables.items()
        }


def run_fig7(images: list[ProgramImage] | None = None) -> Fig7Result:
    """Compute Fig. 7 over *images* (all five stand-ins by default)."""
    images = images or default_images()
    tables = {image.name: FrequencyTable.from_image(image) for image in images}
    fits = {name: power_law_fit(table) for name, table in tables.items()}
    return Fig7Result(tables=tables, fits=fits)


# ---------------------------------------------------------------------------
# Fig. 8 — filtering-and-ranking recovery across benchmarks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8Result:
    """The headline experiment: per-pattern recovery rates, all benchmarks."""

    sweeps: tuple[BenchmarkSweepResult, ...]

    @property
    def overall_mean(self) -> float:
        """Grand arithmetic mean (the paper's 0.3403)."""
        return arithmetic_mean([s.mean_success_rate for s in self.sweeps])

    def mean_curve(self) -> list[float]:
        """Cross-benchmark mean success per pattern index."""
        return mean_series([s.success_series() for s in self.sweeps])

    def region_summary(self) -> dict[BitRegion, float]:
        """Mean success by bit region, pooled over benchmarks."""
        pooled = [o for sweep in self.sweeps for o in sweep.outcomes]
        return region_means(pooled)

    def render(self) -> str:
        rows = [
            [s.benchmark, s.num_instructions, f"{s.mean_success_rate:.4f}"]
            for s in self.sweeps
        ]
        parts = [render_table(
            ["benchmark", "instructions", "mean recovery rate"],
            rows,
            title="Fig. 8 | filtering-and-ranking recovery "
            "(paper: arithmetic mean = 0.3403)",
        )]
        parts.append(f"overall arithmetic mean = {self.overall_mean:.4f}")
        regions = self.region_summary()
        region_rows = [
            [region.value, f"{rate:.4f}"]
            for region, rate in sorted(regions.items(), key=lambda kv: -kv[1])
        ]
        parts.append(render_table(
            ["bit region", "mean recovery rate"],
            region_rows,
            title="(paper: up to 0.99 in decode fields, ~0.15 in low-order bits)",
        ))
        parts.append(render_series(
            self.mean_curve(),
            title="mean recovery rate vs 2-bit error pattern index",
        ))
        return "\n".join(parts)


def run_fig8(
    code: LinearBlockCode | None = None,
    images: list[ProgramImage] | None = None,
    num_instructions: int = 100,
    jobs: int = 1,
    progress: SweepProgress | None = None,
) -> Fig8Result:
    """Run the headline sweep (Fig. 8) over *images*.

    With ``jobs > 1`` each image's pattern sweep fans out over worker
    processes (see :meth:`~repro.analysis.sweep.DueSweep.run`); output
    is bit-identical to the serial run.  One shared progress tracker
    spans all the images, so live rate/ETA reflects the whole figure.
    """
    code = code or default_code()
    images = images or default_images()
    sweep = DueSweep(code, RecoveryStrategy.FILTER_AND_RANK, num_instructions)
    if progress is None:
        progress = SweepProgress()
    result = Fig8Result(
        sweeps=tuple(sweep.run_many(images, jobs=jobs, progress=progress))
    )
    progress.finish()
    return result


# ---------------------------------------------------------------------------
# ISA legality counts and code properties (Sec. III-B / IV-B tables)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IsaLegalityResult:
    """The three legality counts the paper reports for MIPS-I."""

    legal_opcodes: int
    legal_functs: int
    legal_fmts: int

    def render(self) -> str:
        return render_table(
            ["field", "legal", "total", "paper"],
            [
                ["opcode", self.legal_opcodes, 64, "41/64"],
                ["funct (opcode 0x00)", self.legal_functs, 64, "37/64"],
                ["fmt (opcode 0x11)", self.legal_fmts, 32, "3/32"],
            ],
            title="ISA legality (Sec. III-B)",
        )


def run_isa_legality() -> IsaLegalityResult:
    """Count the legal opcode/funct/fmt values of the decoder."""
    return IsaLegalityResult(
        legal_opcodes=len(LEGAL_OPCODES),
        legal_functs=len(SPECIAL_FUNCTS),
        legal_fmts=len(COP1_FMTS),
    )


@dataclass(frozen=True)
class CodePropertiesResult:
    """SECDED guarantees and candidate statistics of the code."""

    code_name: str
    n: int
    k: int
    distance_at_least_4: bool
    distance_at_least_5: bool
    profile: CandidateCountProfile

    def render(self) -> str:
        return render_table(
            ["property", "value", "paper"],
            [
                ["code", f"({self.n},{self.k})", "(39,32)"],
                ["min distance >= 4 (SECDED)", self.distance_at_least_4, "yes"],
                ["min distance >= 5", self.distance_at_least_5, "no"],
                ["2-bit patterns", self.profile.num_patterns, 741],
                ["min candidates", self.profile.minimum, 8],
                ["max candidates", self.profile.maximum, 15],
                ["mean candidates", f"{self.profile.mean:.2f}", "~12"],
            ],
            title=f"Code properties | {self.code_name}",
        )


def run_code_properties(
    code: LinearBlockCode | None = None,
) -> CodePropertiesResult:
    """Verify the SECDED properties the evaluation relies on."""
    code = code or default_code()
    return CodePropertiesResult(
        code_name=code.name,
        n=code.n,
        k=code.k,
        distance_at_least_4=code.verify_minimum_distance(4),
        distance_at_least_5=code.verify_minimum_distance(5),
        profile=candidate_count_profile(code),
    )


def _matrix_mean(matrix: tuple[tuple[int, ...], ...]) -> float:
    cells = [cell for row in matrix for cell in row]
    return sum(cells) / len(cells)
