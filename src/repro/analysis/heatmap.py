"""Text rendering of heatmaps, tables, and series for bench output.

The paper's figures are rendered here as terminal text: the Fig. 4
candidate-count heatmap becomes a character grid, Figs. 6-8 become
aligned tables.  Keeping rendering separate from computation lets tests
assert on numbers while benches print something a human can read.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError

__all__ = ["render_heatmap", "render_table", "render_histogram", "render_series"]

# Ten-step character ramp, light to dark.
_RAMP = " .:-=+*#%@"


def render_heatmap(
    matrix: Sequence[Sequence[float]],
    title: str = "",
    legend: bool = True,
) -> str:
    """Render a numeric matrix as a character-ramp heatmap.

    Cells are scaled between the matrix minimum and maximum; zero cells
    on the diagonal of symmetric pattern matrices render as spaces.
    """
    values = [value for row in matrix for value in row if value]
    if not values:
        raise AnalysisError("heatmap matrix has no non-zero cells")
    low, high = min(values), max(values)
    span = high - low
    lines = []
    if title:
        lines.append(title)
    for row in matrix:
        cells = []
        for value in row:
            if not value:
                cells.append(" ")
                continue
            scaled = (value - low) / span if span else 1.0
            cells.append(_RAMP[min(int(scaled * len(_RAMP)), len(_RAMP) - 1)])
        lines.append("".join(cells))
    if legend:
        lines.append(f"[light='{_RAMP[0]}'={low:g} .. dark='{_RAMP[-1]}'={high:g}]")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise AnalysisError("table needs headers")
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    bins: Sequence[tuple[float, float, float]],
    title: str = "",
    bar_width: int = 50,
) -> str:
    """Render (low, high, fraction) bins as a horizontal bar chart."""
    if not bins:
        raise AnalysisError("histogram needs bins")
    peak = max(fraction for _, _, fraction in bins) or 1.0
    lines = [title] if title else []
    for low, high, fraction in bins:
        bar = "#" * round(bar_width * fraction / peak)
        lines.append(f"[{low:4.2f},{high:4.2f})  {fraction:6.3f}  {bar}")
    return "\n".join(lines)


def render_series(
    series: Sequence[float],
    title: str = "",
    width: int = 74,
    height: int = 12,
) -> str:
    """Render a numeric series as a down-sampled ASCII line chart."""
    if not series:
        raise AnalysisError("series is empty")
    # Down-sample by averaging consecutive chunks.
    chunk = max(1, len(series) // width)
    points = [
        sum(series[i : i + chunk]) / len(series[i : i + chunk])
        for i in range(0, len(series), chunk)
    ]
    low, high = min(points), max(points)
    span = (high - low) or 1.0
    rows = [[" "] * len(points) for _ in range(height)]
    for x, value in enumerate(points):
        y = round((value - low) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    lines = [title] if title else []
    lines.append(f"max={high:.3f}")
    lines.extend("".join(row) for row in rows)
    lines.append(f"min={low:.3f}  (x: 0..{len(series) - 1}, {len(points)} buckets)")
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
