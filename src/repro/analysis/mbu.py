"""Adjacent-MBU resilience study: static codes vs adaptive selection.

Scaled DRAM/SRAM takes a growing share of its upsets as *adjacent*
multi-bit events, which the paper's (39, 32) SECDED code can only flag
as DUEs (SWD-ECC then recovers them heuristically — sometimes
wrongly).  A SEC-DED-DAEC code corrects that class in hardware but
spends two extra parity bits everywhere.  This study measures the
third option: keep SECDED by default and let the
:class:`~repro.service.selector.AdaptiveCodeSelector` upgrade only the
regions whose observed DUE population is burst-dominated.

Each trial partitions a memory into regions, injects a configurable
mix of adjacent bursts and random (non-adjacent) doubles, sweeps reads
over the array, and scores every injected fault exactly once at its
first faulted read:

- hardware-corrected (CE) and correct heuristic recoveries count as
  *recovered*;
- wrong heuristic recoveries and CE miscorrections count as *silent
  corruptions*;
- faults where even radius escalation finds no candidate count as
  *unrecovered*.

After scoring, the read's result is written back (a demand scrub) so
each fault is counted once; the adaptive arm additionally polls the
selector each epoch and re-encodes any region it switches.  Modeled
energy is the :mod:`repro.obs.energy` op-count delta over the trial,
so the recovery-rate comparison comes with a joules-per-handled-fault
price tag.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.analysis.parallel import parallel_map
from repro.core.recovery import RecoveryPipeline
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc
from repro.ecc.code import DecodeStatus, LinearBlockCode
from repro.ecc.daec import daec_code
from repro.ecc.matrices import canonical_secded_39_32
from repro.errors import AnalysisError, RecoveryError, UncorrectableError
from repro.memory.faults import FaultInjector
from repro.memory.model import EccMemory
from repro.memory.policy import HeuristicPolicy
from repro.obs import energy as obs_energy
from repro.obs import events as obs_events
from repro.obs.progress import SweepProgress
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark
from repro.service.selector import AdaptiveCodeSelector, SelectorPolicy

__all__ = [
    "MBU_ARMS",
    "DEFAULT_PROFILES",
    "MbuConfig",
    "MbuOutcome",
    "run_mbu_trial",
    "mbu_study",
    "append_mbu_record",
]

#: The compared system configurations.
MBU_ARMS = ("static-secded-39-32", "static-daec-41-32", "adaptive")

#: Burst profiles swept by :func:`mbu_study`: name -> fraction of
#: injected faults that are adjacent bursts (the rest are uniformly
#: random non-adjacent doubles).
DEFAULT_PROFILES: dict[str, float] = {
    "adjacent-bursts": 1.0,
    "mixed": 0.5,
    "random-doubles": 0.0,
}


@dataclass(frozen=True)
class MbuConfig:
    """Parameters of one MBU trial.

    Attributes
    ----------
    epochs / faults_per_epoch / reads_per_epoch:
        Fault arrivals and the read workload between selector polls.
    regions / words_per_region:
        Memory geometry; the selector's region granularity matches
        (``4 * words_per_region`` bytes).
    adjacent_fraction:
        Probability an injected fault is an adjacent burst rather than
        a random non-adjacent double (the burst profile knob).
    burst_lengths:
        ``((length, weight), ...)`` distribution for adjacent bursts
        (tuple-of-pairs so the config stays hashable/frozen).
    seed:
        RNG seed for the whole trial.
    """

    epochs: int = 24
    regions: int = 4
    words_per_region: int = 64
    faults_per_epoch: int = 3
    reads_per_epoch: int = 96
    adjacent_fraction: float = 1.0
    burst_lengths: tuple[tuple[int, float], ...] = ((2, 0.8), (3, 0.2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.faults_per_epoch < 1:
            raise AnalysisError("epochs and faults_per_epoch must be >= 1")
        if self.regions < 1 or self.words_per_region < 1:
            raise AnalysisError("regions and words_per_region must be >= 1")
        if not 0.0 <= self.adjacent_fraction <= 1.0:
            raise AnalysisError(
                f"adjacent_fraction must be in [0, 1], "
                f"got {self.adjacent_fraction}"
            )

    @property
    def region_bytes(self) -> int:
        """Bytes spanned by one region (4-byte words)."""
        return 4 * self.words_per_region


@dataclass(frozen=True)
class MbuOutcome:
    """What happened over one MBU trial."""

    arm: str
    faults_injected: int
    faults_scored: int
    hw_corrected: int
    heuristic_correct: int
    silent_corruptions: int
    unrecovered: int
    switches: int
    regions_upgraded: int
    joules: float

    @property
    def recovered(self) -> int:
        """Faults that ended with the true word delivered."""
        return self.hw_corrected + self.heuristic_correct

    @property
    def recovery_rate(self) -> float:
        """Fraction of scored faults recovered to the true word."""
        return self.recovered / self.faults_scored if self.faults_scored else 0.0

    @property
    def joules_per_fault(self) -> float:
        """Modeled energy per scored fault."""
        return self.joules / self.faults_scored if self.faults_scored else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready record (derived rates included)."""
        return {
            "arm": self.arm,
            "faults_injected": self.faults_injected,
            "faults_scored": self.faults_scored,
            "hw_corrected": self.hw_corrected,
            "heuristic_correct": self.heuristic_correct,
            "silent_corruptions": self.silent_corruptions,
            "unrecovered": self.unrecovered,
            "switches": self.switches,
            "regions_upgraded": self.regions_upgraded,
            "recovery_rate": round(self.recovery_rate, 4),
            "joules": self.joules,
            "joules_per_fault": self.joules_per_fault,
        }


class _Region:
    """One region's memory, truth words, and recovery plumbing."""

    def __init__(
        self,
        code: LinearBlockCode,
        base_address: int,
        words: list[int],
        context: RecoveryContext,
        rng_seed: int,
    ) -> None:
        self.base_address = base_address
        self.truth = {
            base_address + 4 * index: word for index, word in enumerate(words)
        }
        self.context = context
        self.rng_seed = rng_seed
        self._build(code)

    def _build(self, code: LinearBlockCode) -> None:
        self.code = code
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(self.rng_seed))
        )
        policy = HeuristicPolicy(pipeline, lambda address: self.context)
        self.memory = EccMemory(code, policy)
        for address, word in self.truth.items():
            self.memory.write(address, word)

    def reencode(self, code: LinearBlockCode, score_read) -> None:
        """Migrate to *code*, reading every word through ECC first.

        Latent faults surface (and are scored) during the migration
        read — switching codes is not a free scrub.
        """
        migrated = {
            address: score_read(self, address)
            for address in sorted(self.truth)
        }
        self._build(code)
        for address, word in migrated.items():
            self.memory.write(address, word)


def run_mbu_trial(arm: str, config: MbuConfig) -> MbuOutcome:
    """Run one trial of *arm* under *config* (see module docstring)."""
    if arm not in MBU_ARMS:
        raise AnalysisError(f"unknown arm {arm!r}; expected one of {MBU_ARMS}")
    rng = random.Random(config.seed)
    image = synthesize_benchmark(
        "mcf",
        length=max(40, config.regions * config.words_per_region),
        seed=2016 + config.seed,
    )
    context = RecoveryContext.for_instructions(FrequencyTable.from_image(image))
    secded = canonical_secded_39_32()
    daec = daec_code()
    start_code = daec if arm == "static-daec-41-32" else secded

    words = list(image.words)

    def region_of(address: int) -> _Region:
        return regions[address // config.region_bytes]

    counts = {
        "faults": 0, "scored": 0, "hw": 0, "heur": 0,
        "silent": 0, "unrecovered": 0, "switches": 0,
    }

    def score_read(region: _Region, address: int) -> int:
        """Read *address*; score its fault (if any) exactly once.

        Returns the word to carry forward.  After scoring, the result
        is written back and adopted as the new reference, so one fault
        is one verdict no matter how often the address is re-read.
        """
        truth = region.truth[address]
        faulty = region.memory.raw_codeword(address) != region.code.encode(truth)
        try:
            result = region.memory.read(address)
        except (UncorrectableError, RecoveryError):
            counts["scored"] += 1
            counts["unrecovered"] += 1
            # Operator repair: restore the true word and move on.
            region.memory.write(address, truth)
            return truth
        if not faulty:
            return result.word
        counts["scored"] += 1
        if result.status is DecodeStatus.DUE and event_log.last() is not None:
            event_log.annotate_last(address=address, true_message=truth)
        if result.word == truth:
            if result.status is DecodeStatus.DUE:
                counts["heur"] += 1
            else:
                counts["hw"] += 1
        else:
            counts["silent"] += 1
        region.memory.write(address, result.word)
        region.truth[address] = result.word
        return result.word

    selector: AdaptiveCodeSelector | None = None
    event_log = obs_events.EventLog()
    # Engines capture the event log at construction: swap in a private
    # log *before* building any region pipeline so their DUEs land here
    # (and concurrent trials in one process don't cross-talk).
    previous_log = obs_events.set_event_log(event_log)
    model = obs_energy.get_energy_model()
    try:
        regions = [
            _Region(
                start_code,
                index * config.region_bytes,
                words[
                    index * config.words_per_region:
                    (index + 1) * config.words_per_region
                ],
                context,
                rng_seed=config.seed * 1000 + index,
            )
            for index in range(config.regions)
        ]
        if arm == "adaptive":
            selector = AdaptiveCodeSelector(
                event_log=event_log,
                base_code=secded,
                upgrade_code=daec,
                policy=SelectorPolicy(
                    min_samples=8,
                    window=64,
                    region_bytes=config.region_bytes,
                ),
            )
        ops_before = obs_energy.op_counts(model=model)
        burst_lengths = dict(config.burst_lengths)
        all_addresses = [
            address for region in regions for address in sorted(region.truth)
        ]
        for _ in range(config.epochs):
            for _ in range(config.faults_per_epoch):
                counts["faults"] += 1
                region = regions[rng.randrange(config.regions)]
                injector = FaultInjector(region.memory, rng=rng)
                address = rng.choice(sorted(region.truth))
                if rng.random() < config.adjacent_fraction:
                    injector.inject_adjacent_burst(
                        address, burst_lengths=burst_lengths
                    )
                else:
                    n = region.code.n
                    first = rng.randrange(n)
                    second = rng.randrange(n)
                    while abs(first - second) <= 1:
                        second = rng.randrange(n)
                    injector.inject_at(address, (min(first, second),
                                                 max(first, second)))
            for _ in range(config.reads_per_epoch):
                address = rng.choice(all_addresses)
                score_read(region_of(address), address)
            if selector is not None:
                for switch in selector.poll():
                    counts["switches"] += 1
                    new_code = daec if switch.new_code_id == "daec-41-32" else secded
                    regions[switch.region].reencode(new_code, score_read)
        ops_after = obs_energy.op_counts(model=model)
    finally:
        obs_events.set_event_log(previous_log)
    joules = model.joules({
        name: ops_after[name] - ops_before.get(name, 0)
        for name in ops_after
    })
    upgraded = (
        config.regions if arm == "static-daec-41-32"
        else sum(
            1 for code_id in (selector.assignments().values() if selector else ())
            if code_id == "daec-41-32"
        )
    )
    return MbuOutcome(
        arm=arm,
        faults_injected=counts["faults"],
        faults_scored=counts["scored"],
        hw_corrected=counts["hw"],
        heuristic_correct=counts["heur"],
        silent_corruptions=counts["silent"],
        unrecovered=counts["unrecovered"],
        switches=counts["switches"],
        regions_upgraded=upgraded,
        joules=joules,
    )


def _mbu_trial_worker(payload) -> MbuOutcome:
    """Run one fully-seeded trial (parallel-map worker)."""
    arm, config = payload
    return run_mbu_trial(arm, config)


def mbu_study(
    profiles: dict[str, float] | None = None,
    trials: int = 3,
    base_config: MbuConfig | None = None,
    jobs: int = 1,
    progress: SweepProgress | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Compare the three arms across burst profiles.

    Returns ``{profile: {arm: {metric: mean value}}}``.  Every trial is
    fully seeded by its config, so the study is deterministic
    regardless of *jobs*.
    """
    if trials < 1:
        raise AnalysisError("trials must be >= 1")
    profiles = profiles if profiles is not None else dict(DEFAULT_PROFILES)
    base = base_config or MbuConfig()
    cells = [
        (profile_name, arm)
        for profile_name in profiles
        for arm in MBU_ARMS
    ]
    payloads = [
        (
            arm,
            MbuConfig(
                epochs=base.epochs,
                regions=base.regions,
                words_per_region=base.words_per_region,
                faults_per_epoch=base.faults_per_epoch,
                reads_per_epoch=base.reads_per_epoch,
                adjacent_fraction=profiles[profile_name],
                burst_lengths=base.burst_lengths,
                seed=base.seed + trial,
            ),
        )
        for profile_name, arm in cells
        for trial in range(trials)
    ]
    owns_progress = progress is None
    if progress is None:
        progress = SweepProgress(unit="trials")
    progress.add_total(len(payloads))

    def _trial_done(index, outcome, wall_seconds):
        progress.on_chunk(1, wall_seconds)

    outcomes = parallel_map(
        _mbu_trial_worker, payloads, jobs, on_result=_trial_done
    )
    if owns_progress:
        progress.finish()
    study: dict[str, dict[str, dict[str, float]]] = {}
    for cell_index, (profile_name, arm) in enumerate(cells):
        block = outcomes[cell_index * trials:(cell_index + 1) * trials]
        study.setdefault(profile_name, {})[arm] = {
            "recovery_rate":
                sum(o.recovery_rate for o in block) / trials,
            "mean_silent_corruptions":
                sum(o.silent_corruptions for o in block) / trials,
            "mean_hw_corrected":
                sum(o.hw_corrected for o in block) / trials,
            "mean_heuristic_correct":
                sum(o.heuristic_correct for o in block) / trials,
            "mean_switches":
                sum(o.switches for o in block) / trials,
            "mean_regions_upgraded":
                sum(o.regions_upgraded for o in block) / trials,
            "joules_per_fault":
                sum(o.joules_per_fault for o in block) / trials,
        }
    return study


def append_mbu_record(
    path: str | Path,
    study: Mapping[str, Mapping[str, Mapping[str, float]]],
    timestamp: str,
    meta: Mapping[str, object] | None = None,
) -> int:
    """Append one MBU-study record to the ``BENCH_sweep.json`` history.

    Follows the repo's bench-history idiom (see
    :func:`repro.analysis.pareto.append_energy_record`): the file holds
    a JSON list of records, tolerates a missing/corrupt file, and each
    record carries its configuration next to the measured study.
    Returns the new history length.
    """
    path = Path(path)
    try:
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, json.JSONDecodeError):
        history = []
    record: dict[str, object] = {
        "timestamp": timestamp,
        "study": "mbu",
        "profiles": {
            profile: {arm: dict(metrics) for arm, metrics in arms.items()}
            for profile, arms in study.items()
        },
    }
    if meta:
        record.update(dict(meta))
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(history)
