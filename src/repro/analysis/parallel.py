"""Process-parallel fan-out with deterministic merge and obs aggregation.

The exhaustive sweeps are embarrassingly parallel — every error pattern
(and every benchmark image) is independent — but plain
``ProcessPoolExecutor`` use would silently drop the observability
counters the workers accumulate.  :func:`parallel_map` fixes both ends:

- **Determinism**: results come back in payload order (``Executor.map``
  semantics), so callers can concatenate chunk results and obtain
  output bit-identical to a serial run.
- **Metrics**: each worker task runs against a freshly-reset
  process-local registry, snapshots it afterwards, and ships the
  snapshot home; the parent folds the snapshots into its own registry
  with :func:`repro.obs.metrics.merge_snapshot`, in submission order.

Tracing spans and DUE event records are process-local and are *not*
shipped back (spans are opt-in diagnostics; the event log is a bounded
ring that parallel chunks would interleave meaninglessly) — see
``docs/performance.md``.

Workers are separate processes, so the callable and every payload must
be picklable: pass module-level functions and plain data (codes,
images, and patterns all qualify).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, TypeVar

from repro.errors import AnalysisError
from repro.obs import metrics as obs_metrics

__all__ = ["chunk_evenly", "parallel_map"]

_P = TypeVar("_P")
_R = TypeVar("_R")


def chunk_evenly(items: Sequence[_P], num_chunks: int) -> list[tuple[_P, ...]]:
    """Split *items* into at most *num_chunks* contiguous, non-empty runs.

    Chunk sizes differ by at most one, so process-pool workers receive
    balanced work; concatenating the chunks reproduces *items* exactly.
    """
    if num_chunks < 1:
        raise AnalysisError(f"num_chunks must be >= 1, got {num_chunks}")
    items = tuple(items)
    num_chunks = min(num_chunks, len(items))
    if num_chunks <= 1:
        return [items] if items else []
    base, extra = divmod(len(items), num_chunks)
    chunks = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _run_isolated(fn: Callable[[Any], Any], payload: Any):
    """Worker-side wrapper: isolate metrics and snapshot the delta.

    The worker process was forked from (or spawned by) the parent, so
    its registry may hold inherited or previous-task counts; resetting
    at task entry makes the snapshot a per-task delta the parent can
    add without double counting.
    """
    registry = obs_metrics.get_registry()
    registry.reset()
    result = fn(payload)
    return result, registry.as_dict()


def parallel_map(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    jobs: int,
) -> list[_R]:
    """Map *fn* over *payloads*, fanning out across *jobs* processes.

    Results return in payload order.  Worker metric deltas are merged
    into the parent registry in that same order, so counter totals
    equal a serial run's and last-wins metrics (gauges, info) are
    deterministic.  With ``jobs <= 1`` (or a single payload) the map
    runs in-process and metrics flow directly — no pool, no snapshot
    round-trip.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    registry = obs_metrics.get_registry()
    results: list[_R] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        for result, snapshot in pool.map(
            partial(_run_isolated, fn), payloads
        ):
            results.append(result)
            obs_metrics.merge_snapshot(snapshot, registry)
    return results
