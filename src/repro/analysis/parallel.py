"""Process-parallel fan-out with deterministic merge and obs aggregation.

The exhaustive sweeps are embarrassingly parallel — every error pattern
(and every benchmark image) is independent — but plain
``ProcessPoolExecutor`` use would silently drop the observability
counters the workers accumulate.  :func:`parallel_map` fixes both ends:

- **Determinism**: results are returned in payload order, and the
  worker metric/event aggregates are folded into the parent in that
  same submission order, so callers can concatenate chunk results and
  obtain output bit-identical to a serial run.
- **Metrics**: each worker task runs against a freshly-reset
  process-local registry, snapshots it afterwards, and ships the
  snapshot home; the parent folds the snapshots into its own registry
  with :func:`repro.obs.metrics.merge_snapshot`.
- **Events**: worker DUE event *rings* stay process-local (parallel
  chunks would interleave the bounded ring meaninglessly), but each
  task ships a fixed-size :class:`repro.obs.events.EventDigest` that
  the parent absorbs, so ``--profile`` summaries of ``--jobs N`` runs
  report worker DUE activity.
- **Liveness**: tasks complete out of order under the hood
  (``as_completed``), and the optional *on_result* callback fires as
  each one finishes — this is how sweep progress gauges advance while
  the run is in flight instead of only at merge time.

Tracing spans are opt-in diagnostics and are not shipped back — see
``docs/performance.md``.

Workers are separate processes, so the callable and every payload must
be picklable: pass module-level functions and plain data (codes,
images, and patterns all qualify).  The *on_result* callback runs in
the parent and needs no such property.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, TypeVar

from repro.errors import AnalysisError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

__all__ = ["chunk_evenly", "parallel_map"]

_P = TypeVar("_P")
_R = TypeVar("_R")

#: Callback invoked in the parent as each task completes (completion
#: order): ``on_result(index, result, wall_seconds)``.
OnResult = Callable[[int, Any, float], None]


def chunk_evenly(items: Sequence[_P], num_chunks: int) -> list[tuple[_P, ...]]:
    """Split *items* into at most *num_chunks* contiguous, non-empty runs.

    Chunk sizes differ by at most one, so process-pool workers receive
    balanced work; concatenating the chunks reproduces *items* exactly.
    """
    if num_chunks < 1:
        raise AnalysisError(f"num_chunks must be >= 1, got {num_chunks}")
    items = tuple(items)
    num_chunks = min(num_chunks, len(items))
    if num_chunks <= 1:
        return [items] if items else []
    base, extra = divmod(len(items), num_chunks)
    chunks = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _run_isolated(fn: Callable[[Any], Any], payload: Any):
    """Worker-side wrapper: isolate obs state and snapshot the delta.

    The worker process was forked from (or spawned by) the parent, so
    its registry and event log may hold inherited or previous-task
    state; resetting at task entry makes the snapshot and digest
    per-task deltas the parent can add without double counting.
    Returns ``(result, metrics snapshot, event digest, wall seconds)``.
    """
    registry = obs_metrics.get_registry()
    registry.reset()
    event_log = obs_events.get_event_log()
    event_log.clear()
    started = time.perf_counter()
    result = fn(payload)
    wall_seconds = time.perf_counter() - started
    digest = obs_events.EventDigest.from_log(event_log)
    snapshot = registry.as_dict()
    # The live-progress gauges are parent-owned: the parent advances
    # them as tasks complete, *before* this snapshot is merged.  A
    # forked worker inherits their registrations zeroed, and merging
    # those zeroes back (gauges are last-wins) would clobber the
    # in-flight progress, so they never leave the worker.
    for name in list(snapshot):
        if name.startswith("sweep.progress."):
            del snapshot[name]
    return result, snapshot, digest, wall_seconds


def parallel_map(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    jobs: int,
    on_result: OnResult | None = None,
) -> list[_R]:
    """Map *fn* over *payloads*, fanning out across *jobs* processes.

    Results return in payload order.  Worker metric deltas and event
    digests are merged into the parent registry/event log in that same
    order — after every task has finished — so counter totals equal a
    serial run's and last-wins metrics (gauges, info) are
    deterministic.  *on_result*, by contrast, fires in **completion
    order** as each task lands; use it for live progress, not for
    anything order-sensitive.  With ``jobs <= 1`` (or a single payload)
    the map runs in-process and metrics/events flow directly — no pool,
    no snapshot round-trip — while *on_result* still fires per payload.

    Failure is fast: the first task exception cancels every not-yet-
    started future and re-raises immediately, instead of draining the
    remaining completions first.  Tasks already executing in a worker
    run to completion (processes cannot be preempted safely), but no
    queued payload starts after the failure, and no worker metrics are
    merged from a failed map.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        results = []
        for index, payload in enumerate(payloads):
            started = time.perf_counter()
            result = fn(payload)
            if on_result is not None:
                on_result(index, result, time.perf_counter() - started)
            results.append(result)
        return results
    registry = obs_metrics.get_registry()
    event_log = obs_events.get_event_log()
    completed: list[tuple[_R, dict, obs_events.EventDigest] | None] = [
        None
    ] * len(payloads)
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        futures = {
            pool.submit(_run_isolated, fn, payload): index
            for index, payload in enumerate(payloads)
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                result, snapshot, digest, wall_seconds = future.result()
            except BaseException:
                # Fail fast: don't drain the remaining completions —
                # cancel everything still queued and surface the error.
                # (In-flight tasks finish; the pool shutdown below waits
                # only for those, not the whole backlog.)
                for pending in futures:
                    pending.cancel()
                raise
            completed[index] = (result, snapshot, digest)
            if on_result is not None:
                on_result(index, result, wall_seconds)
    results = []
    for entry in completed:  # submission order: the deterministic merge
        assert entry is not None  # every future resolved or raised above
        result, snapshot, digest = entry
        obs_metrics.merge_snapshot(snapshot, registry)
        event_log.absorb_digest(digest)
        results.append(result)
    return results
