"""System-resilience simulation: SWD-ECC's effect on survival time.

The paper's future work asks to "study the impact on system
resiliency".  This module runs that study on the memory model: a
long-running workload accumulates random bit faults (BSC arrivals
between scrub intervals); reads sweep the working set; every DUE is
handled by the configured policy.  We measure how long the system
survives and how many DUEs were absorbed, comparing:

- a conventional system (crash on first DUE);
- SWD-ECC (heuristic recovery; a *wrong* recovery is counted as silent
  data corruption, the honest accounting);
- each with and without periodic scrubbing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.parallel import parallel_map
from repro.core.recovery import RecoveryPipeline
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc
from repro.ecc.code import DecodeStatus, LinearBlockCode
from repro.errors import AnalysisError, RecoveryError, UncorrectableError
from repro.memory.faults import FaultInjector
from repro.obs.progress import SweepProgress
from repro.memory.model import EccMemory
from repro.memory.policy import CrashPolicy, HeuristicPolicy
from repro.memory.scrub import Scrubber
from repro.program.image import ProgramImage
from repro.program.stats import FrequencyTable

__all__ = ["ResilienceConfig", "ResilienceOutcome", "run_resilience_trial",
           "survival_study"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Parameters of one survival trial.

    Attributes
    ----------
    epochs:
        Number of read/fault rounds to attempt.
    reads_per_epoch:
        Random word reads per round (the "workload").
    flip_probability:
        Per-bit BSC flip probability applied to the whole array each
        round (compressed time: one round ~ a long wall-clock period).
    scrub_interval:
        Run a scrub pass every this many rounds (0 = never).
    use_heuristic:
        SWD-ECC policy instead of crash-on-DUE.
    seed:
        RNG seed for the whole trial.
    """

    epochs: int = 50
    reads_per_epoch: int = 64
    flip_probability: float = 2e-4
    scrub_interval: int = 0
    use_heuristic: bool = True
    seed: int = 0


@dataclass(frozen=True)
class ResilienceOutcome:
    """What happened over one trial.

    ``survived_epochs == config.epochs`` means the system outlived the
    experiment.  ``silent_corruptions`` counts heuristic recoveries
    that picked the wrong message (possible SDC), which conventional
    accounting would never see.
    """

    survived_epochs: int
    crashed: bool
    corrected_errors: int
    dues: int
    heuristic_recoveries: int
    correct_recoveries: int
    silent_corruptions: int
    scrub_passes: int


def run_resilience_trial(
    code: LinearBlockCode,
    image: ProgramImage,
    config: ResilienceConfig,
) -> ResilienceOutcome:
    """Run one survival trial of the configured system."""
    if config.epochs < 1 or config.reads_per_epoch < 1:
        raise AnalysisError("epochs and reads_per_epoch must be >= 1")
    rng = random.Random(config.seed)
    table = FrequencyTable.from_image(image)
    context = RecoveryContext.for_instructions(table)

    if config.use_heuristic:
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(config.seed + 1))
        )
        policy = HeuristicPolicy(pipeline, lambda address: context)
    else:
        policy = CrashPolicy()
    memory = EccMemory(code, policy)
    memory.load_image(image.words, image.base_address)
    injector = FaultInjector(memory, rng=rng)
    scrubber = Scrubber(memory)

    addresses = [
        image.base_address + 4 * index for index in range(len(image))
    ]
    correct = 0
    wrong = 0
    scrub_passes = 0
    crashed = False
    survived = 0
    for epoch in range(config.epochs):
        injector.inject_bsc(config.flip_probability)
        try:
            for _ in range(config.reads_per_epoch):
                address = rng.choice(addresses)
                result = memory.read(address)
                if result.status is DecodeStatus.DUE and result.recovery:
                    original = image.word_at_address(address)
                    if result.word == original:
                        correct += 1
                    else:
                        wrong += 1
        except (UncorrectableError, RecoveryError):
            # RecoveryError: a heavily-corrupted word had no candidate
            # codewords at all — even SWD-ECC must give up (crash).
            crashed = True
            break
        survived = epoch + 1
        if config.scrub_interval and (epoch + 1) % config.scrub_interval == 0:
            scrubber.scrub()
            scrub_passes += 1
    stats = memory.stats
    return ResilienceOutcome(
        survived_epochs=survived,
        crashed=crashed,
        corrected_errors=stats.corrected_errors,
        dues=stats.detected_uncorrectable,
        heuristic_recoveries=stats.heuristic_recoveries,
        correct_recoveries=correct,
        silent_corruptions=wrong,
        scrub_passes=scrub_passes,
    )


def _resilience_trial_worker(payload) -> ResilienceOutcome:
    """Run one fully-seeded trial (parallel-map worker)."""
    code, image, config = payload
    return run_resilience_trial(code, image, config)


def survival_study(
    code: LinearBlockCode,
    image: ProgramImage,
    trials: int = 10,
    base_config: ResilienceConfig | None = None,
    jobs: int = 1,
    progress: SweepProgress | None = None,
) -> dict[str, dict[str, float]]:
    """Compare four system configurations over repeated trials.

    Returns ``{configuration: {metric: mean value}}`` for the four
    combinations of {crash, SWD-ECC} x {no scrub, scrub}.

    With ``jobs > 1`` the trials fan out over worker processes; every
    trial is fully seeded by its config, so the study is deterministic
    regardless of *jobs*.  Trial completions advance the shared
    ``sweep.progress.*`` gauges (one unit per trial) as they land, so a
    ``--serve`` scraper can watch the study move.
    """
    if trials < 1:
        raise AnalysisError("trials must be >= 1")
    base = base_config or ResilienceConfig()
    configurations = {
        "crash, no scrub": (False, 0),
        "crash + scrubbing": (False, 5),
        "SWD-ECC, no scrub": (True, 0),
        "SWD-ECC + scrubbing": (True, 5),
    }
    payloads = [
        (
            code,
            image,
            ResilienceConfig(
                epochs=base.epochs,
                reads_per_epoch=base.reads_per_epoch,
                flip_probability=base.flip_probability,
                scrub_interval=scrub_interval,
                use_heuristic=use_heuristic,
                seed=base.seed + trial,
            ),
        )
        for use_heuristic, scrub_interval in configurations.values()
        for trial in range(trials)
    ]
    owns_progress = progress is None
    if progress is None:
        progress = SweepProgress(unit="trials")
    progress.add_total(len(payloads))

    def _trial_done(index, outcome, wall_seconds):
        progress.on_chunk(1, wall_seconds)

    outcomes = parallel_map(
        _resilience_trial_worker, payloads, jobs, on_result=_trial_done
    )
    if owns_progress:
        progress.finish()
    study: dict[str, dict[str, float]] = {}
    for index, label in enumerate(configurations):
        block = outcomes[index * trials : (index + 1) * trials]
        study[label] = {
            "mean_survived_epochs":
                sum(o.survived_epochs for o in block) / trials,
            "completion_rate":
                sum(float(not o.crashed) for o in block) / trials,
            "mean_correct_recoveries":
                sum(o.correct_recoveries for o in block) / trials,
            "mean_silent_corruptions":
                sum(o.silent_corruptions for o in block) / trials,
        }
    return study
