"""Metrics over sweep outcomes: regions, histograms, aggregates.

Home of the quantities the paper's figures report: per-pattern success
rates (Figs. 6 and 8), the decode-field vs low-order-bit split that
explains the 99%-vs-15% contrast, and the arithmetic-mean headline
(0.3403 in the paper).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.isa.fields import FIELDS

__all__ = [
    "PatternOutcome",
    "BitRegion",
    "classify_positions",
    "region_means",
    "rate_histogram",
    "mean_series",
    "arithmetic_mean",
]


@dataclass(frozen=True)
class PatternOutcome:
    """Sweep result for one 2-bit error pattern.

    Attributes
    ----------
    index:
        Pattern number in the paper's order (0..740 for n = 39).
    positions:
        The two MSB-first codeword bit positions in error.
    success_rate:
        Mean recovery probability over the instruction window.
    mean_candidates:
        Mean number of candidate codewords (Fig. 5a; message
        independent for a linear code).
    mean_valid:
        Mean number of legality-surviving messages (Fig. 5b).
    """

    index: int
    positions: tuple[int, ...]
    success_rate: float
    mean_candidates: float
    mean_valid: float


class BitRegion(enum.Enum):
    """Where a 2-bit error pattern lands in the protected word."""

    DECODE_FIELDS = "decode-fields"
    """Both errors in opcode/funct/fmt bits: legality filtering is at
    its strongest (up to 99% recovery in the paper)."""

    OPERAND_FIELDS = "operand-fields"
    """Both errors in register/immediate/target bits, which may legally
    take any value: the hard ~15% region of Fig. 8."""

    PARITY_BITS = "parity-bits"
    """At least one error in the ECC check bits."""

    MIXED = "mixed"
    """One error in a decode field, one in an operand field."""


# MSB-first message positions of the decoding fields for a 32-bit
# instruction placed in the top bits of a systematic codeword.
_DECODE_POSITIONS = frozenset(
    FIELDS["opcode"].msb_first_positions()
    + FIELDS["funct"].msb_first_positions()
    + FIELDS["fmt"].msb_first_positions()
)


def classify_positions(
    positions: Sequence[int], message_bits: int = 32
) -> BitRegion:
    """Classify an error pattern's positions into a :class:`BitRegion`."""
    if any(position >= message_bits for position in positions):
        return BitRegion.PARITY_BITS
    in_decode = [position in _DECODE_POSITIONS for position in positions]
    if all(in_decode):
        return BitRegion.DECODE_FIELDS
    if not any(in_decode):
        return BitRegion.OPERAND_FIELDS
    return BitRegion.MIXED


def region_means(
    outcomes: Sequence[PatternOutcome], message_bits: int = 32
) -> dict[BitRegion, float]:
    """Mean success rate per bit region (empty regions omitted)."""
    totals: dict[BitRegion, list[float]] = {}
    for outcome in outcomes:
        region = classify_positions(outcome.positions, message_bits)
        totals.setdefault(region, []).append(outcome.success_rate)
    return {
        region: sum(rates) / len(rates) for region, rates in totals.items()
    }


def rate_histogram(
    rates: Sequence[float], num_bins: int = 20
) -> list[tuple[float, float, float]]:
    """Bin success rates into (low, high, fraction) triples (Fig. 6).

    Bins partition [0, 1]; a rate of exactly 1.0 lands in the last bin.
    Fractions sum to 1.0 over a non-empty input.
    """
    if num_bins < 1:
        raise AnalysisError(f"num_bins must be >= 1, got {num_bins}")
    if not rates:
        raise AnalysisError("cannot histogram an empty rate sequence")
    counts = [0] * num_bins
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise AnalysisError(f"rate {rate} outside [0, 1]")
        bin_index = min(int(rate * num_bins), num_bins - 1)
        counts[bin_index] += 1
    total = len(rates)
    width = 1.0 / num_bins
    return [
        (i * width, (i + 1) * width, count / total)
        for i, count in enumerate(counts)
    ]


def mean_series(series: Sequence[Sequence[float]]) -> list[float]:
    """Element-wise mean of equal-length series (cross-benchmark Fig. 8)."""
    if not series:
        raise AnalysisError("no series to average")
    length = len(series[0])
    for s in series:
        if len(s) != length:
            raise AnalysisError("series lengths differ")
    return [
        sum(s[i] for s in series) / len(series) for i in range(length)
    ]


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain arithmetic mean (the paper's headline aggregation)."""
    if not values:
        raise AnalysisError("mean of empty sequence")
    return sum(values) / len(values)
