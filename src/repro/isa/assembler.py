"""A two-pass MIPS-I assembler for text assembly sources.

Supports the instruction syntax produced by
:mod:`repro.isa.disassembler`, labels, ``.word`` literals, comments
(``#``), and the common pseudo-instructions gcc emits (``nop``,
``move``, ``li``, ``la``, ``b``, ``beqz``, ``bnez``, ``neg``, ``not``).
It exists so the mini compiler and the examples can build *real*
program images — with genuine branch offsets and register allocation —
for the recovery experiments and the CPU simulator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoder import encode
from repro.isa.opcodes import (
    INSTRUCTION_SPECS,
    OperandStyle,
    spec_for_mnemonic,
)
from repro.isa.registers import register_number

__all__ = ["assemble", "AssembledProgram"]

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\(([^)]+)\)$")


@dataclass
class AssembledProgram:
    """The output of :func:`assemble`.

    Attributes
    ----------
    words:
        Encoded 32-bit instruction words in address order.
    labels:
        Label name -> absolute byte address.
    base_address:
        Address of the first word.
    """

    words: list[int]
    labels: dict[str, int]
    base_address: int

    def address_of(self, label: str) -> int:
        """Return the byte address of *label*."""
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblerError(f"unknown label {label!r}") from None


@dataclass
class _Item:
    """One pass-1 item: a literal word or an unencoded instruction."""

    line_number: int
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    literal: int | None = None


def _parse_number(text: str, line_number: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_number}: expected a number, got {text!r}"
        ) from None


def _parse_register(text: str, line_number: int) -> int:
    try:
        return register_number(text)
    except ValueError as exc:
        raise AssemblerError(f"line {line_number}: {exc}") from None


def _parse_fp_register(text: str, line_number: int) -> int:
    if text.startswith("$f"):
        try:
            value = int(text[2:])
        except ValueError:
            value = -1
        if 0 <= value < 32:
            return value
    raise AssemblerError(f"line {line_number}: bad FP register {text!r}")


def _split_operands(text: str) -> list[str]:
    return [part.strip() for part in text.split(",")] if text else []


def _expand_pseudo(
    mnemonic: str, operands: list[str], line_number: int
) -> list[_Item]:
    """Expand a pseudo-instruction into real instructions (pass 1)."""

    def item(mnemonic: str, operands: list[str]) -> _Item:
        return _Item(line_number=line_number, mnemonic=mnemonic, operands=operands)

    if mnemonic == "nop":
        return [item("sll", ["$zero", "$zero", "0"])]
    if mnemonic == "move":
        if len(operands) != 2:
            raise AssemblerError(f"line {line_number}: move needs 2 operands")
        return [item("addu", [operands[0], operands[1], "$zero"])]
    if mnemonic in ("li", "la"):
        if len(operands) != 2:
            raise AssemblerError(f"line {line_number}: {mnemonic} needs 2 operands")
        try:
            value = int(operands[1], 0)
        except ValueError:
            # A label operand: its address is unknown until pass 2, so
            # always emit the full lui/ori pair with %hi/%lo relocations.
            return [
                item("lui", [operands[0], f"%hi({operands[1]})"]),
                item("ori", [operands[0], operands[0], f"%lo({operands[1]})"]),
            ]
        if -0x8000 <= value <= 0x7FFF:
            return [item("addiu", [operands[0], "$zero", str(value)])]
        if 0 <= value <= 0xFFFF:
            return [item("ori", [operands[0], "$zero", str(value)])]
        if not -0x80000000 <= value <= 0xFFFFFFFF:
            raise AssemblerError(f"line {line_number}: {value} exceeds 32 bits")
        value &= 0xFFFFFFFF
        high, low = value >> 16, value & 0xFFFF
        first = item("lui", [operands[0], str(high)])
        if low == 0:
            return [first]
        return [first, item("ori", [operands[0], operands[0], str(low)])]
    if mnemonic == "b":
        if len(operands) != 1:
            raise AssemblerError(f"line {line_number}: b needs 1 operand")
        return [item("beq", ["$zero", "$zero", operands[0]])]
    if mnemonic == "beqz":
        return [item("beq", [operands[0], "$zero", operands[1]])]
    if mnemonic == "bnez":
        return [item("bne", [operands[0], "$zero", operands[1]])]
    if mnemonic == "neg":
        return [item("sub", [operands[0], "$zero", operands[1]])]
    if mnemonic == "not":
        return [item("nor", [operands[0], operands[1], "$zero"])]
    raise AssemblerError(f"line {line_number}: unknown mnemonic {mnemonic!r}")


def _resolve_branch_target(
    text: str,
    labels: dict[str, int],
    pc: int,
    line_number: int,
) -> int:
    """Return the signed word offset for a branch operand."""
    if text in labels:
        byte_offset = labels[text] - (pc + 4)
        if byte_offset % 4:
            raise AssemblerError(
                f"line {line_number}: label {text!r} is not word aligned"
            )
        offset = byte_offset >> 2
    else:
        offset = _parse_number(text, line_number)
    if not -0x8000 <= offset <= 0x7FFF:
        raise AssemblerError(
            f"line {line_number}: branch offset {offset} out of 16-bit range"
        )
    return offset


def _encode_item(
    entry: _Item, labels: dict[str, int], pc: int
) -> int:
    line_number = entry.line_number
    mnemonic = entry.mnemonic
    operands = entry.operands
    spec = spec_for_mnemonic(mnemonic)
    style = spec.style

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"line {line_number}: {mnemonic} expects {count} operands, "
                f"got {len(operands)}"
            )

    reg = lambda text: _parse_register(text, line_number)
    fpr = lambda text: _parse_fp_register(text, line_number)

    def num(text: str) -> int:
        relocation = re.match(r"^%(hi|lo)\(([^)]+)\)$", text)
        if relocation is not None:
            label = relocation.group(2)
            if label not in labels:
                raise AssemblerError(
                    f"line {line_number}: unknown label {label!r} in {text}"
                )
            address = labels[label]
            return address >> 16 if relocation.group(1) == "hi" else address & 0xFFFF
        return _parse_number(text, line_number)

    if style is OperandStyle.THREE_REG:
        need(3)
        return encode(mnemonic, rd=reg(operands[0]), rs=reg(operands[1]),
                      rt=reg(operands[2]))
    if style is OperandStyle.SHIFT_IMMEDIATE:
        need(3)
        return encode(mnemonic, rd=reg(operands[0]), rt=reg(operands[1]),
                      shamt=num(operands[2]))
    if style is OperandStyle.SHIFT_VARIABLE:
        need(3)
        return encode(mnemonic, rd=reg(operands[0]), rt=reg(operands[1]),
                      rs=reg(operands[2]))
    if style is OperandStyle.JUMP_REGISTER:
        need(1)
        return encode(mnemonic, rs=reg(operands[0]))
    if style is OperandStyle.JUMP_LINK_REGISTER:
        if len(operands) == 1:
            return encode(mnemonic, rd=31, rs=reg(operands[0]))
        need(2)
        return encode(mnemonic, rd=reg(operands[0]), rs=reg(operands[1]))
    if style is OperandStyle.MOVE_FROM_HILO:
        need(1)
        return encode(mnemonic, rd=reg(operands[0]))
    if style is OperandStyle.MOVE_TO_HILO:
        need(1)
        return encode(mnemonic, rs=reg(operands[0]))
    if style in (OperandStyle.MULT_DIV, OperandStyle.TRAP_TWO_REG):
        need(2)
        return encode(mnemonic, rs=reg(operands[0]), rt=reg(operands[1]))
    if style is OperandStyle.NO_OPERANDS:
        need(0)
        return encode(mnemonic)
    if style in (OperandStyle.IMMEDIATE_ARITH, OperandStyle.IMMEDIATE_LOGIC):
        need(3)
        return encode(mnemonic, rt=reg(operands[0]), rs=reg(operands[1]),
                      imm=num(operands[2]))
    if style is OperandStyle.LOAD_UPPER:
        need(2)
        return encode(mnemonic, rt=reg(operands[0]), imm=num(operands[1]))
    if style in (OperandStyle.LOAD_STORE, OperandStyle.COP_LOAD_STORE,
                 OperandStyle.CACHE_OP):
        need(2)
        match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
        if match is None:
            raise AssemblerError(
                f"line {line_number}: bad memory operand {operands[1]!r}"
            )
        offset = int(match.group(1), 0) if match.group(1) else 0
        base = _parse_register(match.group(2), line_number)
        if style is OperandStyle.COP_LOAD_STORE:
            first = fpr(operands[0]) if operands[0].startswith("$f") else reg(operands[0])
        elif style is OperandStyle.CACHE_OP:
            first = num(operands[0])
        else:
            first = reg(operands[0])
        return encode(mnemonic, rt=first, rs=base, imm=offset)
    if style is OperandStyle.BRANCH_TWO_REG:
        need(3)
        offset = _resolve_branch_target(operands[2], labels, pc, line_number)
        return encode(mnemonic, rs=reg(operands[0]), rt=reg(operands[1]),
                      imm=offset)
    if style is OperandStyle.BRANCH_ONE_REG:
        need(2)
        offset = _resolve_branch_target(operands[1], labels, pc, line_number)
        return encode(mnemonic, rs=reg(operands[0]), imm=offset)
    if style is OperandStyle.TRAP_IMMEDIATE:
        need(2)
        return encode(mnemonic, rs=reg(operands[0]), imm=num(operands[1]))
    if style is OperandStyle.JUMP_TARGET:
        need(1)
        if operands[0] in labels:
            address = labels[operands[0]]
        else:
            address = num(operands[0])
        if address % 4:
            raise AssemblerError(
                f"line {line_number}: jump target 0x{address:x} not aligned"
            )
        if (address & 0xF0000000) != ((pc + 4) & 0xF0000000):
            raise AssemblerError(
                f"line {line_number}: jump target 0x{address:x} outside the "
                "current 256 MiB region"
            )
        return encode(mnemonic, target=(address >> 2) & 0x3FFFFFF)
    if style is OperandStyle.FP_THREE_REG:
        need(3)
        return encode(mnemonic, fd=fpr(operands[0]), fs=fpr(operands[1]),
                      ft=fpr(operands[2]))
    if style is OperandStyle.FP_TWO_REG:
        need(2)
        return encode(mnemonic, fd=fpr(operands[0]), fs=fpr(operands[1]))
    if style is OperandStyle.FP_COMPARE:
        need(2)
        return encode(mnemonic, fs=fpr(operands[0]), ft=fpr(operands[1]))
    if style is OperandStyle.COP_TRANSFER:
        need(2)
        return encode(mnemonic, rt=reg(operands[0]), rd=reg(operands[1]))
    if style is OperandStyle.COP_OPERATION:
        need(0)
        return encode(mnemonic)
    raise AssemblerError(
        f"line {line_number}: no encoder for style {style}"
    )


def assemble(source: str, base_address: int = 0) -> AssembledProgram:
    """Assemble MIPS-I source text into an :class:`AssembledProgram`.

    Two passes: the first expands pseudo-instructions and assigns
    addresses to labels, the second encodes with all labels resolved.
    """
    items: list[_Item] = []
    labels: dict[str, int] = {}
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        # A line may carry "label: instruction".
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*", line)
            if match is None:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(
                    f"line {line_number}: duplicate label {label!r}"
                )
            labels[label] = base_address + 4 * len(items)
            line = line[match.end():]
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text)
        if mnemonic == ".word":
            for operand in operands:
                value = _parse_number(operand, line_number)
                items.append(_Item(line_number=line_number, literal=value & 0xFFFFFFFF))
            continue
        if mnemonic in INSTRUCTION_SPECS:
            items.append(
                _Item(line_number=line_number, mnemonic=mnemonic, operands=operands)
            )
        else:
            items.extend(_expand_pseudo(mnemonic, operands, line_number))

    words = []
    for index, entry in enumerate(items):
        if entry.literal is not None:
            words.append(entry.literal)
            continue
        pc = base_address + 4 * index
        words.append(_encode_item(entry, labels, pc))
    return AssembledProgram(words=words, labels=labels, base_address=base_address)
