"""Rendering decoded instructions back to assembly text.

Mirrors what the paper obtained from ``readelf`` disassembly: one text
line per instruction, from which the per-mnemonic statistics were
computed.  :func:`disassemble` is the bulk entry point used by
:mod:`repro.program.stats`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.isa.decoder import try_decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OperandStyle
from repro.isa.registers import register_name

__all__ = ["render_instruction", "disassemble", "disassemble_words"]


def _fp(register: int) -> str:
    return f"$f{register}"


def render_instruction(instruction: Instruction, pc: int | None = None) -> str:
    """Render one instruction as assembly text.

    When *pc* is given, branch and jump destinations are rendered as
    absolute addresses; otherwise branches show their raw word offsets.
    """
    mnemonic = instruction.mnemonic
    style = instruction.style
    rs = register_name(instruction.rs)
    rt = register_name(instruction.rt)
    rd = register_name(instruction.rd)

    if instruction.is_nop:
        return "nop"
    if style is OperandStyle.THREE_REG:
        return f"{mnemonic} {rd}, {rs}, {rt}"
    if style is OperandStyle.SHIFT_IMMEDIATE:
        return f"{mnemonic} {rd}, {rt}, {instruction.shamt}"
    if style is OperandStyle.SHIFT_VARIABLE:
        return f"{mnemonic} {rd}, {rt}, {rs}"
    if style is OperandStyle.JUMP_REGISTER:
        return f"{mnemonic} {rs}"
    if style is OperandStyle.JUMP_LINK_REGISTER:
        return f"{mnemonic} {rd}, {rs}"
    if style is OperandStyle.MOVE_FROM_HILO:
        return f"{mnemonic} {rd}"
    if style is OperandStyle.MOVE_TO_HILO:
        return f"{mnemonic} {rs}"
    if style in (OperandStyle.MULT_DIV, OperandStyle.TRAP_TWO_REG):
        return f"{mnemonic} {rs}, {rt}"
    if style is OperandStyle.NO_OPERANDS:
        return mnemonic
    if style is OperandStyle.IMMEDIATE_ARITH:
        return f"{mnemonic} {rt}, {rs}, {instruction.signed_immediate}"
    if style is OperandStyle.IMMEDIATE_LOGIC:
        return f"{mnemonic} {rt}, {rs}, 0x{instruction.immediate:x}"
    if style is OperandStyle.LOAD_UPPER:
        return f"{mnemonic} {rt}, 0x{instruction.immediate:x}"
    if style is OperandStyle.LOAD_STORE:
        return f"{mnemonic} {rt}, {instruction.signed_immediate}({rs})"
    if style is OperandStyle.COP_LOAD_STORE:
        return f"{mnemonic} {_fp(instruction.rt)}, {instruction.signed_immediate}({rs})"
    if style is OperandStyle.CACHE_OP:
        return f"{mnemonic} 0x{instruction.rt:x}, {instruction.signed_immediate}({rs})"
    if style is OperandStyle.BRANCH_TWO_REG:
        destination = _branch_destination(instruction, pc)
        return f"{mnemonic} {rs}, {rt}, {destination}"
    if style is OperandStyle.BRANCH_ONE_REG:
        destination = _branch_destination(instruction, pc)
        return f"{mnemonic} {rs}, {destination}"
    if style is OperandStyle.TRAP_IMMEDIATE:
        return f"{mnemonic} {rs}, {instruction.signed_immediate}"
    if style is OperandStyle.JUMP_TARGET:
        if pc is not None:
            address = ((pc + 4) & 0xF0000000) | (instruction.target << 2)
            return f"{mnemonic} 0x{address:x}"
        return f"{mnemonic} 0x{instruction.target:x}"
    if style is OperandStyle.FP_THREE_REG:
        return (
            f"{mnemonic} {_fp(instruction.shamt)}, {_fp(instruction.rd)}, "
            f"{_fp(instruction.rt)}"
        )
    if style is OperandStyle.FP_TWO_REG:
        return f"{mnemonic} {_fp(instruction.shamt)}, {_fp(instruction.rd)}"
    if style is OperandStyle.FP_COMPARE:
        return f"{mnemonic} {_fp(instruction.rd)}, {_fp(instruction.rt)}"
    if style is OperandStyle.COP_TRANSFER:
        return f"{mnemonic} {rt}, {rd}"
    if style is OperandStyle.COP_OPERATION:
        return mnemonic
    raise AssertionError(f"unhandled operand style {style}")


def _branch_destination(instruction: Instruction, pc: int | None) -> str:
    offset = instruction.signed_immediate
    if pc is None:
        return str(offset)
    return f"0x{(pc + 4 + (offset << 2)) & 0xFFFFFFFF:x}"


def disassemble_words(
    words: Iterable[int], base_address: int = 0
) -> Iterator[tuple[int, int, str]]:
    """Yield (address, word, text) for each word; illegal words render
    as ``.word 0x...`` the way binutils does."""
    for index, word in enumerate(words):
        address = base_address + 4 * index
        instruction = try_decode(word)
        if instruction is None:
            yield address, word, f".word 0x{word:08x}"
        else:
            yield address, word, render_instruction(instruction, pc=address)


def disassemble(words: Iterable[int], base_address: int = 0) -> str:
    """Return a full text disassembly, one line per word."""
    lines = [
        f"{address:08x}:  {word:08x}  {text}"
        for address, word, text in disassemble_words(words, base_address)
    ]
    return "\n".join(lines)
