"""Programmatic instruction encoding: mnemonic + operands -> 32-bit word.

The inverse of :mod:`repro.isa.decoder`; every word this module emits
decodes back to the same mnemonic and operands (a property test in the
suite).  The encoder is used by the assembler, the mini compiler, and
the synthetic workload generator.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.isa.fields import FIELDS
from repro.isa.opcodes import (
    InstructionSpec,
    OperandStyle,
    spec_for_mnemonic,
)

__all__ = ["encode", "encode_fields"]


def _check_register(value: int, role: str) -> int:
    if not 0 <= value < 32:
        raise AssemblerError(f"{role} register {value} out of range 0..31")
    return value


def _check_unsigned(value: int, width: int, role: str) -> int:
    if not 0 <= value < (1 << width):
        raise AssemblerError(
            f"{role} value {value} does not fit in {width} unsigned bits"
        )
    return value


def _to_signed_16(value: int, role: str) -> int:
    """Accept -32768..65535 and return the 16-bit two's-complement image."""
    if -0x8000 <= value < 0:
        return value + 0x10000
    if 0 <= value <= 0xFFFF:
        return value
    raise AssemblerError(f"{role} value {value} does not fit in 16 bits")


def encode_fields(
    spec: InstructionSpec,
    rs: int = 0,
    rt: int = 0,
    rd: int = 0,
    shamt: int = 0,
    imm: int = 0,
    target: int = 0,
) -> int:
    """Assemble a word from a spec and raw field values.

    Fixed discriminator fields from the spec (funct, fmt, REGIMM rt,
    coprocessor rs) override the corresponding arguments.
    """
    word = spec.opcode << 26
    if spec.style is OperandStyle.JUMP_TARGET:
        word |= _check_unsigned(target, 26, "jump target")
        return word
    word = FIELDS["rs"].insert(word, _check_register(rs, "rs"))
    word = FIELDS["rt"].insert(word, _check_register(rt, "rt"))
    word = FIELDS["rd"].insert(word, _check_register(rd, "rd"))
    word = FIELDS["shamt"].insert(word, _check_unsigned(shamt, 5, "shamt"))
    if spec.format.value == "R" or spec.funct is not None:
        word = FIELDS["funct"].insert(word, spec.funct or 0)
    else:
        word = FIELDS["immediate"].insert(
            word, _check_unsigned(imm, 16, "immediate")
        )
    if spec.fmt is not None:
        word = FIELDS["fmt"].insert(word, spec.fmt)
    if spec.cop_rs is not None:
        word = FIELDS["rs"].insert(word, spec.cop_rs)
    if spec.regimm_rt is not None:
        word = FIELDS["rt"].insert(word, spec.regimm_rt)
    return word


def encode(
    mnemonic: str,
    rs: int = 0,
    rt: int = 0,
    rd: int = 0,
    shamt: int = 0,
    imm: int = 0,
    target: int = 0,
    fd: int = 0,
    fs: int = 0,
    ft: int = 0,
) -> int:
    """Encode an instruction from its mnemonic and operand values.

    Operands follow the architectural roles for the mnemonic's operand
    style (see :class:`~repro.isa.opcodes.OperandStyle`): e.g.
    ``encode("addu", rd=8, rs=9, rt=10)``,
    ``encode("lw", rt=8, rs=29, imm=4)``,
    ``encode("add.s", fd=0, fs=2, ft=4)``.
    Signed immediates (arithmetic, branches, load/store offsets) accept
    negative values down to -32768.
    """
    spec = spec_for_mnemonic(mnemonic)
    style = spec.style

    if style in (
        OperandStyle.IMMEDIATE_ARITH,
        OperandStyle.LOAD_STORE,
        OperandStyle.COP_LOAD_STORE,
        OperandStyle.BRANCH_TWO_REG,
        OperandStyle.BRANCH_ONE_REG,
        OperandStyle.TRAP_IMMEDIATE,
        OperandStyle.CACHE_OP,
    ):
        imm = _to_signed_16(imm, "immediate")
    elif style in (OperandStyle.IMMEDIATE_LOGIC, OperandStyle.LOAD_UPPER):
        imm = _check_unsigned(imm, 16, "immediate")

    if style in (
        OperandStyle.FP_THREE_REG,
        OperandStyle.FP_TWO_REG,
        OperandStyle.FP_COMPARE,
    ):
        # FP register roles map onto the integer field slots:
        # ft -> rt, fs -> rd, fd -> shamt.
        rt = _check_register(ft, "ft")
        rd = _check_register(fs, "fs")
        shamt = _check_register(fd, "fd")

    # Only the roles the operand style actually uses are encoded; the
    # rest are forced to zero so every encoding is canonical and the
    # render -> assemble roundtrip is exact.
    used = _USED_ROLES[style]
    return encode_fields(
        spec,
        rs=rs if "rs" in used else 0,
        rt=rt if "rt" in used else 0,
        rd=rd if "rd" in used else 0,
        shamt=shamt if "shamt" in used else 0,
        imm=imm if "imm" in used else 0,
        target=target,
    )


_USED_ROLES: dict[OperandStyle, frozenset[str]] = {
    OperandStyle.THREE_REG: frozenset({"rd", "rs", "rt"}),
    OperandStyle.SHIFT_IMMEDIATE: frozenset({"rd", "rt", "shamt"}),
    OperandStyle.SHIFT_VARIABLE: frozenset({"rd", "rt", "rs"}),
    OperandStyle.JUMP_REGISTER: frozenset({"rs"}),
    OperandStyle.JUMP_LINK_REGISTER: frozenset({"rd", "rs"}),
    OperandStyle.MOVE_FROM_HILO: frozenset({"rd"}),
    OperandStyle.MOVE_TO_HILO: frozenset({"rs"}),
    OperandStyle.MULT_DIV: frozenset({"rs", "rt"}),
    OperandStyle.TRAP_TWO_REG: frozenset({"rs", "rt"}),
    OperandStyle.NO_OPERANDS: frozenset(),
    OperandStyle.IMMEDIATE_ARITH: frozenset({"rt", "rs", "imm"}),
    OperandStyle.IMMEDIATE_LOGIC: frozenset({"rt", "rs", "imm"}),
    OperandStyle.LOAD_UPPER: frozenset({"rt", "imm"}),
    OperandStyle.LOAD_STORE: frozenset({"rt", "rs", "imm"}),
    OperandStyle.BRANCH_TWO_REG: frozenset({"rs", "rt", "imm"}),
    OperandStyle.BRANCH_ONE_REG: frozenset({"rs", "imm"}),
    OperandStyle.TRAP_IMMEDIATE: frozenset({"rs", "imm"}),
    OperandStyle.JUMP_TARGET: frozenset({"target"}),
    OperandStyle.COP_LOAD_STORE: frozenset({"rt", "rs", "imm"}),
    OperandStyle.FP_THREE_REG: frozenset({"rt", "rd", "shamt"}),
    OperandStyle.FP_TWO_REG: frozenset({"rd", "shamt"}),
    OperandStyle.FP_COMPARE: frozenset({"rt", "rd"}),
    OperandStyle.COP_TRANSFER: frozenset({"rt", "rd"}),
    OperandStyle.COP_OPERATION: frozenset(),
    OperandStyle.CACHE_OP: frozenset({"rt", "rs", "imm"}),
}
