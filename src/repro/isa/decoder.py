"""The MIPS-I instruction decoder: the legality oracle of Sec. IV-A.

The paper isolated gem5's MIPS decoder into a predicate that reports
whether a 32-bit value is a legal instruction and, if so, its operation
(mnemonic).  This module is that predicate, driven by the tables in
:mod:`repro.isa.opcodes`:

- :func:`try_decode` — return an :class:`Instruction` or ``None``;
- :func:`decode` — same but raising :class:`IllegalInstructionError`;
- :func:`is_legal` — the boolean filter used by SWD-ECC;
- :func:`mnemonic_of` — the operation label used for frequency ranking.

Decoding walks the major opcode first, then the sub-field the opcode
delegates to (funct for SPECIAL, rt for REGIMM, fmt+funct for COP1, rs
for coprocessor transfers).  Register and immediate fields never affect
legality — the property the paper highlights to explain why DUEs in
low-order bits are the hardest to recover.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import IllegalInstructionError
from repro.isa import fields
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP0_CO_FUNCTS,
    COP0_OPCODE,
    COP0_TRANSFER_RS,
    COP1_FMTS,
    COP1_FUNCTS_BY_FMT,
    COP1_FMT_LETTERS,
    COP1_OPCODE,
    COP2_OPCODE,
    COP3_OPCODE,
    COPZ_BRANCH_RS,
    COPZ_BRANCH_RT,
    COPZ_TRANSFER_RS,
    INSTRUCTION_SPECS,
    InstructionSpec,
    LEGAL_OPCODES,
    PRIMARY_OPCODES,
    REGIMM_OPCODE,
    REGIMM_SELECTORS,
    SPECIAL_FUNCTS,
    SPECIAL_OPCODE,
)

__all__ = [
    "decode",
    "try_decode",
    "is_legal",
    "mnemonic_of",
    "SELECTOR_FIELD_MASKS",
    "ALL_SELECTOR_FIELDS",
    "selector_key",
    "spec_for_selector_key",
]

_OPCODE_FIELD = 0xFC00_0000
_RS_FIELD = 0x03E0_0000
_RT_FIELD = 0x001F_0000
_FUNCT_FIELD = 0x0000_003F


def _selector_fields(opcode: int) -> int:
    """The bit fields that decide legality/mnemonic under *opcode*.

    Decoding walks opcode, then at most one delegated sub-field (see
    the module docstring): funct for SPECIAL, rt for REGIMM, rs+funct
    for COP0/COP1, rs+rt for COP2/COP3.  Register and immediate fields
    outside these masks never affect the decoded spec.
    """
    if opcode == SPECIAL_OPCODE:
        return _OPCODE_FIELD | _FUNCT_FIELD
    if opcode == REGIMM_OPCODE:
        return _OPCODE_FIELD | _RT_FIELD
    if opcode in (COP0_OPCODE, COP1_OPCODE):
        return _OPCODE_FIELD | _RS_FIELD | _FUNCT_FIELD
    if opcode in (COP2_OPCODE, COP3_OPCODE):
        return _OPCODE_FIELD | _RS_FIELD | _RT_FIELD
    return _OPCODE_FIELD


#: Per-opcode mask of the fields that determine the decoded spec:
#: ``_spec_for_word(w) == _spec_for_word(w & SELECTOR_FIELD_MASKS[op])``.
SELECTOR_FIELD_MASKS: tuple[int, ...] = tuple(
    _selector_fields(opcode) for opcode in range(64)
)

#: Union of every selector mask (0xFFFF003F).  Two words that agree on
#: these bits decode to the same spec, which is what lets the
#: precompiled recovery fast path key filter verdicts and ranker scores
#: by ``word & ALL_SELECTOR_FIELDS`` instead of the full word.
ALL_SELECTOR_FIELDS: int = 0
for _mask in SELECTOR_FIELD_MASKS:
    ALL_SELECTOR_FIELDS |= _mask
del _mask


def selector_key(word: int) -> int:
    """The subset of *word*'s bits that determine its decoded spec."""
    return word & SELECTOR_FIELD_MASKS[(word >> 26) & 0x3F]


@lru_cache(maxsize=1 << 13)
def spec_for_selector_key(key: int) -> InstructionSpec | None:
    """Decode a :func:`selector_key`, or ``None`` when illegal.

    ``spec_for_selector_key(selector_key(w))`` equals
    ``_spec_for_word(w)`` for every 32-bit *w*: masking zeroes only
    fields that never reach the sub-decoders.  The selector keyspace is
    structurally bounded (about 6.3k distinct keys over all opcodes),
    so the cache converges to a complete decode table.
    """
    return _spec_for_word(key)


def _spec(mnemonic: str) -> InstructionSpec:
    return INSTRUCTION_SPECS[mnemonic]


def _decode_special(word: int) -> InstructionSpec | None:
    entry = SPECIAL_FUNCTS.get(fields.funct_of(word))
    if entry is None:
        return None
    return _spec(entry[0])


def _decode_regimm(word: int) -> InstructionSpec | None:
    entry = REGIMM_SELECTORS.get(fields.rt_of(word))
    if entry is None:
        return None
    return _spec(entry[0])


def _decode_cop1(word: int) -> InstructionSpec | None:
    fmt = fields.rs_of(word)
    if fmt not in COP1_FMTS:
        return None
    entry = COP1_FUNCTS_BY_FMT[fmt].get(fields.funct_of(word))
    if entry is None:
        return None
    return _spec(f"{entry[0]}.{COP1_FMT_LETTERS[fmt]}")


def _decode_cop0(word: int) -> InstructionSpec | None:
    rs = fields.rs_of(word)
    transfer = COP0_TRANSFER_RS.get(rs)
    if transfer is not None:
        return _spec(transfer)
    if rs & 0x10:
        operation = COP0_CO_FUNCTS.get(fields.funct_of(word))
        if operation is not None:
            return _spec(operation)
    return None


def _decode_copz(word: int, z: int) -> InstructionSpec | None:
    rs = fields.rs_of(word)
    transfer = COPZ_TRANSFER_RS.get(rs)
    if transfer is not None:
        return _spec(transfer.format(z=z))
    if rs == COPZ_BRANCH_RS:
        branch = COPZ_BRANCH_RT.get(fields.rt_of(word))
        if branch is not None:
            return _spec(branch.format(z=z))
        return None
    if rs & 0x10:
        return _spec(f"cop{z}")
    return None


@lru_cache(maxsize=1 << 16)
def _spec_for_word(word: int) -> InstructionSpec | None:
    opcode = fields.opcode_of(word)
    if opcode not in LEGAL_OPCODES:
        return None
    if opcode == SPECIAL_OPCODE:
        return _decode_special(word)
    if opcode == REGIMM_OPCODE:
        return _decode_regimm(word)
    if opcode == COP0_OPCODE:
        return _decode_cop0(word)
    if opcode == COP1_OPCODE:
        return _decode_cop1(word)
    if opcode == COP2_OPCODE:
        return _decode_copz(word, 2)
    if opcode == COP3_OPCODE:
        return _decode_copz(word, 3)
    mnemonic, _, _ = PRIMARY_OPCODES[opcode]
    return _spec(mnemonic)


def try_decode(word: int) -> Instruction | None:
    """Decode *word*, returning ``None`` when it is not a legal instruction."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise ValueError(f"instruction word 0x{word:x} is not 32 bits")
    spec = _spec_for_word(word)
    if spec is None:
        return None
    return Instruction(word=word, spec=spec)


def decode(word: int) -> Instruction:
    """Decode *word* or raise :class:`IllegalInstructionError`."""
    instruction = try_decode(word)
    if instruction is None:
        raise IllegalInstructionError(word, _illegality_reason(word))
    return instruction


def is_legal(word: int) -> bool:
    """True when *word* decodes to a legal MIPS-I instruction.

    This is the candidate filter of the paper's filtering-only and
    filtering-and-ranking recovery strategies.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise ValueError(f"instruction word 0x{word:x} is not 32 bits")
    return _spec_for_word(word) is not None


def mnemonic_of(word: int) -> str:
    """Return the mnemonic of a legal word (raises if illegal)."""
    return decode(word).mnemonic


def _illegality_reason(word: int) -> str:
    opcode = fields.opcode_of(word)
    if opcode not in LEGAL_OPCODES:
        return f"reserved opcode 0x{opcode:02x}"
    if opcode == SPECIAL_OPCODE:
        return f"reserved SPECIAL funct 0x{fields.funct_of(word):02x}"
    if opcode == REGIMM_OPCODE:
        return f"reserved REGIMM selector 0x{fields.rt_of(word):02x}"
    if opcode == COP1_OPCODE:
        fmt = fields.rs_of(word)
        if fmt not in COP1_FMTS:
            return f"reserved COP1 fmt 0x{fmt:02x}"
        return f"reserved COP1 funct 0x{fields.funct_of(word):02x}"
    return f"reserved coprocessor encoding under opcode 0x{opcode:02x}"
