"""MIPS register file names and the o32 ABI conventions.

Register numbers are architectural (0..31); names follow the o32 ABI
used by the gcc MIPS cross-compilers the paper compiled SPEC with.  The
ABI usage classes also drive the synthetic workload generator, which
skews register choices toward the registers compilers actually allocate
($sp, $a0..$a3, $v0/$v1, $t*/$s* pools) rather than uniform noise.
"""

from __future__ import annotations

__all__ = [
    "REGISTER_NAMES",
    "REGISTER_NUMBERS",
    "NUM_REGISTERS",
    "register_name",
    "register_number",
    "ABI_CLASSES",
    "ZERO",
    "AT",
    "V0",
    "V1",
    "A0",
    "A1",
    "A2",
    "A3",
    "T0",
    "S0",
    "GP",
    "SP",
    "FP",
    "RA",
]

NUM_REGISTERS = 32

REGISTER_NAMES: tuple[str, ...] = (
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
)

REGISTER_NUMBERS: dict[str, int] = {
    name: number for number, name in enumerate(REGISTER_NAMES)
}
# Numeric aliases ($0..$31) and bare fp/s8 alias.
REGISTER_NUMBERS.update({f"${i}": i for i in range(NUM_REGISTERS)})
REGISTER_NUMBERS["$s8"] = 30

# Usage classes for the workload synthesizer: ABI role -> registers.
ABI_CLASSES: dict[str, tuple[int, ...]] = {
    "zero": (0,),
    "assembler_temp": (1,),
    "return_value": (2, 3),
    "arguments": (4, 5, 6, 7),
    "temporaries": (8, 9, 10, 11, 12, 13, 14, 15, 24, 25),
    "saved": (16, 17, 18, 19, 20, 21, 22, 23),
    "kernel": (26, 27),
    "pointers": (28, 29, 30),
    "link": (31,),
}

# Frequently referenced registers, exported as constants.
ZERO, AT, V0, V1, A0, A1, A2, A3 = range(8)
T0 = 8
S0 = 16
GP, SP, FP, RA = 28, 29, 30, 31


def register_name(number: int) -> str:
    """Return the ABI name of register *number* (0..31)."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number {number} out of range")
    return REGISTER_NAMES[number]


def register_number(name: str) -> int:
    """Return the register number for an ABI or numeric name.

    Accepts ``$t0`` style ABI names, ``$8`` numeric aliases, and the
    same without the leading ``$``.
    """
    key = name if name.startswith("$") else f"${name}"
    try:
        return REGISTER_NUMBERS[key]
    except KeyError:
        raise ValueError(f"unknown register name {name!r}") from None
