"""MIPS instruction bit-field layouts and classification of bit ranges.

MIPS instructions are 32 bits, numbered 31 (MSB) down to 0 per the
architecture manuals.  Three base formats share the opcode field:

====== =====================================================
R-type ``opcode[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]``
I-type ``opcode[31:26] rs[25:21] rt[20:16] immediate[15:0]``
J-type ``opcode[31:26] target[25:0]``
====== =====================================================

The *decoding fields* — opcode, funct (R-type), fmt (COP1, aliased to
rs), and the REGIMM selector (aliased to rt) — determine instruction
legality; the paper's key observation (Fig. 8) is that DUEs landing in
those fields are the most recoverable because illegal encodings prune
the candidate list hardest.

This module also maps between the instruction's bit positions and the
codeword bit positions of a systematic ECC code, which the analysis
harness uses to label heatmap axes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bits import extract_field, insert_field

__all__ = [
    "InstructionFormat",
    "Field",
    "FIELDS",
    "opcode_of",
    "rs_of",
    "rt_of",
    "rd_of",
    "shamt_of",
    "funct_of",
    "immediate_of",
    "target_of",
    "signed_immediate",
    "with_field",
    "DECODING_FIELD_POSITIONS",
    "message_bit_positions",
]


class InstructionFormat(enum.Enum):
    """The base encoding format of a MIPS instruction."""

    R_TYPE = "R"
    I_TYPE = "I"
    J_TYPE = "J"


@dataclass(frozen=True)
class Field:
    """A named instruction bit field, bits ``high..low`` (LSB-numbered)."""

    name: str
    high: int
    low: int

    @property
    def width(self) -> int:
        """Width of the field in bits."""
        return self.high - self.low + 1

    def extract(self, word: int) -> int:
        """Read this field from a 32-bit instruction word."""
        return extract_field(word, self.high, self.low)

    def insert(self, word: int, value: int) -> int:
        """Return *word* with this field replaced by *value*."""
        return insert_field(word, self.high, self.low, value)

    def msb_first_positions(self) -> tuple[int, ...]:
        """The field's bit positions in MSB-first numbering (0 = bit 31)."""
        return tuple(31 - bit for bit in range(self.high, self.low - 1, -1))


FIELDS: dict[str, Field] = {
    "opcode": Field("opcode", 31, 26),
    "rs": Field("rs", 25, 21),
    "rt": Field("rt", 20, 16),
    "rd": Field("rd", 15, 11),
    "shamt": Field("shamt", 10, 6),
    "funct": Field("funct", 5, 0),
    "immediate": Field("immediate", 15, 0),
    "target": Field("target", 25, 0),
    # COP1 aliases: fmt occupies the rs field, ft the rt field, fs the
    # rd field, fd the shamt field.
    "fmt": Field("fmt", 25, 21),
    "ft": Field("ft", 20, 16),
    "fs": Field("fs", 15, 11),
    "fd": Field("fd", 10, 6),
}


def opcode_of(word: int) -> int:
    """The 6-bit major opcode (bits 31..26)."""
    return FIELDS["opcode"].extract(word)


def rs_of(word: int) -> int:
    """The 5-bit rs register field (bits 25..21)."""
    return FIELDS["rs"].extract(word)


def rt_of(word: int) -> int:
    """The 5-bit rt register field (bits 20..16)."""
    return FIELDS["rt"].extract(word)


def rd_of(word: int) -> int:
    """The 5-bit rd register field (bits 15..11)."""
    return FIELDS["rd"].extract(word)


def shamt_of(word: int) -> int:
    """The 5-bit shift-amount field (bits 10..6)."""
    return FIELDS["shamt"].extract(word)


def funct_of(word: int) -> int:
    """The 6-bit funct field (bits 5..0) of R-type instructions."""
    return FIELDS["funct"].extract(word)


def immediate_of(word: int) -> int:
    """The 16-bit immediate field (bits 15..0), unsigned."""
    return FIELDS["immediate"].extract(word)


def target_of(word: int) -> int:
    """The 26-bit jump target field (bits 25..0)."""
    return FIELDS["target"].extract(word)


def signed_immediate(word: int) -> int:
    """The 16-bit immediate interpreted as two's complement."""
    value = immediate_of(word)
    return value - 0x10000 if value & 0x8000 else value


def with_field(word: int, name: str, value: int) -> int:
    """Return *word* with the named field set to *value*."""
    return FIELDS[name].insert(word, value)


# MSB-first positions (0 = instruction bit 31) of the fields that steer
# instruction decoding; Fig. 8's high-recovery region.
DECODING_FIELD_POSITIONS: frozenset[int] = frozenset(
    FIELDS["opcode"].msb_first_positions()
    + FIELDS["funct"].msb_first_positions()
    + FIELDS["fmt"].msb_first_positions()
)


def message_bit_positions(field_name: str) -> tuple[int, ...]:
    """MSB-first message-bit positions covered by the named field.

    With the systematic codes in :mod:`repro.ecc`, message bit *i*
    (MSB-first) sits at codeword position *i*, so these positions are
    valid codeword positions as well.
    """
    return FIELDS[field_name].msb_first_positions()
