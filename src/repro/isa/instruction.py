"""The :class:`Instruction` value type produced by the decoder."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import fields
from repro.isa.fields import InstructionFormat
from repro.isa.opcodes import InstructionSpec, OperandStyle

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """One decoded 32-bit MIPS instruction.

    Wraps the raw word together with the matched
    :class:`~repro.isa.opcodes.InstructionSpec`; field accessors read
    straight from the word so they are always consistent with it.
    """

    word: int
    spec: InstructionSpec

    @property
    def mnemonic(self) -> str:
        """The instruction mnemonic, e.g. ``"lw"`` or ``"add.s"``.

        This is the unit of the paper's frequency statistics (Fig. 7)
        and of the filtering-and-ranking recovery strategy.
        """
        return self.spec.mnemonic

    @property
    def format(self) -> InstructionFormat:
        """The base encoding format (R / I / J)."""
        return self.spec.format

    @property
    def style(self) -> OperandStyle:
        """The operand style used for rendering and assembly."""
        return self.spec.style

    @property
    def opcode(self) -> int:
        """The 6-bit major opcode."""
        return fields.opcode_of(self.word)

    @property
    def rs(self) -> int:
        """The rs register field (also fmt for COP1)."""
        return fields.rs_of(self.word)

    @property
    def rt(self) -> int:
        """The rt register field (also the REGIMM selector)."""
        return fields.rt_of(self.word)

    @property
    def rd(self) -> int:
        """The rd register field."""
        return fields.rd_of(self.word)

    @property
    def shamt(self) -> int:
        """The shift-amount field."""
        return fields.shamt_of(self.word)

    @property
    def funct(self) -> int:
        """The funct field."""
        return fields.funct_of(self.word)

    @property
    def immediate(self) -> int:
        """The 16-bit immediate, unsigned."""
        return fields.immediate_of(self.word)

    @property
    def signed_immediate(self) -> int:
        """The 16-bit immediate, sign-extended."""
        return fields.signed_immediate(self.word)

    @property
    def target(self) -> int:
        """The 26-bit jump target field."""
        return fields.target_of(self.word)

    @property
    def is_nop(self) -> bool:
        """True for the canonical ``nop`` encoding (all-zero word)."""
        return self.word == 0

    def __str__(self) -> str:
        from repro.isa.disassembler import render_instruction

        return render_instruction(self)
