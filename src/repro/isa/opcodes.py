"""MIPS-I instruction tables: opcodes, functs, fmts, and legality sets.

These tables are the reproduction of the legality oracle the paper
extracted from gem5's MIPS decoder (Sec. IV-A).  The paper reports the
three counts that drive candidate filtering, and this module reproduces
them exactly (asserted in the test suite):

- **41 of 64** major opcode values are legal;
- **37 of 64** ``funct`` values are legal under opcode 0x00 (SPECIAL);
- **3 of 32** ``fmt`` values are legal under opcode 0x11 (COP1):
  single (S = 16), double (D = 17), and word (W = 20).

The base set is MIPS-I (Patterson & Hennessy encoding tables, the
paper's ref. [38]); like gem5's MIPS32 decoder it also accepts a few
later additions inside SPECIAL (conditional moves, sync, traps), which
is how the SPECIAL count reaches 37.  The opcode list is MIPS-I plus
``cache`` (0x2F), which gem5 likewise decodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.fields import InstructionFormat

__all__ = [
    "OperandStyle",
    "InstructionSpec",
    "SPECIAL_OPCODE",
    "REGIMM_OPCODE",
    "COP0_OPCODE",
    "COP1_OPCODE",
    "COP2_OPCODE",
    "COP3_OPCODE",
    "PRIMARY_OPCODES",
    "SPECIAL_FUNCTS",
    "REGIMM_SELECTORS",
    "COP1_FMTS",
    "COP1_FMT_LETTERS",
    "COP1_FUNCTS_BY_FMT",
    "COP0_TRANSFER_RS",
    "COP0_CO_FUNCTS",
    "COPZ_TRANSFER_RS",
    "COPZ_BRANCH_RS",
    "LEGAL_OPCODES",
    "INSTRUCTION_SPECS",
    "spec_for_mnemonic",
]


class OperandStyle(enum.Enum):
    """How an instruction's operands are encoded and rendered."""

    THREE_REG = "rd, rs, rt"          # addu $rd, $rs, $rt
    SHIFT_IMMEDIATE = "rd, rt, sa"    # sll $rd, $rt, shamt
    SHIFT_VARIABLE = "rd, rt, rs"     # sllv $rd, $rt, $rs
    JUMP_REGISTER = "rs"              # jr $rs
    JUMP_LINK_REGISTER = "rd, rs"     # jalr $rd, $rs
    MOVE_FROM_HILO = "rd"             # mfhi $rd
    MOVE_TO_HILO = "rs"               # mthi $rs
    MULT_DIV = "rs, rt"               # mult $rs, $rt
    TRAP_TWO_REG = "rs, rt (trap)"    # teq $rs, $rt
    NO_OPERANDS = ""                  # syscall / break / sync
    IMMEDIATE_ARITH = "rt, rs, imm"   # addi $rt, $rs, imm (signed)
    IMMEDIATE_LOGIC = "rt, rs, uimm"  # andi $rt, $rs, imm (unsigned)
    LOAD_UPPER = "rt, imm"            # lui $rt, imm
    LOAD_STORE = "rt, off(rs)"        # lw $rt, off($rs)
    BRANCH_TWO_REG = "rs, rt, off"    # beq $rs, $rt, off
    BRANCH_ONE_REG = "rs, off"        # blez / bltz / regimm
    TRAP_IMMEDIATE = "rs, imm"        # teqi $rs, imm
    JUMP_TARGET = "target"            # j target
    COP_LOAD_STORE = "ft, off(rs)"    # lwc1 $f2, off($rs)
    FP_THREE_REG = "fd, fs, ft"       # add.s $fd, $fs, $ft
    FP_TWO_REG = "fd, fs"             # mov.s / cvt / abs / neg
    FP_COMPARE = "fs, ft"             # c.eq.s $fs, $ft
    COP_TRANSFER = "rt, rd (cop)"     # mfc0 $rt, $rd
    COP_OPERATION = "cofun"           # tlbwi / generic copz op
    CACHE_OP = "op, off(rs)"          # cache op, off($rs)


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one instruction encoding.

    Field discriminators that do not apply are ``None``; e.g. an I-type
    instruction has no ``funct``.  ``cop_rs`` holds the rs-field
    selector for coprocessor transfer/branch encodings, ``regimm_rt``
    the rt-field selector under opcode 0x01, and ``fmt`` the COP1
    format code.
    """

    mnemonic: str
    opcode: int
    style: OperandStyle
    format: InstructionFormat
    funct: int | None = None
    regimm_rt: int | None = None
    fmt: int | None = None
    cop_rs: int | None = None


SPECIAL_OPCODE = 0x00
REGIMM_OPCODE = 0x01
COP0_OPCODE = 0x10
COP1_OPCODE = 0x11
COP2_OPCODE = 0x12
COP3_OPCODE = 0x13

# ---------------------------------------------------------------------------
# Primary opcode map (everything that is not selected by a sub-field).
# ---------------------------------------------------------------------------

PRIMARY_OPCODES: dict[int, tuple[str, OperandStyle, InstructionFormat]] = {
    0x02: ("j", OperandStyle.JUMP_TARGET, InstructionFormat.J_TYPE),
    0x03: ("jal", OperandStyle.JUMP_TARGET, InstructionFormat.J_TYPE),
    0x04: ("beq", OperandStyle.BRANCH_TWO_REG, InstructionFormat.I_TYPE),
    0x05: ("bne", OperandStyle.BRANCH_TWO_REG, InstructionFormat.I_TYPE),
    0x06: ("blez", OperandStyle.BRANCH_ONE_REG, InstructionFormat.I_TYPE),
    0x07: ("bgtz", OperandStyle.BRANCH_ONE_REG, InstructionFormat.I_TYPE),
    0x08: ("addi", OperandStyle.IMMEDIATE_ARITH, InstructionFormat.I_TYPE),
    0x09: ("addiu", OperandStyle.IMMEDIATE_ARITH, InstructionFormat.I_TYPE),
    0x0A: ("slti", OperandStyle.IMMEDIATE_ARITH, InstructionFormat.I_TYPE),
    0x0B: ("sltiu", OperandStyle.IMMEDIATE_ARITH, InstructionFormat.I_TYPE),
    0x0C: ("andi", OperandStyle.IMMEDIATE_LOGIC, InstructionFormat.I_TYPE),
    0x0D: ("ori", OperandStyle.IMMEDIATE_LOGIC, InstructionFormat.I_TYPE),
    0x0E: ("xori", OperandStyle.IMMEDIATE_LOGIC, InstructionFormat.I_TYPE),
    0x0F: ("lui", OperandStyle.LOAD_UPPER, InstructionFormat.I_TYPE),
    0x20: ("lb", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x21: ("lh", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x22: ("lwl", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x23: ("lw", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x24: ("lbu", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x25: ("lhu", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x26: ("lwr", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x28: ("sb", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x29: ("sh", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x2A: ("swl", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x2B: ("sw", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x2E: ("swr", OperandStyle.LOAD_STORE, InstructionFormat.I_TYPE),
    0x2F: ("cache", OperandStyle.CACHE_OP, InstructionFormat.I_TYPE),
    0x30: ("lwc0", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x31: ("lwc1", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x32: ("lwc2", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x33: ("lwc3", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x38: ("swc0", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x39: ("swc1", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x3A: ("swc2", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
    0x3B: ("swc3", OperandStyle.COP_LOAD_STORE, InstructionFormat.I_TYPE),
}

# ---------------------------------------------------------------------------
# SPECIAL (opcode 0x00): selected by funct.  Exactly 37 legal values.
# ---------------------------------------------------------------------------

SPECIAL_FUNCTS: dict[int, tuple[str, OperandStyle]] = {
    0x00: ("sll", OperandStyle.SHIFT_IMMEDIATE),
    0x02: ("srl", OperandStyle.SHIFT_IMMEDIATE),
    0x03: ("sra", OperandStyle.SHIFT_IMMEDIATE),
    0x04: ("sllv", OperandStyle.SHIFT_VARIABLE),
    0x06: ("srlv", OperandStyle.SHIFT_VARIABLE),
    0x07: ("srav", OperandStyle.SHIFT_VARIABLE),
    0x08: ("jr", OperandStyle.JUMP_REGISTER),
    0x09: ("jalr", OperandStyle.JUMP_LINK_REGISTER),
    0x0A: ("movz", OperandStyle.THREE_REG),
    0x0B: ("movn", OperandStyle.THREE_REG),
    0x0C: ("syscall", OperandStyle.NO_OPERANDS),
    0x0D: ("break", OperandStyle.NO_OPERANDS),
    0x0F: ("sync", OperandStyle.NO_OPERANDS),
    0x10: ("mfhi", OperandStyle.MOVE_FROM_HILO),
    0x11: ("mthi", OperandStyle.MOVE_TO_HILO),
    0x12: ("mflo", OperandStyle.MOVE_FROM_HILO),
    0x13: ("mtlo", OperandStyle.MOVE_TO_HILO),
    0x18: ("mult", OperandStyle.MULT_DIV),
    0x19: ("multu", OperandStyle.MULT_DIV),
    0x1A: ("div", OperandStyle.MULT_DIV),
    0x1B: ("divu", OperandStyle.MULT_DIV),
    0x20: ("add", OperandStyle.THREE_REG),
    0x21: ("addu", OperandStyle.THREE_REG),
    0x22: ("sub", OperandStyle.THREE_REG),
    0x23: ("subu", OperandStyle.THREE_REG),
    0x24: ("and", OperandStyle.THREE_REG),
    0x25: ("or", OperandStyle.THREE_REG),
    0x26: ("xor", OperandStyle.THREE_REG),
    0x27: ("nor", OperandStyle.THREE_REG),
    0x2A: ("slt", OperandStyle.THREE_REG),
    0x2B: ("sltu", OperandStyle.THREE_REG),
    0x30: ("tge", OperandStyle.TRAP_TWO_REG),
    0x31: ("tgeu", OperandStyle.TRAP_TWO_REG),
    0x32: ("tlt", OperandStyle.TRAP_TWO_REG),
    0x33: ("tltu", OperandStyle.TRAP_TWO_REG),
    0x34: ("teq", OperandStyle.TRAP_TWO_REG),
    0x36: ("tne", OperandStyle.TRAP_TWO_REG),
}

# ---------------------------------------------------------------------------
# REGIMM (opcode 0x01): selected by the rt field.
# ---------------------------------------------------------------------------

REGIMM_SELECTORS: dict[int, tuple[str, OperandStyle]] = {
    0x00: ("bltz", OperandStyle.BRANCH_ONE_REG),
    0x01: ("bgez", OperandStyle.BRANCH_ONE_REG),
    0x08: ("tgei", OperandStyle.TRAP_IMMEDIATE),
    0x09: ("tgeiu", OperandStyle.TRAP_IMMEDIATE),
    0x0A: ("tlti", OperandStyle.TRAP_IMMEDIATE),
    0x0B: ("tltiu", OperandStyle.TRAP_IMMEDIATE),
    0x0C: ("teqi", OperandStyle.TRAP_IMMEDIATE),
    0x0E: ("tnei", OperandStyle.TRAP_IMMEDIATE),
    0x10: ("bltzal", OperandStyle.BRANCH_ONE_REG),
    0x11: ("bgezal", OperandStyle.BRANCH_ONE_REG),
}

# ---------------------------------------------------------------------------
# COP1 (opcode 0x11): fmt in the rs field; exactly 3 legal values.
# ---------------------------------------------------------------------------

COP1_FMT_SINGLE = 0x10
COP1_FMT_DOUBLE = 0x11
COP1_FMT_WORD = 0x14

COP1_FMTS: frozenset[int] = frozenset(
    {COP1_FMT_SINGLE, COP1_FMT_DOUBLE, COP1_FMT_WORD}
)

COP1_FMT_LETTERS: dict[int, str] = {
    COP1_FMT_SINGLE: "s",
    COP1_FMT_DOUBLE: "d",
    COP1_FMT_WORD: "w",
}

_FP_ARITH: dict[int, tuple[str, OperandStyle]] = {
    0x00: ("add", OperandStyle.FP_THREE_REG),
    0x01: ("sub", OperandStyle.FP_THREE_REG),
    0x02: ("mul", OperandStyle.FP_THREE_REG),
    0x03: ("div", OperandStyle.FP_THREE_REG),
    0x04: ("sqrt", OperandStyle.FP_TWO_REG),
    0x05: ("abs", OperandStyle.FP_TWO_REG),
    0x06: ("mov", OperandStyle.FP_TWO_REG),
    0x07: ("neg", OperandStyle.FP_TWO_REG),
    0x30: ("c.f", OperandStyle.FP_COMPARE),
    0x32: ("c.eq", OperandStyle.FP_COMPARE),
    0x34: ("c.olt", OperandStyle.FP_COMPARE),
    0x36: ("c.ole", OperandStyle.FP_COMPARE),
    0x3C: ("c.lt", OperandStyle.FP_COMPARE),
    0x3E: ("c.le", OperandStyle.FP_COMPARE),
}

_FP_CVT_SINGLE = 0x20  # cvt.s.<fmt>
_FP_CVT_DOUBLE = 0x21  # cvt.d.<fmt>
_FP_CVT_WORD = 0x24    # cvt.w.<fmt>

# Per-fmt funct legality: a format cannot convert to itself, and the
# word format supports only conversions (no arithmetic on raw W bits).
COP1_FUNCTS_BY_FMT: dict[int, dict[int, tuple[str, OperandStyle]]] = {
    COP1_FMT_SINGLE: {
        **_FP_ARITH,
        _FP_CVT_DOUBLE: ("cvt.d", OperandStyle.FP_TWO_REG),
        _FP_CVT_WORD: ("cvt.w", OperandStyle.FP_TWO_REG),
    },
    COP1_FMT_DOUBLE: {
        **_FP_ARITH,
        _FP_CVT_SINGLE: ("cvt.s", OperandStyle.FP_TWO_REG),
        _FP_CVT_WORD: ("cvt.w", OperandStyle.FP_TWO_REG),
    },
    COP1_FMT_WORD: {
        _FP_CVT_SINGLE: ("cvt.s", OperandStyle.FP_TWO_REG),
        _FP_CVT_DOUBLE: ("cvt.d", OperandStyle.FP_TWO_REG),
    },
}

# ---------------------------------------------------------------------------
# COP0 and generic coprocessor encodings.
# ---------------------------------------------------------------------------

# rs-field selectors for register transfers.
COP0_TRANSFER_RS: dict[int, str] = {0x00: "mfc0", 0x04: "mtc0"}

# With rs bit 4 set ("CO"), funct selects a privileged operation.
COP0_CO_FUNCTS: dict[int, str] = {
    0x01: "tlbr",
    0x02: "tlbwi",
    0x06: "tlbwr",
    0x08: "tlbp",
    0x10: "rfe",
}

# COP2/COP3 transfers (z = coprocessor number substituted at decode).
COPZ_TRANSFER_RS: dict[int, str] = {
    0x00: "mfc{z}",
    0x02: "cfc{z}",
    0x04: "mtc{z}",
    0x06: "ctc{z}",
}

# rs = 8 branches on the coprocessor condition; rt selects false/true.
COPZ_BRANCH_RS = 0x08
COPZ_BRANCH_RT: dict[int, str] = {0x00: "bc{z}f", 0x01: "bc{z}t"}

# ---------------------------------------------------------------------------
# Derived legality sets.
# ---------------------------------------------------------------------------

LEGAL_OPCODES: frozenset[int] = frozenset(
    {SPECIAL_OPCODE, REGIMM_OPCODE, COP0_OPCODE, COP1_OPCODE, COP2_OPCODE,
     COP3_OPCODE} | set(PRIMARY_OPCODES)
)

assert len(LEGAL_OPCODES) == 41, f"expected 41 legal opcodes, got {len(LEGAL_OPCODES)}"
assert len(SPECIAL_FUNCTS) == 37, (
    f"expected 37 legal SPECIAL functs, got {len(SPECIAL_FUNCTS)}"
)
assert len(COP1_FMTS) == 3, f"expected 3 legal COP1 fmts, got {len(COP1_FMTS)}"

# ---------------------------------------------------------------------------
# Flat registry by mnemonic, used by the encoder and assembler.
# ---------------------------------------------------------------------------


def _build_instruction_specs() -> dict[str, InstructionSpec]:
    specs: dict[str, InstructionSpec] = {}

    def register(spec: InstructionSpec) -> None:
        if spec.mnemonic in specs:
            raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
        specs[spec.mnemonic] = spec

    for opcode, (mnemonic, style, fmt) in PRIMARY_OPCODES.items():
        register(InstructionSpec(mnemonic, opcode, style, fmt))
    for funct, (mnemonic, style) in SPECIAL_FUNCTS.items():
        register(
            InstructionSpec(
                mnemonic, SPECIAL_OPCODE, style, InstructionFormat.R_TYPE,
                funct=funct,
            )
        )
    for rt, (mnemonic, style) in REGIMM_SELECTORS.items():
        register(
            InstructionSpec(
                mnemonic, REGIMM_OPCODE, style, InstructionFormat.I_TYPE,
                regimm_rt=rt,
            )
        )
    for fmt, functs in COP1_FUNCTS_BY_FMT.items():
        letter = COP1_FMT_LETTERS[fmt]
        for funct, (base, style) in functs.items():
            register(
                InstructionSpec(
                    f"{base}.{letter}", COP1_OPCODE, style,
                    InstructionFormat.R_TYPE, funct=funct, fmt=fmt,
                )
            )
    for rs, mnemonic in COP0_TRANSFER_RS.items():
        register(
            InstructionSpec(
                mnemonic, COP0_OPCODE, OperandStyle.COP_TRANSFER,
                InstructionFormat.R_TYPE, cop_rs=rs,
            )
        )
    for funct, mnemonic in COP0_CO_FUNCTS.items():
        register(
            InstructionSpec(
                mnemonic, COP0_OPCODE, OperandStyle.COP_OPERATION,
                InstructionFormat.R_TYPE, funct=funct, cop_rs=0x10,
            )
        )
    for z, opcode in ((2, COP2_OPCODE), (3, COP3_OPCODE)):
        for rs, template in COPZ_TRANSFER_RS.items():
            register(
                InstructionSpec(
                    template.format(z=z), opcode, OperandStyle.COP_TRANSFER,
                    InstructionFormat.R_TYPE, cop_rs=rs,
                )
            )
        for rt, template in COPZ_BRANCH_RT.items():
            register(
                InstructionSpec(
                    template.format(z=z), opcode, OperandStyle.BRANCH_ONE_REG,
                    InstructionFormat.I_TYPE, cop_rs=COPZ_BRANCH_RS,
                    regimm_rt=rt,
                )
            )
        register(
            InstructionSpec(
                f"cop{z}", opcode, OperandStyle.COP_OPERATION,
                InstructionFormat.R_TYPE, cop_rs=0x10,
            )
        )
    return specs


INSTRUCTION_SPECS: dict[str, InstructionSpec] = _build_instruction_specs()


def spec_for_mnemonic(mnemonic: str) -> InstructionSpec:
    """Return the :class:`InstructionSpec` for *mnemonic*.

    Raises ``KeyError`` with the unknown name for typo-friendly errors.
    """
    try:
        return INSTRUCTION_SPECS[mnemonic]
    except KeyError:
        raise KeyError(f"unknown MIPS mnemonic {mnemonic!r}") from None
