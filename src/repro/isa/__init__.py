"""MIPS-I ISA substrate: decoder (legality oracle), encoder, assembler.

The decoder here reproduces the role of the gem5-derived legality
checker in the paper's evaluation pipeline (Sec. IV-A): given a 32-bit
value, report whether it is a legal instruction and which operation it
performs.
"""

from repro.isa.assembler import AssembledProgram, assemble
from repro.isa.decoder import decode, is_legal, mnemonic_of, try_decode
from repro.isa.disassembler import (
    disassemble,
    disassemble_words,
    render_instruction,
)
from repro.isa.encoder import encode
from repro.isa.fields import (
    DECODING_FIELD_POSITIONS,
    FIELDS,
    Field,
    InstructionFormat,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP1_FMTS,
    INSTRUCTION_SPECS,
    InstructionSpec,
    LEGAL_OPCODES,
    OperandStyle,
    REGIMM_SELECTORS,
    SPECIAL_FUNCTS,
    spec_for_mnemonic,
)
from repro.isa.registers import (
    ABI_CLASSES,
    NUM_REGISTERS,
    REGISTER_NAMES,
    register_name,
    register_number,
)

__all__ = [
    "AssembledProgram",
    "assemble",
    "decode",
    "is_legal",
    "mnemonic_of",
    "try_decode",
    "disassemble",
    "disassemble_words",
    "render_instruction",
    "encode",
    "DECODING_FIELD_POSITIONS",
    "FIELDS",
    "Field",
    "InstructionFormat",
    "Instruction",
    "COP1_FMTS",
    "INSTRUCTION_SPECS",
    "InstructionSpec",
    "LEGAL_OPCODES",
    "OperandStyle",
    "REGIMM_SELECTORS",
    "SPECIAL_FUNCTS",
    "spec_for_mnemonic",
    "ABI_CLASSES",
    "NUM_REGISTERS",
    "REGISTER_NAMES",
    "register_name",
    "register_number",
]
