"""Wire types for the DUE-recovery service.

JSON in, JSON out, stdlib only.  A request names the received word(s),
a code id, and a side-info context id (see
:mod:`repro.service.catalog`); a response reports per-word outcomes
with the ranked recovery targets, or the detect-only degradation
payload when the service sheds load.

Words accept either JSON integers or ``"0x..."`` strings (codewords
are wider than 32 bits, so hex is the ergonomic spelling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.swdecc import RecoveryResult
from repro.errors import ServiceError
from repro.obs.trace import TraceContext
from repro.service.catalog import DEFAULT_CODE_ID, DEFAULT_CONTEXT_ID

__all__ = [
    "RecoveryRequest",
    "parse_word",
    "result_payload",
    "error_payload",
    "detect_only_payload",
    "MAX_BATCH_WORDS",
]

#: Hard per-request word ceiling: a single request may not exceed the
#: whole queue; oversized batches are a malformed request (413), not
#: backpressure.
MAX_BATCH_WORDS = 4096


def parse_word(raw: Any, width_bits: int) -> int:
    """Validate one received word (int or ``0x``-prefixed string)."""
    if isinstance(raw, bool):
        raise ServiceError(f"received word must be an integer, got {raw!r}")
    if isinstance(raw, str):
        try:
            word = int(raw, 0)
        except ValueError:
            raise ServiceError(f"received word {raw!r} is not an integer")
    elif isinstance(raw, int):
        word = raw
    else:
        raise ServiceError(f"received word must be an integer, got {raw!r}")
    if not 0 <= word < (1 << width_bits):
        raise ServiceError(
            f"received word 0x{word:x} does not fit the code's "
            f"{width_bits}-bit codewords"
        )
    return word


@dataclass(frozen=True)
class RecoveryRequest:
    """One parsed recovery job: N received words under one (code,
    context) pair.

    ``timeout_s`` bounds how long the HTTP handler waits for the
    batcher before degrading to detect-only; ``None`` means the
    server's default.

    ``trace`` is the request's sampled trace context, attached by the
    HTTP layer when a collector is recording; it rides the request
    through the batcher and across the shard process boundary (the
    tuple pickles) so worker-side spans re-parent correctly.  It is
    excluded from equality so identical recovery jobs still compare
    equal regardless of trace identity.
    """

    words: tuple[int, ...]
    code_id: str = DEFAULT_CODE_ID
    context_id: str = DEFAULT_CONTEXT_ID
    timeout_s: float | None = None
    raw_words: tuple[Any, ...] = field(default=(), repr=False)
    trace: TraceContext | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_json(
        cls,
        body: Any,
        *,
        batch: bool,
        width_for: "Any",
    ) -> "RecoveryRequest":
        """Parse and validate one request body.

        *width_for* maps a code id to its codeword width in bits (the
        server passes ``lambda code_id: catalog.code(code_id).n``, so
        an unknown code id surfaces here as a 400, before queueing).
        """
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        known = {"received", "code", "context", "timeout_ms"}
        unknown = set(body) - known
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        code_id = body.get("code", DEFAULT_CODE_ID)
        context_id = body.get("context", DEFAULT_CONTEXT_ID)
        if not isinstance(code_id, str) or not isinstance(context_id, str):
            raise ServiceError("'code' and 'context' must be strings")
        timeout_s: float | None = None
        if "timeout_ms" in body:
            raw_timeout = body["timeout_ms"]
            if (
                isinstance(raw_timeout, bool)
                or not isinstance(raw_timeout, (int, float))
                or raw_timeout <= 0
            ):
                raise ServiceError("'timeout_ms' must be a positive number")
            timeout_s = float(raw_timeout) / 1000.0
        raw = body.get("received")
        if raw is None:
            raise ServiceError("request needs a 'received' field")
        width = width_for(code_id)
        if batch:
            if not isinstance(raw, list) or not raw:
                raise ServiceError(
                    "'received' must be a non-empty list of words"
                )
            if len(raw) > MAX_BATCH_WORDS:
                raise ServiceError(
                    f"batch of {len(raw)} words exceeds the per-request "
                    f"ceiling of {MAX_BATCH_WORDS}"
                )
            words = tuple(parse_word(entry, width) for entry in raw)
        else:
            words = (parse_word(raw, width),)
        return cls(
            words=words,
            code_id=code_id,
            context_id=context_id,
            timeout_s=timeout_s,
            raw_words=tuple(raw) if isinstance(raw, list) else (raw,),
        )


def result_payload(received: int, result: RecoveryResult) -> dict:
    """Per-word success payload: the chosen target plus the ranked list.

    Targets are the filter-surviving candidates (or, on filter
    fallback, all candidates) sorted best-first: score descending,
    message ascending as the deterministic tie order — the same order
    the FIRST tie-break picks from.
    """
    ranked = sorted(
        zip(result.valid_messages, result.scores),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return {
        "status": "recovered",
        "received": received,
        "chosen_message": result.chosen_message,
        "chosen_codeword": result.chosen_codeword,
        "num_candidates": result.num_candidates,
        "num_valid": result.num_valid,
        "filter_fell_back": result.filter_fell_back,
        "tied": result.tied,
        "targets": [
            {
                "message": message,
                "score": score,
                "chosen": message == result.chosen_message,
            }
            for message, score in ranked
        ],
    }


def error_payload(received: int, error: Exception) -> dict:
    """Per-word failure payload (not-a-DUE, no candidates, ...)."""
    return {
        "status": "error",
        "received": received,
        "error": type(error).__name__,
        "detail": str(error),
    }


def detect_only_payload(received: Any, reason: str) -> dict:
    """The degradation payload: the DUE is *reported*, never guessed.

    Mirrors the paper's framing that a crash (machine check) is the
    baseline a conventional system provides: under overload or timeout
    the service still tells the caller a DUE happened, it just skips
    the heuristic recovery instead of queueing without bound.
    """
    return {
        "status": "detect-only",
        "received": received,
        "reason": reason,
    }
