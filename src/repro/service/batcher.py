"""Micro-batching over a bounded queue with explicit backpressure.

The recovery engine is fastest when it drains many words back-to-back
(syndrome memoization, context-cache locality), but service requests
arrive one at a time.  :class:`RecoveryBatcher` sits between the two:

- **Bounded queue** — ``submit`` either enqueues or raises
  :class:`~repro.errors.ServiceOverloadError` with a ``retry_after``
  hint.  There is no unbounded buffering mode: when the queue is full
  the caller is told *now*, and the HTTP layer either rejects (429) or
  degrades to detect-only, per policy.
- **Micro-batches** — a single worker thread gathers queued jobs until
  ``max_batch`` words are in hand or the ``linger`` deadline passes
  (whichever first), then executes them in one call.  Jobs are never
  split, so a batch can exceed ``max_batch`` by at most one job.
- **Single consumer** — the worker thread is the only caller of the
  executor, so the engines' context caches need no locks and batched
  results are bit-identical to the same words run serially.

Lifecycle: ``start`` / ``stop`` (or a ``with`` block).  ``stop`` drains
jobs already accepted, then joins the worker; nothing accepted is
dropped.  Cancelled futures (request timeouts) are skipped at execute
time via the standard ``set_running_or_notify_cancel`` handshake, so
abandoned work sheds instead of burning the batch budget.

Multi-process mode layers :class:`ShardedBatcher` on top: a router
over N single-consumer shard queues, one :class:`RecoveryBatcher` per
:class:`~repro.service.shards.ShardPool` shard.  Requests route by
their (code, context) hash — the same placement the pool uses — so a
context's words always drain through one shard's engine and its
caches stay hot.  Backpressure is per shard (a hot context saturating
its shard 429s without starving cold contexts), and each shard batcher
publishes its own ``service.shard.<i>.*`` metrics; the aggregate
``service.queue_depth`` is derived from them at snapshot time.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from functools import partial
from threading import Condition, Thread

from repro.errors import ServiceError, ServiceOverloadError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.api import RecoveryRequest
from repro.service.shards import ShardPool

__all__ = ["RecoveryBatcher", "ShardedBatcher"]

#: Executor contract: one result object per request, in request order.
#: The batcher passes results through opaquely (the service returns
#: ``{"payloads": [...], "cost": ...}`` outcome dicts).
BatchExecutor = Callable[[Sequence[RecoveryRequest]], "list[dict]"]

#: Starting estimate of seconds of engine work per word, before any
#: batch has been measured (a memoized recover() is tens of µs).
_INITIAL_SECONDS_PER_WORD = 5e-5

#: EWMA smoothing for the measured per-word cost.
_EWMA_ALPHA = 0.2


@dataclass
class _Job:
    """One queued request plus its completion future.

    ``enqueued_ns`` / ``claimed_ns`` are ``perf_counter_ns`` readings
    taken at submit time and at the moment the worker pops the job
    from the queue; together with the batch's execute window they
    decompose each request's latency into the ``service.stage.*``
    histograms and spans.
    """

    request: RecoveryRequest
    future: Future = field(default_factory=Future)
    enqueued_ns: int = field(default_factory=time.perf_counter_ns)
    claimed_ns: int = 0

    @property
    def words(self) -> int:
        return len(self.request.words)


class RecoveryBatcher:
    """Coalesce recovery requests into executor micro-batches.

    Parameters
    ----------
    execute:
        Called from the worker thread with the gathered requests; must
        return one result object per request, in order (the batcher
        never looks inside).  An exception fails every request in the
        batch.
    max_batch:
        Word-count low-water mark that closes a batch early.
    linger_s:
        Longest a gathered batch waits for company before executing.
    queue_limit:
        Maximum words queued (not yet executing).  ``submit`` beyond
        this raises :class:`ServiceOverloadError` — never buffers.
    registry:
        Metrics registry (default: the process registry).  Exposes
        ``<prefix>.queue_depth``, ``<prefix>.batch_words``,
        ``<prefix>.batch_seconds``, ``<prefix>.batch_linger_seconds``,
        ``<prefix>.batches``, and ``<prefix>.overloads``.
    metric_prefix:
        Namespace for this batcher's metrics (default ``service``).
        :class:`ShardedBatcher` uses ``service.shard.<i>`` so each
        shard queue is individually observable.
    """

    def __init__(
        self,
        execute: BatchExecutor,
        max_batch: int = 256,
        linger_s: float = 0.002,
        queue_limit: int = 4096,
        registry: obs_metrics.MetricsRegistry | None = None,
        metric_prefix: str = "service",
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if linger_s < 0:
            raise ServiceError(f"linger_s must be >= 0, got {linger_s}")
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        self._execute = execute
        self._metric_prefix = metric_prefix
        self._max_batch = max_batch
        self._linger_s = linger_s
        self._queue_limit = queue_limit
        self._cond = Condition()
        self._queue: deque[_Job] = deque()
        self._queued_words = 0
        self._stop = False
        self._thread: Thread | None = None
        self._seconds_per_word = _INITIAL_SECONDS_PER_WORD
        registry = (
            registry if registry is not None else obs_metrics.get_registry()
        )
        self._g_depth = registry.gauge(
            f"{metric_prefix}.queue_depth",
            help="Words queued for recovery (bounded by the queue limit)",
        )
        self._h_batch_words = registry.histogram(
            f"{metric_prefix}.batch_words",
            buckets=obs_metrics.DEFAULT_COUNT_BUCKETS,
            help="Words coalesced per executed batch",
        )
        self._h_batch_seconds = registry.histogram(
            f"{metric_prefix}.batch_seconds",
            help="Executor wall time per batch",
        )
        self._h_batch_linger = registry.histogram(
            f"{metric_prefix}.batch_linger_seconds",
            help="Queue wait per executed batch: execute start minus "
            "the earliest member's enqueue time",
        )
        self._c_batches = registry.counter(
            f"{metric_prefix}.batches", help="Micro-batches executed"
        )
        self._c_overloads = registry.counter(
            f"{metric_prefix}.overloads",
            help="Submissions rejected because the queue was full",
        )
        # Per-request latency decomposition.  Deliberately *not* under
        # the shard prefix: every shard batcher shares one family per
        # stage, so dashboards see one distribution per stage however
        # many shards serve it (get-or-create makes this idempotent).
        self._h_stage_queue_wait = registry.histogram(
            "service.stage.queue_wait",
            help="Per request: submit until the batch worker claimed it",
        )
        self._h_stage_linger = registry.histogram(
            "service.stage.linger",
            help="Per request: claimed until its batch began executing",
        )
        self._h_stage_shard_exec = registry.histogram(
            "service.stage.shard_exec",
            help="Per request: executor wall time of its batch "
            "(in-process or across the shard boundary)",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._thread is not None

    @property
    def queue_limit(self) -> int:
        """Maximum queued words before backpressure."""
        return self._queue_limit

    def queued_words(self) -> int:
        """Words currently waiting (excludes the executing batch)."""
        with self._cond:
            return self._queued_words

    def retry_after_hint(self) -> float:
        """Suggested client backoff, from the measured drain rate."""
        with self._cond:
            backlog = self._queued_words
            seconds_per_word = self._seconds_per_word
        estimate = backlog * seconds_per_word + self._linger_s
        return min(max(estimate, 0.001), 5.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RecoveryBatcher":
        """Spin up the worker thread; returns ``self``."""
        if self._thread is not None:
            raise ServiceError("RecoveryBatcher is already running")
        with self._cond:
            self._stop = False
        self._thread = Thread(
            target=self._worker,
            name=f"repro-batcher-{self._metric_prefix}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain accepted jobs, then stop the worker (idempotent).

        New submissions are refused immediately; jobs already queued
        are executed before the worker exits, so a graceful shutdown
        never drops accepted work.
        """
        thread = self._thread
        self._thread = None
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout=30.0)
        # Failsafe: if the worker died abnormally, fail anything left.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self._queued_words = 0
        self._g_depth.set(0.0)
        for job in leftovers:
            if job.future.set_running_or_notify_cancel():
                job.future.set_exception(
                    ServiceError("recovery batcher stopped before execution")
                )

    def __enter__(self) -> "RecoveryBatcher":
        return self.start() if not self.running else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, request: RecoveryRequest) -> "Future[dict]":
        """Enqueue *request*; its future resolves to the executor's
        per-request result object.

        Raises :class:`ServiceOverloadError` (with ``retry_after``)
        when accepting the request would exceed the queue limit, and
        :class:`ServiceError` when the batcher is not running.
        """
        job = _Job(request)
        with self._cond:
            if self._stop or self._thread is None:
                raise ServiceError(
                    "recovery batcher is not running; submit() refused"
                )
            if self._queued_words + job.words > self._queue_limit:
                self._c_overloads.inc()
                queued = self._queued_words
                raise ServiceOverloadError(
                    queued, self._queue_limit, self._retry_after_locked()
                )
            self._queue.append(job)
            self._queued_words += job.words
            self._g_depth.set(self._queued_words)
            self._cond.notify()
        return job.future

    def _retry_after_locked(self) -> float:
        estimate = (
            self._queued_words * self._seconds_per_word + self._linger_s
        )
        return min(max(estimate, 0.001), 5.0)

    # ------------------------------------------------------------------
    # Consumer side (worker thread)
    # ------------------------------------------------------------------

    def _gather(self) -> list[_Job] | None:
        """Block for the next micro-batch; ``None`` means shut down."""
        with self._cond:
            while not self._queue:
                if self._stop:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            batch[0].claimed_ns = time.perf_counter_ns()
            words = batch[0].words
            deadline = time.monotonic() + self._linger_s
            while words < self._max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    batch[-1].claimed_ns = time.perf_counter_ns()
                    words += batch[-1].words
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stop:
                    break
                self._cond.wait(remaining)
                # Loop re-checks the queue and the deadline, so both
                # spurious wakes and real arrivals are handled above.
            self._queued_words -= words
            self._g_depth.set(self._queued_words)
        return batch

    def _worker(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[_Job]) -> None:
        # Standard future handshake: claim each job, shedding the ones
        # a timed-out client already cancelled.
        live = [
            job for job in batch if job.future.set_running_or_notify_cancel()
        ]
        words = sum(job.words for job in live)
        self._h_batch_words.observe(words)
        self._c_batches.inc()
        if not live:
            return
        exec_start_ns = time.perf_counter_ns()
        self._h_batch_linger.observe(
            max(
                (exec_start_ns - min(job.enqueued_ns for job in live)) / 1e9,
                0.0,
            )
        )
        for job in live:
            self._h_stage_queue_wait.observe(
                max(job.claimed_ns - job.enqueued_ns, 0) / 1e9
            )
            self._h_stage_linger.observe(
                max(exec_start_ns - job.claimed_ns, 0) / 1e9
            )
        # Traced jobs get a per-request shard_exec span minted *now* so
        # the executor (possibly in another process) can parent its own
        # spans under it; the context rides inside the request.
        collector = obs_trace.current_collector()
        exec_span_ids: dict[int, int] = {}
        requests = []
        for job in live:
            context = job.request.trace
            if context is not None and collector is not None:
                exec_id = obs_trace.new_span_id()
                exec_span_ids[id(job)] = exec_id
                requests.append(
                    replace(job.request, trace=context.child(exec_id))
                )
            else:
                requests.append(job.request)
        try:
            results = self._execute(requests)
        except BaseException as error:  # executor failed: fail the batch
            for job in live:
                job.future.set_exception(error)
            return
        exec_end_ns = time.perf_counter_ns()
        elapsed = (exec_end_ns - exec_start_ns) / 1e9
        self._h_batch_seconds.observe(elapsed)
        for _ in live:
            self._h_stage_shard_exec.observe(elapsed)
        if words:
            observed = elapsed / words
            self._seconds_per_word += _EWMA_ALPHA * (
                observed - self._seconds_per_word
            )
        if len(results) != len(live):
            error = ServiceError(
                f"batch executor returned {len(results)} result lists "
                f"for {len(live)} requests"
            )
            for job in live:
                job.future.set_exception(error)
            return
        for job, result in zip(live, results):
            self._record_job_spans(
                collector, job, result, exec_span_ids,
                exec_start_ns, exec_end_ns,
            )
            job.future.set_result(result)

    @staticmethod
    def _record_job_spans(
        collector: obs_trace.SpanCollector | None,
        job: _Job,
        result: object,
        exec_span_ids: dict[int, int],
        exec_start_ns: int,
        exec_end_ns: int,
    ) -> None:
        """Record one job's stage spans and re-parent shipped worker
        spans into the parent collector.

        Worker spans arrive inside the outcome dict as plain
        ``{"name", "rel_start_ns", "rel_end_ns", "span_id",
        "parent_id", "trace_id"}`` records, timed relative to the
        worker's own execute start (its clock is not ours).  Rebasing
        them onto the parent-observed execute window keeps every child
        inside its ``service.stage.shard_exec`` parent: the worker's
        own execute wall is strictly shorter than the parent-observed
        one (which also pays the IPC), so ``rel_end_ns`` never
        overruns the window.
        """
        shipped = (
            result.pop("spans", None) if isinstance(result, dict) else None
        )
        context = job.request.trace
        if collector is None or context is None:
            return
        exec_id = exec_span_ids.get(id(job))
        if exec_id is None:
            return
        root_id, trace_id = context.span_id, context.trace_id
        collector.record(obs_trace.Span(
            name="service.stage.queue_wait",
            start_ns=job.enqueued_ns,
            end_ns=max(job.claimed_ns, job.enqueued_ns),
            depth=1, span_id=obs_trace.new_span_id(),
            parent_id=root_id, trace_id=trace_id,
        ))
        collector.record(obs_trace.Span(
            name="service.stage.linger",
            start_ns=job.claimed_ns,
            end_ns=max(exec_start_ns, job.claimed_ns),
            depth=1, span_id=obs_trace.new_span_id(),
            parent_id=root_id, trace_id=trace_id,
        ))
        collector.record(obs_trace.Span(
            name="service.stage.shard_exec",
            start_ns=exec_start_ns, end_ns=exec_end_ns,
            depth=1, span_id=exec_id,
            parent_id=root_id, trace_id=trace_id,
        ))
        if shipped:
            window = exec_end_ns - exec_start_ns
            for raw in shipped:
                rel_end = min(int(raw["rel_end_ns"]), window)
                rel_start = min(int(raw["rel_start_ns"]), rel_end)
                collector.record(obs_trace.Span(
                    name=str(raw["name"]),
                    start_ns=exec_start_ns + rel_start,
                    end_ns=exec_start_ns + rel_end,
                    depth=2,
                    span_id=int(raw["span_id"]),
                    parent_id=int(raw["parent_id"]),
                    trace_id=str(raw["trace_id"]),
                ))


def _aggregate_queue_depth_collector() -> None:
    """Derive the aggregate ``service.queue_depth`` from shard gauges.

    In sharded mode each queue owns a ``service.shard.<i>.queue_depth``
    gauge; dashboards built against the single-process service still
    read one total, so it is summed here at snapshot time — never on
    the submit hot path.  When no shard gauges exist (single-process
    mode) the collector leaves the batcher-owned gauge alone.
    """
    registry = obs_metrics.get_registry()
    total = 0.0
    found = False
    for name in registry.names():
        if not (
            name.startswith("service.shard.")
            and name.endswith(".queue_depth")
        ):
            continue
        metric = registry.get(name)
        if isinstance(metric, obs_metrics.Gauge):
            found = True
            total += metric.value
    if found:
        registry.gauge(
            "service.queue_depth",
            help="Words queued for recovery (bounded by the queue limit)",
        ).set(total)


obs_metrics.add_collector(_aggregate_queue_depth_collector)


class ShardedBatcher:
    """Route requests over N single-consumer shard queues.

    The multi-process counterpart of :class:`RecoveryBatcher`: one
    shard queue (its own ``RecoveryBatcher`` + worker thread) per
    :class:`~repro.service.shards.ShardPool` shard, with requests
    placed by the pool's (code, context) hash.  Placement and queueing
    use the same hash, so ordering per context is preserved end to end
    and a shard's engine only ever sees its own contexts.

    Backpressure is per shard: the configured ``queue_limit`` divides
    evenly across shards, and a full shard queue rejects with
    :class:`~repro.errors.ServiceOverloadError` even while siblings
    are idle — deliberately, because queueing a hot context behind a
    different shard would break cache affinity and per-context
    ordering.

    Shard death surfaces here as a failed batch future carrying
    :class:`~repro.errors.ShardFailureError` (after the pool's
    respawn-and-requeue policy), which the HTTP layer maps to the
    overload policy.  The pool's lifecycle is owned by the caller;
    ``stop`` drains and stops the shard queues only.
    """

    def __init__(
        self,
        pool: ShardPool,
        max_batch: int = 256,
        linger_s: float = 0.002,
        queue_limit: int = 4096,
        registry: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        if queue_limit < pool.workers:
            raise ServiceError(
                f"queue_limit {queue_limit} cannot cover "
                f"{pool.workers} shard queues"
            )
        self._pool = pool
        per_shard_limit = queue_limit // pool.workers
        self._shards = [
            RecoveryBatcher(
                partial(pool.execute, index),
                max_batch=max_batch,
                linger_s=linger_s,
                queue_limit=per_shard_limit,
                registry=registry,
                metric_prefix=f"service.shard.{index}",
            )
            for index in range(pool.workers)
        ]

    # ------------------------------------------------------------------
    # Introspection (RecoveryBatcher-compatible surface)
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while every shard queue's worker thread is up."""
        return all(shard.running for shard in self._shards)

    @property
    def queue_limit(self) -> int:
        """Total queued-word bound, summed across shard queues."""
        return sum(shard.queue_limit for shard in self._shards)

    def queued_words(self) -> int:
        """Words waiting across all shard queues."""
        return sum(shard.queued_words() for shard in self._shards)

    def shard_queue_depths(self) -> list[int]:
        """Per-shard queued words, by shard index (stats endpoint)."""
        return [shard.queued_words() for shard in self._shards]

    def retry_after_hint(self) -> float:
        """Backoff hint from the most backlogged shard queue."""
        return max(shard.retry_after_hint() for shard in self._shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedBatcher":
        """Start every shard queue's worker thread; returns ``self``."""
        for shard in self._shards:
            shard.start()
        return self

    def stop(self) -> None:
        """Drain and stop every shard queue (idempotent)."""
        for shard in self._shards:
            shard.stop()

    def __enter__(self) -> "ShardedBatcher":
        return self.start() if not self.running else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, request: RecoveryRequest) -> "Future[dict]":
        """Enqueue *request* on its (code, context) shard queue."""
        index = self._pool.route(request.code_id, request.context_id)
        return self._shards[index].submit(request)
