"""Load generation for the DUE-recovery service, closed or open loop.

Drives ``POST /recover/batch`` from N client threads and reports
throughput plus p50/p90/p99 request latency, in one of two modes:

- **closed** (default) — each client issues its next request only
  after the previous one answered.  The offered load adapts to the
  service, which is the right shape for a capacity gate but *hides*
  queueing delay: a slow service simply receives fewer requests.
- **open** — requests fire on a fixed global schedule
  (``rate_rps``), interleaved round-robin across clients, whether or
  not earlier requests have answered.  Latency is measured from each
  request's *scheduled arrival time*, so time spent waiting behind a
  stalled connection counts against the service (the standard
  coordinated-omission correction) — this is the mode that tells the
  truth about tail latency under a target load.

Used by ``scripts/service_loadgen.py`` (standalone CLI) and
``benchmarks/bench_service_throughput.py`` (the throughput gate), so
both measure with identical methodology.

Clients reuse one :class:`http.client.HTTPConnection` each — the
service speaks HTTP/1.1 with Content-Length, so keep-alive works and
connection setup stays out of the measured latency.

Every request carries a generator-minted W3C ``traceparent`` header,
and :meth:`LoadResult.slowest_traces` reports the trace ids of the
slowest requests — when the service runs with tracing enabled, those
ids resolve in its ``GET /traces`` buffer (``repro trace <id>``), so
a latency outlier in a bench run can be decomposed into queue wait /
linger / shard execution after the fact.
"""

from __future__ import annotations

import json
import math
import random
import socket
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from http.client import HTTPConnection

from repro.ecc import canonical_secded_39_32
from repro.ecc.code import LinearBlockCode

__all__ = ["LoadResult", "generate_due_words", "percentile", "run_load"]


def generate_due_words(
    code: LinearBlockCode | None = None,
    count: int = 512,
    seed: int = 7,
) -> list[int]:
    """*count* double-bit-error words over *code* (true DUEs)."""
    if code is None:
        code = canonical_secded_39_32()
    rng = random.Random(seed)
    words = []
    for _ in range(count):
        message = rng.getrandbits(code.k)
        first = rng.randrange(code.n)
        second = rng.randrange(code.n - 1)
        if second >= first:
            second += 1
        words.append(code.encode(message) ^ (1 << first) ^ (1 << second))
    return words


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of pre-sorted *sorted_values*."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


@dataclass
class LoadResult:
    """Aggregate outcome of one load run."""

    clients: int
    mode: str = "closed"
    offered_rate_rps: float | None = None
    requests: int = 0
    words: int = 0
    recovered: int = 0
    degraded: int = 0
    rejected: int = 0
    word_errors: int = 0
    http_errors: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list, repr=False)
    #: ``(latency_s, trace_id)`` per answered request — the trace id
    #: the generator sent in the request's ``traceparent`` header, so
    #: a slow request here can be looked up in the service's
    #: ``GET /traces`` buffer (when it serves with tracing on).
    traced_latencies: list[tuple[float, str]] = field(
        default_factory=list, repr=False
    )

    @property
    def throughput_words_per_s(self) -> float:
        return self.words / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def throughput_requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(sorted(self.latencies_s), q) * 1e3

    def slowest_traces(self, n: int = 5) -> list[dict]:
        """The *n* slowest requests as ``{latency_ms, trace_id}``,
        slowest first — cross-reference them against the service's
        ``GET /traces`` (or ``repro trace <id>``) for the latency
        decomposition."""
        slowest = sorted(self.traced_latencies, reverse=True)[:n]
        return [
            {"latency_ms": round(latency * 1e3, 3), "trace_id": trace_id}
            for latency, trace_id in slowest
        ]

    def to_record(self) -> dict:
        """A JSON-ready summary (for ``BENCH_service.json`` history)."""
        return {
            "clients": self.clients,
            "mode": self.mode,
            "offered_rate_rps": self.offered_rate_rps,
            "requests": self.requests,
            "words": self.words,
            "recovered": self.recovered,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "word_errors": self.word_errors,
            "http_errors": self.http_errors,
            "wall_seconds": round(self.wall_s, 3),
            "throughput_words_per_s": round(self.throughput_words_per_s, 1),
            "throughput_requests_per_s": round(
                self.throughput_requests_per_s, 1
            ),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p90": round(self.latency_ms(0.90), 3),
                "p99": round(self.latency_ms(0.99), 3),
            },
            "slowest_traces": self.slowest_traces(),
        }


def _client_loop(
    host: str,
    port: int,
    requests: int,
    words: list[int],
    words_per_request: int,
    context: str,
    offset: int,
    result: LoadResult,
    lock: threading.Lock,
    errors: list[str],
    schedule: "Callable[[int], float] | None" = None,
) -> None:
    def connect() -> HTTPConnection:
        connection = HTTPConnection(host, port, timeout=30.0)
        connection.connect()
        # Request bodies are small; without TCP_NODELAY the closed loop
        # measures Nagle/delayed-ACK stalls instead of the service.
        connection.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        return connection

    connection = connect()
    latencies: list[float] = []
    traced: list[tuple[float, str]] = []
    # A fresh trace id per request, minted with a seeded PRNG (the low
    # bit is pinned so the ids are never the all-zero value the W3C
    # format reserves).  os.urandom would cost a syscall per request;
    # the generator must never be slower than the service it measures.
    rng = random.Random(0x7ECC ^ offset)
    counted = dict(
        requests=0, words=0, recovered=0, degraded=0,
        rejected=0, word_errors=0, http_errors=0,
    )
    try:
        for index in range(requests):
            start = (offset + index * words_per_request) % len(words)
            batch = [
                words[(start + i) % len(words)]
                for i in range(words_per_request)
            ]
            body = json.dumps({"received": batch, "context": context})
            trace_id = f"{rng.getrandbits(128) | 1:032x}"
            headers = {
                "Content-Type": "application/json",
                "traceparent": (
                    f"00-{trace_id}-{rng.getrandbits(63) | 1:016x}-01"
                ),
            }
            if schedule is not None:
                # Open loop: fire at the scheduled arrival time, and
                # measure latency *from* it — a request delayed behind
                # a stalled predecessor charges that wait to the
                # service, not to the generator.
                due = schedule(index)
                now = time.perf_counter()
                if due > now:
                    time.sleep(due - now)
                began = due
            else:
                began = time.perf_counter()
            try:
                connection.request(
                    "POST", "/recover/batch", body=body, headers=headers,
                )
                response = connection.getresponse()
                text = response.read().decode("utf-8")
            except Exception:
                # One reconnect per failure keeps a dropped keep-alive
                # from ending the client early.
                connection.close()
                connection = connect()
                counted["http_errors"] += 1
                continue
            elapsed = time.perf_counter() - began
            latencies.append(elapsed)
            traced.append((elapsed, trace_id))
            counted["requests"] += 1
            counted["words"] += len(batch)
            if response.status == 429:
                counted["rejected"] += 1
            elif response.status != 200:
                counted["http_errors"] += 1
            elif '"degraded": true' in text:
                counted["degraded"] += 1
            else:
                # Count statuses by substring scan instead of parsing
                # the whole body: each per-word payload carries exactly
                # one status field, and a full json.loads of a large
                # batch response costs more CPU than the service spent
                # answering it — parsing would make the *generator*
                # the bottleneck on shared hardware.
                recovered = text.count('"status": "recovered"')
                counted["recovered"] += recovered
                counted["word_errors"] += len(batch) - recovered
    except Exception as error:  # noqa: BLE001 - reported to the caller
        errors.append(f"{type(error).__name__}: {error}")
    finally:
        connection.close()
    with lock:
        result.requests += counted["requests"]
        result.words += counted["words"]
        result.recovered += counted["recovered"]
        result.degraded += counted["degraded"]
        result.rejected += counted["rejected"]
        result.word_errors += counted["word_errors"]
        result.http_errors += counted["http_errors"]
        result.latencies_s.extend(latencies)
        result.traced_latencies.extend(traced)


def run_load(
    host: str,
    port: int,
    *,
    clients: int = 4,
    requests_per_client: int = 50,
    words_per_request: int = 64,
    context: str = "none",
    words: list[int] | None = None,
    mode: str = "closed",
    rate_rps: float | None = None,
) -> LoadResult:
    """Run one load test against ``host:port``; returns the totals.

    ``mode="closed"`` (default) lets each client pace itself on
    responses; ``mode="open"`` offers ``rate_rps`` requests/s on a
    fixed global schedule, interleaved round-robin across clients,
    with latency accounted from each request's scheduled arrival.

    Raises :class:`RuntimeError` if any client thread died abnormally
    (per-request HTTP failures are counted, not fatal), and
    :class:`ValueError` for a bad mode/rate combination.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate_rps is None or rate_rps <= 0):
        raise ValueError("open-loop mode needs a positive rate_rps")
    if words is None:
        words = generate_due_words()
    result = LoadResult(
        clients=clients,
        mode=mode,
        offered_rate_rps=rate_rps if mode == "open" else None,
    )
    lock = threading.Lock()
    errors: list[str] = []
    epoch = time.perf_counter() + 0.05  # let every thread reach its loop

    def schedule_for(client_index: int) -> Callable[[int], float] | None:
        if mode != "open":
            return None
        assert rate_rps is not None
        interval = 1.0 / rate_rps
        return lambda index: epoch + (
            client_index + index * clients
        ) * interval

    threads = [
        threading.Thread(
            target=_client_loop,
            name=f"loadgen-client-{index}",
            args=(
                host, port, requests_per_client, words, words_per_request,
                context, index * 37, result, lock, errors,
                schedule_for(index),
            ),
        )
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ended = time.perf_counter()
    result.wall_s = ended - (epoch if mode == "open" else started)
    if errors:
        raise RuntimeError(f"load client failed: {errors[0]}")
    return result
