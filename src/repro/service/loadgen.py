"""Closed-loop load generation for the DUE-recovery service.

Drives ``POST /recover/batch`` from N client threads, each issuing its
next request only after the previous one answered (closed loop: the
offered load adapts to the service instead of overrunning it), and
reports throughput plus p50/p90/p99 request latency.  Used by
``scripts/service_loadgen.py`` (standalone CLI) and
``benchmarks/bench_service_throughput.py`` (the >= 5k recoveries/s
gate), so both measure with identical methodology.

Clients reuse one :class:`http.client.HTTPConnection` each — the
service speaks HTTP/1.1 with Content-Length, so keep-alive works and
connection setup stays out of the measured latency.
"""

from __future__ import annotations

import json
import math
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection

from repro.ecc import canonical_secded_39_32
from repro.ecc.code import LinearBlockCode

__all__ = ["LoadResult", "generate_due_words", "percentile", "run_load"]


def generate_due_words(
    code: LinearBlockCode | None = None,
    count: int = 512,
    seed: int = 7,
) -> list[int]:
    """*count* double-bit-error words over *code* (true DUEs)."""
    if code is None:
        code = canonical_secded_39_32()
    rng = random.Random(seed)
    words = []
    for _ in range(count):
        message = rng.getrandbits(code.k)
        first = rng.randrange(code.n)
        second = rng.randrange(code.n - 1)
        if second >= first:
            second += 1
        words.append(code.encode(message) ^ (1 << first) ^ (1 << second))
    return words


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of pre-sorted *sorted_values*."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


@dataclass
class LoadResult:
    """Aggregate outcome of one closed-loop run."""

    clients: int
    requests: int = 0
    words: int = 0
    recovered: int = 0
    degraded: int = 0
    rejected: int = 0
    word_errors: int = 0
    http_errors: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput_words_per_s(self) -> float:
        return self.words / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def throughput_requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(sorted(self.latencies_s), q) * 1e3

    def to_record(self) -> dict:
        """A JSON-ready summary (for ``BENCH_service.json`` history)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "words": self.words,
            "recovered": self.recovered,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "word_errors": self.word_errors,
            "http_errors": self.http_errors,
            "wall_seconds": round(self.wall_s, 3),
            "throughput_words_per_s": round(self.throughput_words_per_s, 1),
            "throughput_requests_per_s": round(
                self.throughput_requests_per_s, 1
            ),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p90": round(self.latency_ms(0.90), 3),
                "p99": round(self.latency_ms(0.99), 3),
            },
        }


def _client_loop(
    host: str,
    port: int,
    requests: int,
    words: list[int],
    words_per_request: int,
    context: str,
    offset: int,
    result: LoadResult,
    lock: threading.Lock,
    errors: list[str],
) -> None:
    def connect() -> HTTPConnection:
        connection = HTTPConnection(host, port, timeout=30.0)
        connection.connect()
        # Request bodies are small; without TCP_NODELAY the closed loop
        # measures Nagle/delayed-ACK stalls instead of the service.
        connection.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        return connection

    connection = connect()
    latencies: list[float] = []
    counted = dict(
        requests=0, words=0, recovered=0, degraded=0,
        rejected=0, word_errors=0, http_errors=0,
    )
    try:
        for index in range(requests):
            start = (offset + index * words_per_request) % len(words)
            batch = [
                words[(start + i) % len(words)]
                for i in range(words_per_request)
            ]
            body = json.dumps({"received": batch, "context": context})
            began = time.perf_counter()
            try:
                connection.request(
                    "POST", "/recover/batch", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
            except Exception:
                # One reconnect per failure keeps a dropped keep-alive
                # from ending the client early.
                connection.close()
                connection = connect()
                counted["http_errors"] += 1
                continue
            latencies.append(time.perf_counter() - began)
            counted["requests"] += 1
            counted["words"] += len(batch)
            if response.status == 429:
                counted["rejected"] += 1
            elif response.status != 200:
                counted["http_errors"] += 1
            elif payload.get("degraded"):
                counted["degraded"] += 1
            else:
                for entry in payload.get("results", ()):
                    if entry.get("status") == "recovered":
                        counted["recovered"] += 1
                    else:
                        counted["word_errors"] += 1
    except Exception as error:  # noqa: BLE001 - reported to the caller
        errors.append(f"{type(error).__name__}: {error}")
    finally:
        connection.close()
    with lock:
        result.requests += counted["requests"]
        result.words += counted["words"]
        result.recovered += counted["recovered"]
        result.degraded += counted["degraded"]
        result.rejected += counted["rejected"]
        result.word_errors += counted["word_errors"]
        result.http_errors += counted["http_errors"]
        result.latencies_s.extend(latencies)


def run_load(
    host: str,
    port: int,
    *,
    clients: int = 4,
    requests_per_client: int = 50,
    words_per_request: int = 64,
    context: str = "none",
    words: list[int] | None = None,
) -> LoadResult:
    """Run the closed loop against ``host:port``; returns the totals.

    Raises :class:`RuntimeError` if any client thread died abnormally
    (per-request HTTP failures are counted, not fatal).
    """
    if words is None:
        words = generate_due_words()
    result = LoadResult(clients=clients)
    lock = threading.Lock()
    errors: list[str] = []
    threads = [
        threading.Thread(
            target=_client_loop,
            name=f"loadgen-client-{index}",
            args=(
                host, port, requests_per_client, words, words_per_request,
                context, index * 37, result, lock, errors,
            ),
        )
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_s = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"load client failed: {errors[0]}")
    return result
