"""Online DUE-recovery service: batching, backpressure, HTTP API.

The paper's recovery path is *on demand* — invoked when the memory
controller reports a detected-but-uncorrectable error.  This package
turns the offline engine into that long-lived service:

- :mod:`repro.service.catalog` — id-addressed codes, engines, and
  side-info contexts with stable identity.
- :mod:`repro.service.api` — JSON wire types and payload builders.
- :mod:`repro.service.batcher` — bounded-queue micro-batching with
  explicit backpressure, single-queue or sharded-router flavours.
- :mod:`repro.service.shards` — pre-forked worker-process shards
  (the batch engine, placement hash, and respawn policy).
- :mod:`repro.service.server` — the HTTP frontend, sharing the
  observability endpoints with :mod:`repro.obs.server`.
"""

from repro.service.api import (
    MAX_BATCH_WORDS,
    RecoveryRequest,
    detect_only_payload,
    error_payload,
    result_payload,
)
from repro.service.batcher import RecoveryBatcher, ShardedBatcher
from repro.service.catalog import (
    DEFAULT_CODE_ID,
    DEFAULT_CONTEXT_ID,
    ServiceCatalog,
)
from repro.service.selector import (
    AdaptiveCodeSelector,
    CodeSwitch,
    SelectorPolicy,
)
from repro.service.server import RecoveryService
from repro.service.shards import BatchEngine, ShardPool, ShardSpec

__all__ = [
    "MAX_BATCH_WORDS",
    "RecoveryRequest",
    "detect_only_payload",
    "error_payload",
    "result_payload",
    "RecoveryBatcher",
    "ShardedBatcher",
    "BatchEngine",
    "ShardPool",
    "ShardSpec",
    "DEFAULT_CODE_ID",
    "DEFAULT_CONTEXT_ID",
    "ServiceCatalog",
    "RecoveryService",
    "AdaptiveCodeSelector",
    "CodeSwitch",
    "SelectorPolicy",
]
