"""The DUE-recovery HTTP service: batched recovery over a JSON API.

:class:`RecoveryService` is the online face of the engine — the paper
frames SWD-ECC as an *on-demand* recovery path invoked when the memory
controller reports a DUE, and this server is that path as a long-lived
process:

- ``POST /recover`` — one received word; returns the ranked recovery
  targets (or a detect-only payload under overload/timeout).
- ``POST /recover/batch`` — many words under one (code, context).
- ``GET /healthz`` — liveness plus queue/overload state.
- ``GET /metrics`` (and ``/metrics.json``, ``/events``, ``/spans``) —
  the shared observability endpoints, mounted from
  :mod:`repro.obs.server`, so one scrape sees ``service.*`` next to
  ``swdecc.*``.

Requests flow through a :class:`~repro.service.batcher.RecoveryBatcher`
(bounded queue, micro-batching) and are executed against
:class:`~repro.service.catalog.ServiceCatalog` engines by a
:class:`~repro.service.shards.BatchEngine` — in-process by default
(``workers=0``), or across a pre-forked
:class:`~repro.service.shards.ShardPool` of worker processes
(``workers=N``) with a :class:`~repro.service.batcher.ShardedBatcher`
routing each (code, context) to its pinned shard.  Either way the
executor returns pre-serialized JSON fragments, which the HTTP layer
splices into response bodies without re-serializing.

Graceful degradation is explicit: a full queue either rejects with 429
+ ``Retry-After`` (policy ``"reject"``) or answers detect-only (policy
``"degrade"``, the default) — the DUE is still *reported*, mirroring
the paper's crash-is-the-baseline framing, but no request ever queues
without bound.  Per-request timeouts degrade the same way and cancel
the abandoned work.  A shard that dies is respawned and its batch
requeued once; if that fails too, the request degrades or 429s under
the same policy, and ``/healthz`` turns non-200 naming the unhealthy
shards until they are back.

Built on the same stdlib :class:`~http.server.ThreadingHTTPServer`
daemon-thread pattern as :class:`repro.obs.server.ObsServer`; binds
loopback by default and supports ``port=0`` for tests.
"""

from __future__ import annotations

import json
import logging
import math
import time
from collections.abc import Callable
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    ServiceError,
    ServiceOverloadError,
    ShardFailureError,
)
from repro.obs import events as obs_events
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import server as obs_server
from repro.obs import trace as obs_trace
from repro.service import api
from repro.service.batcher import RecoveryBatcher, ShardedBatcher
from repro.service.catalog import ServiceCatalog
from repro.service.selector import AdaptiveCodeSelector
from repro.service.shards import BatchEngine, ShardPool, ShardSpec

__all__ = ["RecoveryService"]

_log = logging.getLogger("repro.service.server")
_log.addHandler(logging.NullHandler())

#: Reject request bodies beyond this size outright (DoS hygiene; a
#: maximal legal batch is far smaller).
_MAX_BODY_BYTES = 8 << 20


class _RequestTrace:
    """One request's trace lifecycle, owned by the HTTP layer.

    Created at ingress by :meth:`RecoveryService.trace_ingress` —
    every POST gets one, so a ``traceparent`` response header is
    always emitted — but spans are recorded only while a collector is
    installed *and* the inbound header (if any) asked for sampling.
    ``finish`` records the root ``service.request`` span and folds the
    staged spans into the collector's slow-trace buffer; it is
    idempotent and runs in a ``finally`` so staging slots never leak.
    """

    __slots__ = (
        "context", "remote_parent_id", "collector",
        "root_start_ns", "_finished",
    )

    def __init__(
        self,
        context: obs_trace.TraceContext,
        remote_parent_id: int | None,
        collector: obs_trace.SpanCollector | None,
    ) -> None:
        self.context = context
        self.remote_parent_id = remote_parent_id
        self.collector = collector
        self.root_start_ns = time.perf_counter_ns()
        self._finished = False
        if collector is not None:
            collector.begin_trace(context.trace_id)

    @property
    def traceparent(self) -> str:
        """The outbound ``traceparent`` response header value."""
        return self.context.to_traceparent()

    @property
    def recording(self) -> bool:
        """True when spans are being recorded for this request."""
        return self.collector is not None

    def stage(self, name: str, start_ns: int, end_ns: int) -> None:
        """Record one stage span under the request root (if recording)."""
        if self.collector is not None:
            self.collector.record(obs_trace.Span(
                name=name,
                start_ns=start_ns,
                end_ns=max(end_ns, start_ns),
                depth=1,
                span_id=obs_trace.new_span_id(),
                parent_id=self.context.span_id,
                trace_id=self.context.trace_id,
            ))

    def finish(self, end_ns: int | None = None) -> None:
        """Record the root span and retire the trace (idempotent)."""
        if self._finished:
            return
        self._finished = True
        collector = self.collector
        if collector is None:
            return
        if end_ns is None:
            end_ns = time.perf_counter_ns()
        collector.record(obs_trace.Span(
            name="service.request",
            start_ns=self.root_start_ns,
            end_ns=max(end_ns, self.root_start_ns),
            depth=0,
            span_id=self.context.span_id,
            parent_id=None,
            trace_id=self.context.trace_id,
        ))
        collector.finish_trace(
            self.context.trace_id,
            root_span_id=self.context.span_id,
            remote_parent_id=self.remote_parent_id,
        )


class _RecoveryRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`RecoveryService`."""

    server_version = "repro-recovery/1.0"
    protocol_version = "HTTP/1.1"
    # Small JSON responses over keep-alive connections otherwise hit
    # the Nagle/delayed-ACK interaction (~40 ms per round-trip).
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        service: RecoveryService = self.server.service  # type: ignore[attr-defined]
        url = urlparse(self.path)
        try:
            if url.path == "/healthz":
                status, content_type, body = service.healthz_endpoint()
            else:
                routed = obs_server.dispatch_get(
                    service, url.path, parse_qs(url.query)
                )
                if routed is None:
                    self._reply(404, "text/plain; charset=utf-8",
                                f"no such endpoint: {url.path}\n")
                    return
                status, content_type, body = routed
            self._reply(status, content_type, body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, "text/plain; charset=utf-8", f"{error}\n")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        service: RecoveryService = self.server.service  # type: ignore[attr-defined]
        url = urlparse(self.path)
        if url.path not in ("/recover", "/recover/batch"):
            self._reply(404, "application/json",
                        json.dumps({"error": f"no such endpoint: {url.path}"})
                        + "\n")
            return
        trace = service.trace_ingress(self.headers.get("traceparent"))
        try:
            try:
                # handle_recover returns a fully serialized body:
                # success responses are spliced from cached JSON
                # fragments, and re-serializing them here would cost
                # more than the recovery itself on the cache-hit path.
                status, body, headers = service.handle_recover(
                    self._read_body(),
                    batch=url.path.endswith("/batch"),
                    trace=trace,
                )
            except BrokenPipeError:  # pragma: no cover - client went away
                return
            except ServiceError as error:
                status, headers = 400, {}
                body = (
                    json.dumps({"error": str(error)}, sort_keys=True) + "\n"
                )
            except Exception as error:  # pragma: no cover - defensive
                status, headers = 500, {}
                body = (
                    json.dumps({"error": str(error)}, sort_keys=True) + "\n"
                )
            headers = {**headers, "traceparent": trace.traceparent}
            respond_start_ns = time.perf_counter_ns()
            try:
                self._reply(status, "application/json", body, headers)
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            respond_end_ns = time.perf_counter_ns()
            service.observe_respond(trace, respond_start_ns, respond_end_ns)
            trace.finish(respond_end_ns)
        finally:
            trace.finish()

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ServiceError("bad Content-Length header")
        if length <= 0:
            raise ServiceError("request needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length)

    def _reply(
        self,
        status: int,
        content_type: str,
        body: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        _log.debug("%s %s", self.address_string(), format % args)


class RecoveryService:
    """Serve batched DUE recovery over HTTP.

    Parameters
    ----------
    catalog:
        Code/context resolution (default: a fresh
        :class:`ServiceCatalog`).
    host / port:
        Bind address; port 0 picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    max_batch / linger_s / queue_limit:
        Micro-batching knobs, forwarded to the
        :class:`RecoveryBatcher`.
    workers:
        ``0`` (default) executes batches in-process on the batcher's
        worker thread.  ``N >= 1`` pre-forks N shard processes at
        :meth:`start`, each owning its own catalog and engines, and
        routes batches to them by (code, context) hash; the
        ``queue_limit`` then divides across per-shard queues.
    overload_policy:
        ``"degrade"`` answers detect-only when the queue is full;
        ``"reject"`` answers 429 with a ``Retry-After`` hint.
    default_timeout_s:
        How long a request waits for its batch before degrading, when
        the request does not carry its own ``timeout_ms``.
    report_cost:
        Attach a per-request ``cost`` block (op-count deltas, modeled
        joules) to successful ``/recover`` payloads.  Off by default:
        the block reveals how much work each word cost, which callers
        do not usually need.  Batch-level ``service.batch_ops`` /
        ``service.batch_joules`` histograms are recorded regardless.
    registry / event_log:
        Observability overrides (tests use private ones).
    selector:
        Optional :class:`~repro.service.selector.AdaptiveCodeSelector`
        polled after each served request, so its ``selector.*``
        families stay fresh on /metrics.  Advisory only: request code
        ids are never rewritten, so served answers remain bit-identical
        to serial engines.
    """

    def __init__(
        self,
        catalog: ServiceCatalog | None = None,
        host: str = "127.0.0.1",
        port: int = 9200,
        max_batch: int = 256,
        linger_s: float = 0.002,
        queue_limit: int = 4096,
        workers: int = 0,
        overload_policy: str = "degrade",
        default_timeout_s: float = 2.0,
        report_cost: bool = False,
        registry: obs_metrics.MetricsRegistry | None = None,
        event_log: obs_events.EventLog | None = None,
        selector: "AdaptiveCodeSelector | None" = None,
    ) -> None:
        if overload_policy not in ("degrade", "reject"):
            raise ServiceError(
                f"overload_policy must be 'degrade' or 'reject', "
                f"got {overload_policy!r}"
            )
        if default_timeout_s <= 0:
            raise ServiceError(
                f"default_timeout_s must be > 0, got {default_timeout_s}"
            )
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self._catalog = catalog if catalog is not None else ServiceCatalog()
        self._host = host
        self._requested_port = port
        self._max_batch = max_batch
        self._linger_s = linger_s
        self._queue_limit = queue_limit
        self._workers = workers
        self._overload_policy = overload_policy
        self._default_timeout_s = default_timeout_s
        self._report_cost = report_cost
        self._registry = registry
        self._event_log = event_log
        self._selector = selector
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: Thread | None = None
        self._pool: ShardPool | None = None
        resolved = self.registry
        self._batcher: RecoveryBatcher | ShardedBatcher | None = None
        self._engine: BatchEngine | None = None
        if workers == 0:
            # In-process mode: the batcher's worker thread is the
            # single consumer of one BatchEngine's catalog engines.
            self._engine = BatchEngine(
                self._catalog,
                registry=resolved,
                report_cost=report_cost,
            )
            self._batcher = RecoveryBatcher(
                self._engine.execute,
                max_batch=max_batch,
                linger_s=linger_s,
                queue_limit=queue_limit,
                registry=resolved,
            )
        # workers >= 1: the pool and sharded batcher are built in
        # start(), after registrations settle and before any server
        # thread exists (forking from a threaded parent is how stdlib
        # locks end up held forever in the child).
        self._c_requests = resolved.counter(
            "service.requests", help="Recovery requests received"
        )
        self._c_degraded = resolved.counter(
            "service.degraded",
            help="Requests answered detect-only (overload or timeout)",
        )
        self._c_rejections = resolved.counter(
            "service.rejections",
            help="Requests rejected with 429 under the reject policy",
        )
        self._c_timeouts = resolved.counter(
            "service.timeouts",
            help="Requests that timed out waiting for their batch",
        )
        self._h_request_seconds = resolved.histogram(
            "service.request_seconds",
            help="End-to-end request latency (parse to response body)",
        )
        # The HTTP-layer halves of the per-request stage decomposition
        # (the batcher owns queue_wait / linger / shard_exec).
        self._h_stage_serialize = resolved.histogram(
            "service.stage.serialize",
            help="Per request: response-body construction "
            "(fragment splice / degradation payload)",
        )
        self._h_stage_respond = resolved.histogram(
            "service.stage.respond",
            help="Per request: writing the HTTP response to the socket",
        )

    # ------------------------------------------------------------------
    # Shared-observability owner protocol (see repro.obs.server)
    # ------------------------------------------------------------------

    @property
    def registry(self) -> obs_metrics.MetricsRegistry:
        """The registry served and instrumented (default: process-wide)."""
        return (
            self._registry if self._registry is not None
            else obs_metrics.get_registry()
        )

    @property
    def event_log(self) -> obs_events.EventLog:
        """The event log served (default: process-wide)."""
        return (
            self._event_log if self._event_log is not None
            else obs_events.get_event_log()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves port 0 after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self.port}"

    @property
    def catalog(self) -> ServiceCatalog:
        """The code/context catalog answering this server's requests."""
        return self._catalog

    @property
    def workers(self) -> int:
        """Configured shard processes (0 = in-process execution)."""
        return self._workers

    @property
    def selector(self) -> AdaptiveCodeSelector | None:
        """The advisory code selector, when one was attached."""
        return self._selector

    @property
    def batcher(self) -> RecoveryBatcher | ShardedBatcher:
        """The underlying micro-batcher (exposed for tests/tuning).

        In sharded mode the batcher only exists while the service is
        running (it is built against the live shard pool).
        """
        if self._batcher is None:
            raise ServiceError(
                "sharded batcher exists only while the service runs"
            )
        return self._batcher

    @property
    def shard_pool(self) -> ShardPool | None:
        """The live shard pool, or ``None`` (in-process / stopped)."""
        return self._pool

    def start(self) -> "RecoveryService":
        """Fork shards (if any), bind, and serve on a daemon thread.

        Strictly ordered: shard processes fork and pre-warm *before*
        the batcher worker and HTTP threads exist, so every fork
        happens from an effectively single-threaded parent.
        """
        if self._httpd is not None:
            raise ServiceError("RecoveryService is already running")
        if self._workers >= 1:
            spec = ShardSpec.from_catalog(
                self._catalog,
                preload=self._catalog.built_benchmark_context_ids(),
                report_cost=self._report_cost,
            )
            # The spec above is the workers' view of the catalog for
            # the pool's whole lifetime; reject registrations that
            # could never reach them (thawed again in stop()).
            self._catalog.freeze(
                f"{self._workers} shard worker(s) forked with a "
                "registration snapshot at service start"
            )
            self._pool = ShardPool(
                self._workers, spec, registry=self.registry
            ).start()
            self._batcher = ShardedBatcher(
                self._pool,
                max_batch=self._max_batch,
                linger_s=self._linger_s,
                queue_limit=self._queue_limit,
                registry=self.registry,
            )
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _RecoveryRequestHandler
        )
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        assert self._batcher is not None
        self._batcher.start()
        self._httpd = httpd
        self._thread = Thread(
            target=httpd.serve_forever,
            name=f"repro-recovery-service:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "recovery service listening on %s (%d shard workers)",
            self.url, self._workers,
        )
        return self

    def stop(self) -> None:
        """Stop accepting requests, drain batcher and shards (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        try:
            if httpd is not None:
                httpd.shutdown()
                httpd.server_close()
            if thread is not None:
                thread.join(timeout=5.0)
        finally:
            batcher, pool = self._batcher, self._pool
            if self._workers >= 1:
                self._batcher = None
                self._pool = None
                self._catalog.thaw()
            try:
                if batcher is not None:
                    batcher.stop()
            finally:
                if pool is not None:
                    pool.stop()

    def __enter__(self) -> "RecoveryService":
        return self.start() if not self.running else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------

    def trace_ingress(self, traceparent: str | None) -> _RequestTrace:
        """Open one request's trace from its inbound header (if any).

        A well-formed inbound ``traceparent`` donates its trace id (so
        the caller can correlate) and becomes the remote parent of our
        root span; otherwise fresh ids are minted.  Recording requires
        both an installed collector and the inbound sampled flag — an
        unsampled inbound header is propagated but never recorded.
        """
        inbound = obs_trace.parse_traceparent(traceparent)
        collector = obs_trace.current_collector()
        sampled_in = inbound.sampled if inbound is not None else True
        recording = collector is not None and sampled_in
        if inbound is not None:
            context = obs_trace.TraceContext(
                inbound.trace_id, obs_trace.new_span_id(), recording
            )
            remote_parent = inbound.span_id
        else:
            context = obs_trace.TraceContext.new(sampled=recording)
            remote_parent = None
        return _RequestTrace(
            context, remote_parent, collector if recording else None
        )

    def observe_respond(
        self, trace: _RequestTrace, start_ns: int, end_ns: int
    ) -> None:
        """Account the socket-write stage (histogram always, span when
        recording)."""
        self._h_stage_respond.observe(max(end_ns - start_ns, 0) / 1e9)
        trace.stage("service.stage.respond", start_ns, end_ns)

    def handle_recover(
        self, body: bytes, batch: bool, trace: _RequestTrace | None = None
    ) -> tuple[int, str, dict[str, str]]:
        """Process one POST body; returns (status, body, headers).

        The returned body is already serialized: success responses are
        spliced together from the executor's pre-serialized per-word
        fragments, so a cache-served word is never re-serialized.

        When *trace* is given (the HTTP layer always passes one), its
        trace id is bound into any structured JSON logs emitted while
        the request is handled, its context rides the queued request,
        and the serialize stage is recorded.
        """
        if trace is None:
            return self._handle_recover(body, batch, None)
        with obs_logging.bind(trace_id=trace.context.trace_id):
            return self._handle_recover(body, batch, trace)

    def _handle_recover(
        self, body: bytes, batch: bool, trace: _RequestTrace | None
    ) -> tuple[int, str, dict[str, str]]:
        started = time.perf_counter()
        self._c_requests.inc()
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}")
        request = api.RecoveryRequest.from_json(
            parsed, batch=batch,
            width_for=lambda code_id: self._catalog.code(code_id).n,
        )
        if trace is not None and trace.recording:
            request = replace(request, trace=trace.context)
        # Resolve the context now: unknown ids are a 400, not a queued
        # failure, and the build cost is paid before entering the queue.
        self._catalog.context(request.context_id)
        batcher = self._batcher
        if batcher is None:
            raise ServiceError(
                "recovery service is not running; request refused"
            )
        try:
            future = batcher.submit(request)
        except ServiceOverloadError as overload:
            return self._overload_response(request, overload, batch, started)
        timeout = (
            request.timeout_s if request.timeout_s is not None
            else self._default_timeout_s
        )
        try:
            outcome = future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()  # shed the work if the batch hasn't claimed it
            self._c_timeouts.inc()
            self._c_degraded.inc()
            body_out = self._serialize_stage(
                trace, lambda: self._degraded_body(request, "timeout", batch)
            )
            self._h_request_seconds.observe(time.perf_counter() - started)
            return 200, body_out, {}
        except ShardFailureError as failure:
            # Respawn-and-requeue already ran inside the pool; reaching
            # here means the batch is unservable right now.  Same
            # client contract as overload: detect-only or 429.
            return self._shard_failure_response(
                request, failure, batch, started
            )
        body_out = self._serialize_stage(
            trace, lambda: self._success_body(request, outcome, batch)
        )
        if self._selector is not None:
            # Incremental: cost proportional to events since last poll.
            self._selector.poll()
        self._h_request_seconds.observe(time.perf_counter() - started)
        return 200, body_out, {}

    def _serialize_stage(
        self, trace: _RequestTrace | None, build: "Callable[[], str]"
    ) -> str:
        start_ns = time.perf_counter_ns()
        body_out = build()
        end_ns = time.perf_counter_ns()
        self._h_stage_serialize.observe((end_ns - start_ns) / 1e9)
        if trace is not None:
            trace.stage("service.stage.serialize", start_ns, end_ns)
        return body_out

    def _success_body(
        self, request: api.RecoveryRequest, outcome: dict, batch: bool
    ) -> str:
        # Key order matches json.dumps(..., sort_keys=True) of the old
        # dict payload, so clients and golden tests see stable bodies.
        fragments = outcome["fragments"]
        head = (
            f'{{"code": {json.dumps(request.code_id)}, '
            f'"context": {json.dumps(request.context_id)}'
        )
        if outcome.get("cost") is not None:
            head += f', "cost": {json.dumps(outcome["cost"], sort_keys=True)}'
        head += ', "degraded": false'
        if batch:
            joined = ", ".join(fragments)
            return (
                f'{head}, "results": [{joined}], '
                f'"words": {len(fragments)}}}\n'
            )
        return f'{head}, "result": {fragments[0]}}}\n'

    def _degraded_payload(
        self, request: api.RecoveryRequest, reason: str, batch: bool,
        retry_after: float | None = None,
    ) -> dict:
        detect = [
            api.detect_only_payload(word, reason) for word in request.words
        ]
        base = {
            "code": request.code_id,
            "context": request.context_id,
            "degraded": True,
            "reason": reason,
        }
        if retry_after is not None:
            base["retry_after_s"] = round(retry_after, 4)
        if batch:
            return {**base, "words": len(detect), "results": detect}
        return {**base, "result": detect[0]}

    def _degraded_body(
        self, request: api.RecoveryRequest, reason: str, batch: bool,
        retry_after: float | None = None,
    ) -> str:
        payload = self._degraded_payload(
            request, reason, batch, retry_after=retry_after
        )
        return json.dumps(payload, sort_keys=True) + "\n"

    def _overload_response(
        self,
        request: api.RecoveryRequest,
        overload: ServiceOverloadError,
        batch: bool,
        started: float,
    ) -> tuple[int, str, dict[str, str]]:
        self._h_request_seconds.observe(time.perf_counter() - started)
        if self._overload_policy == "reject":
            self._c_rejections.inc()
            payload = {
                "error": "overloaded",
                "detail": str(overload),
                "retry_after_s": round(overload.retry_after, 4),
            }
            headers = {
                "Retry-After": str(max(1, math.ceil(overload.retry_after)))
            }
            return 429, json.dumps(payload, sort_keys=True) + "\n", headers
        self._c_degraded.inc()
        body = self._degraded_body(
            request, "overload", batch, retry_after=overload.retry_after
        )
        return 200, body, {}

    def _shard_failure_response(
        self,
        request: api.RecoveryRequest,
        failure: ShardFailureError,
        batch: bool,
        started: float,
    ) -> tuple[int, str, dict[str, str]]:
        self._h_request_seconds.observe(time.perf_counter() - started)
        if self._overload_policy == "reject":
            self._c_rejections.inc()
            payload = {
                "error": "shard-failure",
                "detail": str(failure),
                "shard": failure.shard,
                "retry_after_s": 1.0,
            }
            return (
                429,
                json.dumps(payload, sort_keys=True) + "\n",
                {"Retry-After": "1"},
            )
        self._c_degraded.inc()
        return 200, self._degraded_body(request, "shard-failure", batch), {}

    def healthz_endpoint(self) -> tuple[int, str, str]:
        """Liveness plus queue/overload/shard state for probes.

        In-process mode is always 200 while up.  Sharded mode degrades
        to 503 whenever any shard is not serving, with the unhealthy
        shards named — orchestrators restart or de-route on this, and
        operators see *which* worker died without reading logs.
        """
        status = 200
        batcher = self._batcher
        body = {
            "status": "ok",
            "queue_depth": batcher.queued_words() if batcher else 0,
            "queue_limit": (
                batcher.queue_limit if batcher else self._queue_limit
            ),
            "overload_policy": self._overload_policy,
            "batching": batcher.running if batcher else False,
            "workers": self._workers,
            "precompile": self._catalog.precompile,
        }
        pool = self._pool
        if pool is not None:
            states = pool.states()
            unhealthy = {
                str(index): state
                for index, state in states.items()
                if state != "ok"
            }
            body["shards"] = {
                str(index): state for index, state in states.items()
            }
            if isinstance(batcher, ShardedBatcher):
                body["shard_queue_depths"] = batcher.shard_queue_depths()
            if unhealthy:
                status = 503
                body["status"] = "degraded"
                body["unhealthy_shards"] = unhealthy
        elif self._workers >= 1:
            # Sharded service that is not running (stopped or not yet
            # started): report it as such rather than lying "ok".
            status = 503
            body["status"] = "stopped"
        return (
            status,
            "application/json",
            json.dumps(body, sort_keys=True) + "\n",
        )
