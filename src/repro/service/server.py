"""The DUE-recovery HTTP service: batched recovery over a JSON API.

:class:`RecoveryService` is the online face of the engine — the paper
frames SWD-ECC as an *on-demand* recovery path invoked when the memory
controller reports a DUE, and this server is that path as a long-lived
process:

- ``POST /recover`` — one received word; returns the ranked recovery
  targets (or a detect-only payload under overload/timeout).
- ``POST /recover/batch`` — many words under one (code, context).
- ``GET /healthz`` — liveness plus queue/overload state.
- ``GET /metrics`` (and ``/metrics.json``, ``/events``, ``/spans``) —
  the shared observability endpoints, mounted from
  :mod:`repro.obs.server`, so one scrape sees ``service.*`` next to
  ``swdecc.*``.

Requests flow through a :class:`~repro.service.batcher.RecoveryBatcher`
(bounded queue, micro-batching) and are executed by the single worker
thread against :class:`~repro.service.catalog.ServiceCatalog` engines.
Graceful degradation is explicit: a full queue either rejects with 429
+ ``Retry-After`` (policy ``"reject"``) or answers detect-only (policy
``"degrade"``, the default) — the DUE is still *reported*, mirroring
the paper's crash-is-the-baseline framing, but no request ever queues
without bound.  Per-request timeouts degrade the same way and cancel
the abandoned work.

Built on the same stdlib :class:`~http.server.ThreadingHTTPServer`
daemon-thread pattern as :class:`repro.obs.server.ObsServer`; binds
loopback by default and supports ``port=0`` for tests.
"""

from __future__ import annotations

import json
import logging
import math
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, ServiceError, ServiceOverloadError
from repro.obs import energy as obs_energy
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import server as obs_server
from repro.service import api
from repro.service.batcher import RecoveryBatcher
from repro.service.catalog import ServiceCatalog

__all__ = ["RecoveryService"]

_log = logging.getLogger("repro.service.server")
_log.addHandler(logging.NullHandler())

#: Reject request bodies beyond this size outright (DoS hygiene; a
#: maximal legal batch is far smaller).
_MAX_BODY_BYTES = 8 << 20


class _RecoveryRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`RecoveryService`."""

    server_version = "repro-recovery/1.0"
    protocol_version = "HTTP/1.1"
    # Small JSON responses over keep-alive connections otherwise hit
    # the Nagle/delayed-ACK interaction (~40 ms per round-trip).
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        service: RecoveryService = self.server.service  # type: ignore[attr-defined]
        url = urlparse(self.path)
        try:
            if url.path == "/healthz":
                status, content_type, body = service.healthz_endpoint()
            else:
                routed = obs_server.dispatch_get(
                    service, url.path, parse_qs(url.query)
                )
                if routed is None:
                    self._reply(404, "text/plain; charset=utf-8",
                                f"no such endpoint: {url.path}\n")
                    return
                status, content_type, body = routed
            self._reply(status, content_type, body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, "text/plain; charset=utf-8", f"{error}\n")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        service: RecoveryService = self.server.service  # type: ignore[attr-defined]
        url = urlparse(self.path)
        if url.path not in ("/recover", "/recover/batch"):
            self._reply(404, "application/json",
                        json.dumps({"error": f"no such endpoint: {url.path}"})
                        + "\n")
            return
        try:
            status, payload, headers = service.handle_recover(
                self._read_body(), batch=url.path.endswith("/batch")
            )
        except BrokenPipeError:  # pragma: no cover - client went away
            return
        except ServiceError as error:
            status, payload, headers = 400, {"error": str(error)}, {}
        except Exception as error:  # pragma: no cover - defensive
            status, payload, headers = 500, {"error": str(error)}, {}
        try:
            self._reply(
                status, "application/json",
                json.dumps(payload, sort_keys=True) + "\n", headers,
            )
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ServiceError("bad Content-Length header")
        if length <= 0:
            raise ServiceError("request needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length)

    def _reply(
        self,
        status: int,
        content_type: str,
        body: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        _log.debug("%s %s", self.address_string(), format % args)


class RecoveryService:
    """Serve batched DUE recovery over HTTP.

    Parameters
    ----------
    catalog:
        Code/context resolution (default: a fresh
        :class:`ServiceCatalog`).
    host / port:
        Bind address; port 0 picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    max_batch / linger_s / queue_limit:
        Micro-batching knobs, forwarded to the
        :class:`RecoveryBatcher`.
    overload_policy:
        ``"degrade"`` answers detect-only when the queue is full;
        ``"reject"`` answers 429 with a ``Retry-After`` hint.
    default_timeout_s:
        How long a request waits for its batch before degrading, when
        the request does not carry its own ``timeout_ms``.
    report_cost:
        Attach a per-request ``cost`` block (op-count deltas, modeled
        joules) to successful ``/recover`` payloads.  Off by default:
        the block reveals how much work each word cost, which callers
        do not usually need.  Batch-level ``service.batch_ops`` /
        ``service.batch_joules`` histograms are recorded regardless.
    registry / event_log:
        Observability overrides (tests use private ones).
    """

    def __init__(
        self,
        catalog: ServiceCatalog | None = None,
        host: str = "127.0.0.1",
        port: int = 9200,
        max_batch: int = 256,
        linger_s: float = 0.002,
        queue_limit: int = 4096,
        overload_policy: str = "degrade",
        default_timeout_s: float = 2.0,
        report_cost: bool = False,
        registry: obs_metrics.MetricsRegistry | None = None,
        event_log: obs_events.EventLog | None = None,
    ) -> None:
        if overload_policy not in ("degrade", "reject"):
            raise ServiceError(
                f"overload_policy must be 'degrade' or 'reject', "
                f"got {overload_policy!r}"
            )
        if default_timeout_s <= 0:
            raise ServiceError(
                f"default_timeout_s must be > 0, got {default_timeout_s}"
            )
        self._catalog = catalog if catalog is not None else ServiceCatalog()
        self._host = host
        self._requested_port = port
        self._overload_policy = overload_policy
        self._default_timeout_s = default_timeout_s
        self._report_cost = report_cost
        self._registry = registry
        self._event_log = event_log
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: Thread | None = None
        resolved = self.registry
        self._batcher = RecoveryBatcher(
            self._execute_batch,
            max_batch=max_batch,
            linger_s=linger_s,
            queue_limit=queue_limit,
            registry=resolved,
        )
        self._c_requests = resolved.counter(
            "service.requests", help="Recovery requests received"
        )
        self._c_recoveries = resolved.counter(
            "service.recoveries", help="Words heuristically recovered"
        )
        self._c_word_errors = resolved.counter(
            "service.recovery_errors",
            help="Words that failed recovery (not a DUE, no candidates)",
        )
        self._c_degraded = resolved.counter(
            "service.degraded",
            help="Requests answered detect-only (overload or timeout)",
        )
        self._c_rejections = resolved.counter(
            "service.rejections",
            help="Requests rejected with 429 under the reject policy",
        )
        self._c_timeouts = resolved.counter(
            "service.timeouts",
            help="Requests that timed out waiting for their batch",
        )
        self._h_request_seconds = resolved.histogram(
            "service.request_seconds",
            help="End-to-end request latency (parse to response body)",
        )
        self._h_batch_ops = resolved.histogram(
            "service.batch_ops",
            buckets=(64, 256, 1024, 4096, 16384, 65536),
            help="Decode op-counter delta per executed micro-batch",
        )
        self._h_batch_joules = resolved.histogram(
            "service.batch_joules",
            buckets=(1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3),
            help="Modeled energy per executed micro-batch",
        )

    # ------------------------------------------------------------------
    # Shared-observability owner protocol (see repro.obs.server)
    # ------------------------------------------------------------------

    @property
    def registry(self) -> obs_metrics.MetricsRegistry:
        """The registry served and instrumented (default: process-wide)."""
        return (
            self._registry if self._registry is not None
            else obs_metrics.get_registry()
        )

    @property
    def event_log(self) -> obs_events.EventLog:
        """The event log served (default: process-wide)."""
        return (
            self._event_log if self._event_log is not None
            else obs_events.get_event_log()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves port 0 after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self.port}"

    @property
    def catalog(self) -> ServiceCatalog:
        """The code/context catalog answering this server's requests."""
        return self._catalog

    @property
    def batcher(self) -> RecoveryBatcher:
        """The underlying micro-batcher (exposed for tests/tuning)."""
        return self._batcher

    def start(self) -> "RecoveryService":
        """Bind, start the batcher, and serve on a daemon thread."""
        if self._httpd is not None:
            raise ServiceError("RecoveryService is already running")
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _RecoveryRequestHandler
        )
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        self._batcher.start()
        self._httpd = httpd
        self._thread = Thread(
            target=httpd.serve_forever,
            name=f"repro-recovery-service:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("recovery service listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop accepting requests, drain the batcher (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        try:
            if httpd is not None:
                httpd.shutdown()
                httpd.server_close()
            if thread is not None:
                thread.join(timeout=5.0)
        finally:
            self._batcher.stop()

    def __enter__(self) -> "RecoveryService":
        return self.start() if not self.running else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------

    def handle_recover(
        self, body: bytes, batch: bool
    ) -> tuple[int, dict, dict[str, str]]:
        """Process one POST body; returns (status, payload, headers)."""
        started = time.perf_counter()
        self._c_requests.inc()
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}")
        request = api.RecoveryRequest.from_json(
            parsed, batch=batch,
            width_for=lambda code_id: self._catalog.code(code_id).n,
        )
        # Resolve the context now: unknown ids are a 400, not a queued
        # failure, and the build cost is paid before entering the queue.
        self._catalog.context(request.context_id)
        try:
            future = self._batcher.submit(request)
        except ServiceOverloadError as overload:
            return self._overload_response(request, overload, batch, started)
        timeout = (
            request.timeout_s if request.timeout_s is not None
            else self._default_timeout_s
        )
        try:
            outcome = future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()  # shed the work if the batch hasn't claimed it
            self._c_timeouts.inc()
            self._c_degraded.inc()
            payload = self._degraded_payload(request, "timeout", batch)
            self._h_request_seconds.observe(time.perf_counter() - started)
            return 200, payload, {}
        payload = self._success_payload(request, outcome, batch)
        self._h_request_seconds.observe(time.perf_counter() - started)
        return 200, payload, {}

    def _success_payload(
        self, request: api.RecoveryRequest, outcome: dict, batch: bool
    ) -> dict:
        results = outcome["payloads"]
        base = {
            "code": request.code_id,
            "context": request.context_id,
            "degraded": False,
        }
        if outcome.get("cost") is not None:
            base["cost"] = outcome["cost"]
        if batch:
            return {**base, "words": len(results), "results": results}
        return {**base, "result": results[0]}

    def _degraded_payload(
        self, request: api.RecoveryRequest, reason: str, batch: bool,
        retry_after: float | None = None,
    ) -> dict:
        detect = [
            api.detect_only_payload(word, reason) for word in request.words
        ]
        base = {
            "code": request.code_id,
            "context": request.context_id,
            "degraded": True,
            "reason": reason,
        }
        if retry_after is not None:
            base["retry_after_s"] = round(retry_after, 4)
        if batch:
            return {**base, "words": len(detect), "results": detect}
        return {**base, "result": detect[0]}

    def _overload_response(
        self,
        request: api.RecoveryRequest,
        overload: ServiceOverloadError,
        batch: bool,
        started: float,
    ) -> tuple[int, dict, dict[str, str]]:
        self._h_request_seconds.observe(time.perf_counter() - started)
        if self._overload_policy == "reject":
            self._c_rejections.inc()
            payload = {
                "error": "overloaded",
                "detail": str(overload),
                "retry_after_s": round(overload.retry_after, 4),
            }
            headers = {
                "Retry-After": str(max(1, math.ceil(overload.retry_after)))
            }
            return 429, payload, headers
        self._c_degraded.inc()
        payload = self._degraded_payload(
            request, "overload", batch, retry_after=overload.retry_after
        )
        return 200, payload, {}

    def healthz_endpoint(self) -> tuple[int, str, str]:
        """Liveness plus queue/overload state for probes."""
        queued = self._batcher.queued_words()
        body = {
            "status": "ok",
            "queue_depth": queued,
            "queue_limit": self._batcher.queue_limit,
            "overload_policy": self._overload_policy,
            "batching": self._batcher.running,
        }
        return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"

    # ------------------------------------------------------------------
    # Batch execution (called from the batcher's worker thread)
    # ------------------------------------------------------------------

    def _execute_batch(
        self, requests: list[api.RecoveryRequest]
    ) -> list[dict]:
        """Run one micro-batch; the only caller of the engines.

        Requests are grouped by (code, context) so each group drains
        back-to-back through one engine — preserving the context-cache
        generation across the group — while results return in request
        order as ``{"payloads": [...], "cost": ...}`` outcome objects.
        Per-word errors (not a DUE, no candidates) are captured per
        word; they never fail a neighbouring request.

        Cost attribution reads op-counter deltas between
        :func:`repro.obs.energy.op_counts` snapshots.  The batcher's
        worker thread is the single consumer of the engines — and of
        the ``ops.*`` counters they bump — so the deltas are race-free.
        """
        groups: dict[tuple[str, str], list[int]] = {}
        for index, request in enumerate(requests):
            key = (request.code_id, request.context_id)
            groups.setdefault(key, []).append(index)
        outcomes: list[dict | None] = [None] * len(requests)
        recovered = 0
        failed = 0
        model = obs_energy.get_energy_model()
        batch_before = obs_energy.op_counts(model=model)
        for (code_id, context_id), indexes in groups.items():
            engine, context = self._catalog.resolve(code_id, context_id)
            for index in indexes:
                request = requests[index]
                before = (
                    obs_energy.op_counts(model=model)
                    if self._report_cost else None
                )
                payloads = []
                for word in request.words:
                    try:
                        result = engine.recover(word, context)
                    except ReproError as error:
                        failed += 1
                        payloads.append(api.error_payload(word, error))
                    else:
                        recovered += 1
                        payloads.append(api.result_payload(word, result))
                cost = None
                if before is not None:
                    after = obs_energy.op_counts(model=model)
                    deltas = {
                        name: after[name] - before[name]
                        for name in after
                        if after[name] != before[name]
                    }
                    joules = model.joules(deltas)
                    cost = {
                        "ops": deltas,
                        "joules": joules,
                        "joules_per_word": joules / len(request.words),
                    }
                outcomes[index] = {"payloads": payloads, "cost": cost}
        batch_after = obs_energy.op_counts(model=model)
        batch_deltas = {
            name: batch_after[name] - batch_before[name]
            for name in batch_after
        }
        self._h_batch_ops.observe(sum(batch_deltas.values()))
        self._h_batch_joules.observe(model.joules(batch_deltas))
        if recovered:
            self._c_recoveries.inc(recovered)
        if failed:
            self._c_word_errors.inc(failed)
        return [outcome for outcome in outcomes if outcome is not None]
