"""Engine/context catalog for the DUE-recovery service.

Requests name their code and side-info context by *id* rather than
shipping matrices and frequency tables over the wire: the service owns
one :class:`~repro.core.swdecc.SwdEcc` engine per registered code and
one :class:`~repro.core.sideinfo.RecoveryContext` per registered
context, and resolves ``(code_id, context_id)`` per batch.

Two invariants make this safe and fast:

- **Stable identity** — the catalog always returns the *same* context
  object for a context id, so the engines' identity-keyed
  :class:`~repro.core.cache.ContextCache` generations survive across
  batches that reuse a context (the common case: one hot workload).
- **Single consumer** — engines are only ever driven by the batcher's
  worker thread (see :mod:`repro.service.batcher`), so their memo
  dicts need no locking.  Building catalog entries is lazy and does
  take a lock, because HTTP handler threads may race to *resolve*.

Engines use deterministic (:data:`~repro.core.swdecc.TieBreak.FIRST`)
tie-breaking: a service answer must not depend on RNG state that
earlier requests advanced, and determinism is what makes batched
results bit-identical to serial :meth:`SwdEcc.recover` calls.
"""

from __future__ import annotations

import random
from threading import Lock

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import (
    canonical_secded_39_32,
    daec_code,
    dec_code,
    dected_code,
    hsiao_39_32,
)
from repro.ecc.code import LinearBlockCode
from repro.errors import ServiceError
from repro.program.profiles import BENCHMARK_NAMES
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark

__all__ = ["ServiceCatalog", "DEFAULT_CODE_ID", "DEFAULT_CONTEXT_ID"]

#: Code id assumed when a request omits ``code``.
DEFAULT_CODE_ID = "secded-39-32"

#: Context id assumed when a request omits ``context``.
DEFAULT_CONTEXT_ID = "none"

#: Image size used when lazily synthesizing a benchmark context.
_CONTEXT_IMAGE_LENGTH = 2048

#: Benchmark-synthesis seed (pins every context's frequency table).
_CONTEXT_SEED = 2016

#: Built-in code families, resolvable by id in every process.  Factory
#: codes need no shard forwarding: workers rebuild them lazily from
#: this table, so registering a new family here is enough to serve it
#: from pre-forked shards too.
_CODE_FACTORIES = {
    DEFAULT_CODE_ID: canonical_secded_39_32,
    "hsiao-39-32": hsiao_39_32,
    "daec-41-32": daec_code,
    "dec-44-32": dec_code,
    "dected-45-32": dected_code,
}


class ServiceCatalog:
    """Resolve ``(code_id, context_id)`` to a live engine and context.

    Parameters
    ----------
    image_length / seed:
        Synthesis knobs for lazily-built benchmark contexts; pinned
        defaults match the CLI's, so service answers line up with
        ``repro recover``-style offline runs.
    precompile:
        Build each engine's syndrome decode table when the engine is
        built (default).  Precompiled answers are bit-identical to
        reference ones (``SwdEcc.precompile``), so this is purely a
        latency/CPU trade: ~10 ms once per engine per worker versus a
        table-lookup hot path on every recovery.
    """

    def __init__(
        self,
        image_length: int = _CONTEXT_IMAGE_LENGTH,
        seed: int = _CONTEXT_SEED,
        precompile: bool = True,
    ) -> None:
        self._image_length = image_length
        self._seed = seed
        self._precompile = precompile
        self._lock = Lock()
        self._codes: dict[str, LinearBlockCode] = {}
        self._engines: dict[str, SwdEcc] = {}
        self._contexts: dict[str, RecoveryContext] = {
            DEFAULT_CONTEXT_ID: RecoveryContext()
        }
        self._registered_codes: set[str] = set()
        self._registered_contexts: set[str] = set()
        self._frozen_reason: str | None = None

    @property
    def image_length(self) -> int:
        """Synthesis length for lazily-built benchmark contexts."""
        return self._image_length

    @property
    def seed(self) -> int:
        """Synthesis seed for lazily-built benchmark contexts."""
        return self._seed

    @property
    def precompile(self) -> bool:
        """Whether engines are built with precompiled decode tables."""
        return self._precompile

    # ------------------------------------------------------------------
    # Registration / enumeration
    # ------------------------------------------------------------------

    def code_ids(self) -> list[str]:
        """Ids resolvable as codes (built-in families + registered)."""
        with self._lock:
            return sorted(set(_CODE_FACTORIES) | set(self._codes))

    def context_ids(self) -> list[str]:
        """Ids resolvable as contexts (benchmarks + registered)."""
        with self._lock:
            return sorted(set(BENCHMARK_NAMES) | set(self._contexts))

    def freeze(self, reason: str) -> None:
        """Reject further registrations, naming *reason* in the error.

        Called when a :class:`~repro.service.shards.ShardPool` forks:
        ``ShardSpec.from_catalog`` snapshots the explicit registrations
        at that moment, so a registration landing afterwards would
        exist in the parent only — requests routed to shard workers
        would die with an opaque unknown-id error.  Freezing turns that
        silent skew into an immediate, descriptive failure at the
        registration site.
        """
        with self._lock:
            self._frozen_reason = reason

    def thaw(self) -> None:
        """Allow registrations again (the shard pool is gone)."""
        with self._lock:
            self._frozen_reason = None

    @property
    def frozen(self) -> bool:
        """True while registrations are rejected (shard pool live)."""
        with self._lock:
            return self._frozen_reason is not None

    def _check_not_frozen(self, what: str, name: str) -> None:
        # Caller holds self._lock.
        if self._frozen_reason is not None:
            raise ServiceError(
                f"cannot register {what} {name!r}: the catalog is frozen "
                f"({self._frozen_reason}). Shard workers snapshot "
                "registrations when the pool starts, so a late "
                "registration would never reach them — register every "
                "code and context before starting the service, or run "
                "with workers=0."
            )

    def register_code(self, code_id: str, code: LinearBlockCode) -> None:
        """Expose *code* to requests under *code_id*."""
        with self._lock:
            self._check_not_frozen("code", code_id)
            self._codes[code_id] = code
            self._engines.pop(code_id, None)
            self._registered_codes.add(code_id)

    def register_context(
        self, context_id: str, context: RecoveryContext
    ) -> None:
        """Expose *context* to requests under *context_id*."""
        with self._lock:
            self._check_not_frozen("context", context_id)
            self._contexts[context_id] = context
            self._registered_contexts.add(context_id)

    def registrations(
        self,
    ) -> tuple[
        dict[str, LinearBlockCode], dict[str, "RecoveryContext"]
    ]:
        """Explicitly registered codes and contexts (not lazily-built
        factory/benchmark entries).

        Shard workers rebuild factory codes and benchmark contexts
        themselves from the pinned ``image_length``/``seed`` knobs, but
        explicit registrations only exist in this process — the shard
        pool forwards exactly these at fork time so every worker
        resolves the same ids.
        """
        with self._lock:
            return (
                {name: self._codes[name] for name in self._registered_codes},
                {
                    name: self._contexts[name]
                    for name in self._registered_contexts
                },
            )

    def built_benchmark_context_ids(self) -> list[str]:
        """Benchmark contexts already synthesized in this process.

        The shard pool forwards these as its workers' preload list:
        a context the parent warmed (via ``preload`` or live traffic)
        should be warm in every worker too, and benchmark contexts
        rebuild deterministically from ``image_length``/``seed`` so
        only the *names* need to cross the fork.
        """
        with self._lock:
            return sorted(
                name
                for name in self._contexts
                if name in BENCHMARK_NAMES
                and name not in self._registered_contexts
            )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def code(self, code_id: str) -> LinearBlockCode:
        """The code registered under *code_id* (built lazily)."""
        with self._lock:
            code = self._codes.get(code_id)
            if code is None:
                factory = _CODE_FACTORIES.get(code_id)
                if factory is None:
                    raise ServiceError(
                        f"unknown code id {code_id!r}; "
                        f"available: {', '.join(self.code_ids_locked())}"
                    )
                code = factory()
                self._codes[code_id] = code
            return code

    def code_ids_locked(self) -> list[str]:
        """Code ids without re-taking the lock (internal error paths)."""
        return sorted(set(_CODE_FACTORIES) | set(self._codes))

    def engine(self, code_id: str) -> SwdEcc:
        """The (single) engine serving *code_id* recoveries."""
        code = self.code(code_id)
        with self._lock:
            engine = self._engines.get(code_id)
            if engine is None:
                engine = SwdEcc(
                    code,
                    tie_break=TieBreak.FIRST,
                    rng=random.Random(0),
                    cache=True,
                    precompile=self._precompile,
                )
                self._engines[code_id] = engine
            return engine

    def context(self, context_id: str) -> RecoveryContext:
        """The context registered under *context_id*.

        Benchmark names resolve lazily to an instruction-memory context
        built from the synthesized image's frequency table; the built
        object is cached so identity stays stable (the engines' context
        caches key on ``is``).
        """
        with self._lock:
            context = self._contexts.get(context_id)
            if context is not None:
                return context
        if context_id not in BENCHMARK_NAMES:
            raise ServiceError(
                f"unknown context id {context_id!r}; "
                f"available: {', '.join(self.context_ids())}"
            )
        image = synthesize_benchmark(
            context_id, length=self._image_length, seed=self._seed
        )
        built = RecoveryContext.for_instructions(
            FrequencyTable.from_image(image)
        )
        with self._lock:
            # First builder wins so identity stays stable under races.
            return self._contexts.setdefault(context_id, built)

    def resolve(
        self, code_id: str, context_id: str
    ) -> tuple[SwdEcc, RecoveryContext]:
        """Engine + context for one request (validates both ids)."""
        return self.engine(code_id), self.context(context_id)

    def preload(self, context_ids: list[str] | None = None) -> None:
        """Eagerly build the default engine and the named contexts.

        Called at service startup so the first request doesn't pay
        image synthesis; unknown ids raise up front instead of at
        serving time.
        """
        self.engine(DEFAULT_CODE_ID)
        for context_id in context_ids or ():
            self.context(context_id)
