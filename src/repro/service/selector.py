"""Adaptive per-region ECC code selection from observed DUE traffic.

The "Adaptive ECC Switching" idea (see PAPERS.md): different memory
regions see different fault populations — a row neighbouring a noisy
aggressor takes *adjacent* multi-bit upsets, the rest mostly takes
isolated singles/doubles — so the protecting code should be chosen per
region from what is actually observed, not fixed at design time.

:class:`AdaptiveCodeSelector` watches the bounded DUE event log
(:class:`repro.obs.events.EventLog`), classifies each DUE by whether
its syndrome is *consistent with an adjacent double* under the
region's current code (:func:`repro.ecc.daec.adjacent_syndrome_set`),
and switches a region between a base SECDED code and a SEC-DED-DAEC
code when the observed adjacent fraction crosses a hysteresis band:

- fraction >= ``upgrade_threshold`` over at least ``min_samples``
  recent DUEs -> upgrade the region to the DAEC code;
- fraction <= ``downgrade_threshold`` -> downgrade back to SECDED.

The two thresholds straddle the classifier's noise floor: a uniformly
random double on the canonical (39, 32) code lands on an
adjacent-consistent syndrome ~31% of the time, while genuine adjacent
bursts do so always, so the default 0.65 / 0.35 band separates the two
populations with margin on both sides.  Hysteresis (plus clearing a
region's window on every switch) is what prevents flapping: after an
upgrade, adjacent doubles are corrected in hardware and stop appearing
as DUEs, so the DAEC-region window only refills — and only triggers a
downgrade — if *non-adjacent* DUE traffic actually dominates again.

The selector is **advisory**: it maintains assignments, counters, and
gauges, and notifies ``on_switch``; the caller (the MBU resilience
study, an operator watching /metrics) applies the decision by
re-encoding the region.  The recovery service never rewrites a
request's code id — served answers stay bit-identical to serial
engines regardless of selector state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from threading import Lock
from typing import Callable

from repro.bits import bit_mask
from repro.ecc.code import LinearBlockCode
from repro.ecc.daec import adjacent_syndrome_set
from repro.errors import ServiceError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

__all__ = ["SelectorPolicy", "AdaptiveCodeSelector", "CodeSwitch"]


@dataclass(frozen=True)
class SelectorPolicy:
    """Hysteresis policy of the adaptive selector.

    Attributes
    ----------
    upgrade_threshold:
        Adjacent-consistent DUE fraction at or above which a base-code
        region upgrades to the DAEC code.
    downgrade_threshold:
        Fraction at or below which an upgraded region reverts.  Must be
        strictly below ``upgrade_threshold`` (the hysteresis band).
    min_samples:
        DUEs a region must accumulate in its window before either
        decision is taken.
    window:
        Sliding-window length of per-region observations; on every
        switch the window clears (old observations described the old
        code's DUE population).
    region_bytes:
        Address granularity of one region (``address // region_bytes``);
        events without an address all land in region 0.
    """

    upgrade_threshold: float = 0.65
    downgrade_threshold: float = 0.35
    min_samples: int = 12
    window: int = 128
    region_bytes: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.upgrade_threshold <= 1.0:
            raise ServiceError(
                f"upgrade_threshold must be in (0, 1], "
                f"got {self.upgrade_threshold}"
            )
        if not 0.0 <= self.downgrade_threshold < self.upgrade_threshold:
            raise ServiceError(
                "downgrade_threshold must satisfy 0 <= downgrade < upgrade, "
                f"got {self.downgrade_threshold} vs {self.upgrade_threshold}"
            )
        if self.min_samples < 1 or self.window < self.min_samples:
            raise ServiceError(
                f"need 1 <= min_samples <= window, "
                f"got min_samples={self.min_samples} window={self.window}"
            )
        if self.region_bytes < 1:
            raise ServiceError(
                f"region_bytes must be >= 1, got {self.region_bytes}"
            )


@dataclass(frozen=True)
class CodeSwitch:
    """One region's code change, as reported by :meth:`poll`."""

    region: int
    old_code_id: str
    new_code_id: str
    adjacent_fraction: float
    samples: int


class AdaptiveCodeSelector:
    """Watch DUE events and pick per-region codes with hysteresis.

    Parameters
    ----------
    event_log:
        The bounded DUE log to poll (default: the process-wide one).
        Polling is non-destructive — the selector tracks how many
        events it has seen via ``total_recorded`` and only ingests the
        tail, so ``/events`` consumers are unaffected.
    base_code / upgrade_code:
        The two codes a region can run, with their catalog ids.  DUEs
        are classified against the *region's current* code: its width
        gates which events can even belong to it, and its adjacent
        syndrome set defines "consistent with an adjacent double".
    policy:
        The hysteresis parameters (:class:`SelectorPolicy`).
    registry:
        Metrics registry for the ``selector.*`` families (default: the
        process-wide one).
    on_switch:
        Callback invoked with each :class:`CodeSwitch` as it is
        decided, while the selector lock is held — keep it short.
    """

    def __init__(
        self,
        event_log: obs_events.EventLog | None = None,
        base_code: LinearBlockCode | None = None,
        upgrade_code: LinearBlockCode | None = None,
        base_code_id: str = "secded-39-32",
        upgrade_code_id: str = "daec-41-32",
        policy: SelectorPolicy | None = None,
        registry: obs_metrics.MetricsRegistry | None = None,
        on_switch: Callable[[CodeSwitch], None] | None = None,
    ) -> None:
        if base_code is None:
            from repro.ecc.matrices import canonical_secded_39_32

            base_code = canonical_secded_39_32()
        if upgrade_code is None:
            from repro.ecc.daec import daec_code

            upgrade_code = daec_code()
        self._log = (
            event_log if event_log is not None else obs_events.get_event_log()
        )
        self._policy = policy if policy is not None else SelectorPolicy()
        self._codes: dict[str, LinearBlockCode] = {
            base_code_id: base_code,
            upgrade_code_id: upgrade_code,
        }
        self._adjacent = {
            code_id: adjacent_syndrome_set(code)
            for code_id, code in self._codes.items()
        }
        self._word_masks = {
            code_id: bit_mask(code.n) for code_id, code in self._codes.items()
        }
        self._base_id = base_code_id
        self._upgrade_id = upgrade_code_id
        self._on_switch = on_switch
        self._lock = Lock()
        self._seen = 0
        self._assignments: dict[int, str] = {}
        self._windows: dict[int, deque[bool]] = {}

        resolved = (
            registry if registry is not None else obs_metrics.get_registry()
        )
        self._c_polls = resolved.counter(
            "selector.polls", help="Event-log polls by the adaptive selector"
        )
        self._c_samples = resolved.counter(
            "selector.samples", help="DUE events classified by the selector"
        )
        self._c_adjacent = resolved.counter(
            "selector.adjacent_samples",
            help="DUEs whose syndrome was adjacent-consistent for their "
            "region's current code",
        )
        self._c_mismatches = resolved.counter(
            "selector.width_mismatches",
            help="DUEs skipped because the word did not fit the region's "
            "current code",
        )
        self._c_evicted = resolved.counter(
            "selector.evicted_events",
            help="Events that left the bounded log before a poll saw them",
        )
        self._c_switches = resolved.counter(
            "selector.switches", help="Per-region code switches decided"
        )
        self._c_upgrades = resolved.counter(
            "selector.upgrades", help="Base -> DAEC region upgrades"
        )
        self._c_downgrades = resolved.counter(
            "selector.downgrades", help="DAEC -> base region downgrades"
        )
        self._g_regions_observed = resolved.gauge(
            "selector.regions_observed",
            help="Regions with at least one classified DUE",
        )
        self._g_regions_upgraded = resolved.gauge(
            "selector.regions_upgraded",
            help="Regions currently assigned the DAEC code",
        )
        self._g_fraction = resolved.gauge(
            "selector.adjacent_fraction",
            help="Adjacent-consistent fraction over all regions' current "
            "windows",
        )
        resolved.info(
            "selector.config",
            help="Adaptive-selector configuration",
        ).set(
            f"base={base_code_id} upgrade={upgrade_code_id} "
            f"up>={self._policy.upgrade_threshold:g} "
            f"down<={self._policy.downgrade_threshold:g} "
            f"min_samples={self._policy.min_samples} "
            f"window={self._policy.window} "
            f"region_bytes={self._policy.region_bytes}"
        )

    @property
    def policy(self) -> SelectorPolicy:
        """The hysteresis policy in force."""
        return self._policy

    @property
    def base_code_id(self) -> str:
        """Catalog id of the default (SECDED) code."""
        return self._base_id

    @property
    def upgrade_code_id(self) -> str:
        """Catalog id of the burst-correcting (DAEC) code."""
        return self._upgrade_id

    def code_for(self, region: int) -> str:
        """The code id currently assigned to *region*."""
        with self._lock:
            return self._assignments.get(region, self._base_id)

    def assignments(self) -> dict[int, str]:
        """Current non-default region assignments (region -> code id)."""
        with self._lock:
            return dict(self._assignments)

    def region_of(self, address: int | None) -> int:
        """The region an event address belongs to (None -> region 0)."""
        if address is None:
            return 0
        return address // self._policy.region_bytes

    def _fraction(self, window: deque[bool]) -> float:
        return sum(window) / len(window)

    def poll(self) -> list[CodeSwitch]:
        """Ingest new DUE events and return any switches decided.

        Safe to call from multiple threads and cheap when idle: cost is
        proportional to the number of events recorded since the last
        poll (plus one syndrome computation per new event).
        """
        with self._lock:
            return self._poll_locked()

    def _poll_locked(self) -> list[CodeSwitch]:
        self._c_polls.inc()
        log = self._log
        retained = log.events()
        total = log.total_recorded
        new = total - self._seen
        if new <= 0:
            self._refresh_gauges()
            return []
        if new > len(retained):
            self._c_evicted.inc(new - len(retained))
            new = len(retained)
        self._seen = total
        policy = self._policy
        for event in retained[len(retained) - new:]:
            region = self.region_of(event.address)
            code_id = self._assignments.get(region, self._base_id)
            if event.received > self._word_masks[code_id]:
                self._c_mismatches.inc()
                continue
            syndrome = self._codes[code_id].syndrome(event.received)
            adjacent = syndrome in self._adjacent[code_id]
            window = self._windows.get(region)
            if window is None:
                window = deque(maxlen=policy.window)
                self._windows[region] = window
            window.append(adjacent)
            self._c_samples.inc()
            if adjacent:
                self._c_adjacent.inc()
        switches = []
        for region, window in self._windows.items():
            if len(window) < policy.min_samples:
                continue
            current = self._assignments.get(region, self._base_id)
            fraction = self._fraction(window)
            if (
                current == self._base_id
                and fraction >= policy.upgrade_threshold
            ):
                new_id = self._upgrade_id
                self._c_upgrades.inc()
            elif (
                current == self._upgrade_id
                and fraction <= policy.downgrade_threshold
            ):
                new_id = self._base_id
                self._c_downgrades.inc()
            else:
                continue
            self._assignments[region] = new_id
            switch = CodeSwitch(
                region=region,
                old_code_id=current,
                new_code_id=new_id,
                adjacent_fraction=fraction,
                samples=len(window),
            )
            window.clear()
            self._c_switches.inc()
            switches.append(switch)
            if self._on_switch is not None:
                self._on_switch(switch)
        self._refresh_gauges()
        return switches

    def _refresh_gauges(self) -> None:
        self._g_regions_observed.set(len(self._windows))
        self._g_regions_upgraded.set(
            sum(
                1
                for code_id in self._assignments.values()
                if code_id == self._upgrade_id
            )
        )
        total = sum(len(w) for w in self._windows.values())
        adjacent = sum(sum(w) for w in self._windows.values())
        self._g_fraction.set(adjacent / total if total else 0.0)
