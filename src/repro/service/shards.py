"""Pre-forked recovery shards: the service's multi-core engine room.

A single recovery engine saturates one core — the GIL serializes every
``recover()`` no matter how many HTTP threads feed it.  This module
scales the service across cores with *shards*: each shard is one
pre-warmed worker process owning its own :class:`ServiceCatalog`
(engines pinned to deterministic first-wins tie-breaking), driven by
exactly one parent-side queue, and fed whole micro-batches over a
single-worker :class:`~concurrent.futures.ProcessPoolExecutor`.

Three properties carry over from the single-process design:

- **Bit-identity** — batches route to shards by a stable hash of
  ``(code, context)``, so a given context always lands on the same
  engine and its caches; engines are deterministic, so a shard's
  answer equals a fresh serial engine's, which
  ``tests/service/test_shards.py`` proves across the process boundary
  (including across a worker kill + respawn, because a respawned
  shard rebuilds the identical engine).
- **Metrics completeness** — each batch returns a
  :func:`~repro.obs.metrics.diff_snapshot` delta of the worker's
  registry plus an :class:`~repro.obs.events.EventDigest`; the parent
  merges both, so one ``/metrics`` scrape still sees ``service.*``
  next to ``swdecc.*`` and ``ops.*`` totals across every shard.
- **Explicit failure policy** — a dead worker process breaks its
  executor; the pool respawns the shard (re-warming the catalog) and
  requeues the batch once.  If that also fails the shard is marked
  dead and the batch fails with
  :class:`~repro.errors.ShardFailureError`, which the HTTP layer maps
  to the overload policy (detect-only or 429) — requeue-or-429, never
  silent loss or duplication.

:class:`BatchEngine` — the only code that turns recovery results into
wire payloads — also serves the single-process mode (``workers=0``),
so both paths share one executor and one served-answer cache: answers
are deterministic, so each ``(code, context, word)`` is recovered once
and then replayed as a pre-serialized JSON fragment (a dict probe
instead of ~28 µs of engine work plus ~15 µs of ``json.dumps``).  The
cache is disabled under per-request cost reporting, which needs true
op-count deltas.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import NamedTuple, Sequence

from repro.core.sideinfo import RecoveryContext
from repro.ecc.code import LinearBlockCode
from repro.errors import ReproError, ServiceError, ShardFailureError
from repro.obs import energy as obs_energy
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service import api
from repro.service.catalog import ServiceCatalog

__all__ = ["BatchEngine", "ShardPool", "ShardSpec", "route_key"]

#: Served-answer cache bound, in words, across all (code, context)
#: pairs (mirrors the engines' ContextCache clear-at-cap policy).
DEFAULT_RESULT_CACHE_LIMIT = 65536

#: How long a forked shard may take to pre-warm before startup fails.
_SPAWN_TIMEOUT_S = 120.0


def route_key(code_id: str, context_id: str, shards: int) -> int:
    """The shard index serving ``(code_id, context_id)`` batches.

    A stable content hash (not Python's randomized ``hash``) so the
    same context always drains through the same shard's engine — that
    is what keeps the per-shard syndrome/filter/ranker caches hot —
    and so tests and a future consistent-hash fleet router can predict
    placement.
    """
    digest = zlib.crc32(f"{code_id}\x00{context_id}".encode())
    return digest % shards


class ShardSpec(NamedTuple):
    """Everything a worker needs to rebuild the parent's catalog view.

    Shipped (pickled) to each shard at fork and at every respawn, so a
    replacement worker is indistinguishable from the original.
    """

    image_length: int
    seed: int
    preload: tuple[str, ...] = ()
    codes: tuple[tuple[str, LinearBlockCode], ...] = ()
    contexts: tuple[tuple[str, RecoveryContext], ...] = ()
    report_cost: bool = False
    result_cache_limit: int = DEFAULT_RESULT_CACHE_LIMIT
    #: Pre-warm each worker's engines with precompiled syndrome decode
    #: tables (mirrors ServiceCatalog's flag; built during the shard
    #: initializer, before the shard serves its first batch).
    precompile: bool = True

    @classmethod
    def from_catalog(
        cls,
        catalog: ServiceCatalog,
        preload: Sequence[str] = (),
        report_cost: bool = False,
        result_cache_limit: int = DEFAULT_RESULT_CACHE_LIMIT,
    ) -> "ShardSpec":
        codes, contexts = catalog.registrations()
        return cls(
            image_length=catalog.image_length,
            seed=catalog.seed,
            preload=tuple(preload),
            codes=tuple(sorted(codes.items())),
            contexts=tuple(sorted(contexts.items())),
            report_cost=report_cost,
            result_cache_limit=result_cache_limit,
            precompile=catalog.precompile,
        )


class BatchEngine:
    """Execute recovery micro-batches against catalog engines.

    The single consumer of its engines (one batcher worker thread in
    the parent, or one shard process), so the served-answer cache and
    the engines' context caches need no locks.  Per request it returns
    an opaque outcome ``{"fragments": [json str per word], "cost":
    dict | None}`` — fragments are spliced into HTTP responses without
    re-serialization, and they pickle as compact strings across the
    shard boundary.
    """

    def __init__(
        self,
        catalog: ServiceCatalog,
        registry: obs_metrics.MetricsRegistry | None = None,
        report_cost: bool = False,
        result_cache_limit: int = DEFAULT_RESULT_CACHE_LIMIT,
    ) -> None:
        if result_cache_limit < 1:
            raise ServiceError(
                f"result_cache_limit must be >= 1, got {result_cache_limit}"
            )
        registry = (
            registry if registry is not None else obs_metrics.get_registry()
        )
        self._catalog = catalog
        self._report_cost = report_cost
        self._cache_limit = result_cache_limit
        self._cache: dict[tuple[str, str], dict[int, tuple[bool, str]]] = {}
        self._cache_words = 0
        self._c_recoveries = registry.counter(
            "service.recoveries", help="Words heuristically recovered"
        )
        self._c_word_errors = registry.counter(
            "service.recovery_errors",
            help="Words that failed recovery (not a DUE, no candidates)",
        )
        self._c_cache_hits = registry.counter(
            "service.result.cache_hits",
            help="Words answered from the served-answer cache",
        )
        self._c_cache_misses = registry.counter(
            "service.result.cache_misses",
            help="Words that ran the engine and serialized fresh",
        )
        self._h_batch_ops = registry.histogram(
            "service.batch_ops",
            buckets=(64, 256, 1024, 4096, 16384, 65536),
            help="Decode op-counter delta per executed micro-batch",
        )
        self._h_batch_joules = registry.histogram(
            "service.batch_joules",
            buckets=(1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3),
            help="Modeled energy per executed micro-batch",
        )

    @property
    def catalog(self) -> ServiceCatalog:
        """The catalog resolving this engine's (code, context) ids."""
        return self._catalog

    def execute(self, requests: Sequence[api.RecoveryRequest]) -> list[dict]:
        """Run one micro-batch; one outcome dict per request, in order.

        Requests group by (code, context) so each group drains
        back-to-back through one engine, preserving context-cache
        generations.  Per-word errors (not a DUE, no candidates) are
        captured per word and never fail a neighbouring request.

        Answers are deterministic (first-wins tie-breaking, pinned
        contexts), so cache replays are bit-identical to engine runs.
        Cost attribution (``report_cost``) bypasses the cache: its op
        deltas must measure real engine work, not dict probes.
        """
        groups: dict[tuple[str, str], list[int]] = {}
        for index, request in enumerate(requests):
            key = (request.code_id, request.context_id)
            groups.setdefault(key, []).append(index)
        outcomes: list[dict] = [{} for _ in requests]
        recovered = 0
        failed = 0
        # Traced requests get one worker-side span each, timed relative
        # to this execute() call's start: absolute perf_counter readings
        # do not compare across processes, so the parent rebases the
        # relative offsets onto its own observed execute window when it
        # re-parents the span (see RecoveryBatcher._record_job_spans).
        exec_start_ns = time.perf_counter_ns()
        model = obs_energy.get_energy_model()
        batch_before = obs_energy.op_counts(model=model)
        for key, indexes in groups.items():
            code_id, context_id = key
            engine, context = self._catalog.resolve(code_id, context_id)
            cache: dict[int, tuple[bool, str]] | None = None
            if not self._report_cost:
                cache = self._cache.get(key)
                if cache is None:
                    cache = self._cache.setdefault(key, {})
            for index in indexes:
                request = requests[index]
                trace_context = request.trace
                request_start_ns = (
                    time.perf_counter_ns() if trace_context is not None
                    else 0
                )
                before = (
                    obs_energy.op_counts(model=model)
                    if self._report_cost else None
                )
                fragments: list[str] = []
                for word in request.words:
                    if cache is not None:
                        hit = cache.get(word)
                        if hit is not None:
                            self._c_cache_hits.inc()
                            ok, fragment = hit
                            recovered += ok
                            failed += not ok
                            fragments.append(fragment)
                            continue
                        self._c_cache_misses.inc()
                    try:
                        result = engine.recover(word, context)
                    except ReproError as error:
                        ok = False
                        payload = api.error_payload(word, error)
                    else:
                        ok = True
                        payload = api.result_payload(word, result)
                    fragment = json.dumps(payload, sort_keys=True)
                    recovered += ok
                    failed += not ok
                    if cache is not None:
                        if self._cache_words >= self._cache_limit:
                            # Clear in place: engines sharing a group
                            # dict must never see resurrected entries.
                            for entries in self._cache.values():
                                entries.clear()
                            self._cache_words = 0
                        cache[word] = (ok, fragment)
                        self._cache_words += 1
                    fragments.append(fragment)
                cost = None
                if before is not None:
                    after = obs_energy.op_counts(model=model)
                    deltas = {
                        name: after[name] - before[name]
                        for name in after
                        if after[name] != before[name]
                    }
                    joules = model.joules(deltas)
                    cost = {
                        "ops": deltas,
                        "joules": joules,
                        "joules_per_word": joules / len(request.words),
                    }
                outcome: dict = {"fragments": fragments, "cost": cost}
                if trace_context is not None:
                    # Shipped as plain dicts (picklable, schema-stable)
                    # and re-parented under the request's shard_exec
                    # span by the parent-side batcher.
                    outcome["spans"] = [{
                        "name": "service.shard.execute",
                        "rel_start_ns": request_start_ns - exec_start_ns,
                        "rel_end_ns": (
                            time.perf_counter_ns() - exec_start_ns
                        ),
                        "span_id": obs_trace.new_span_id(),
                        "parent_id": trace_context.span_id,
                        "trace_id": trace_context.trace_id,
                    }]
                outcomes[index] = outcome
        batch_after = obs_energy.op_counts(model=model)
        batch_deltas = {
            name: batch_after[name] - batch_before[name]
            for name in batch_after
        }
        self._h_batch_ops.observe(sum(batch_deltas.values()))
        self._h_batch_joules.observe(model.joules(batch_deltas))
        if recovered:
            self._c_recoveries.inc(recovered)
        if failed:
            self._c_word_errors.inc(failed)
        return outcomes


# ----------------------------------------------------------------------
# Worker-process side (module-level: must be picklable by reference)
# ----------------------------------------------------------------------

#: Per-process shard state, populated by the pool's initializer.
_WORKER: dict | None = None


def _shard_initializer(spec: ShardSpec) -> None:
    """Build and pre-warm this worker's catalog, engine, and obs state.

    Runs once per (re)spawned shard process, before any batch.  The
    registry/event log are reset so the first shipped delta measures
    only this shard's own work, not state inherited across the fork
    (the same isolation discipline as
    :func:`repro.analysis.parallel._run_isolated`, amortized over the
    shard's lifetime instead of per task).
    """
    global _WORKER
    registry = obs_metrics.get_registry()
    registry.reset()
    event_log = obs_events.get_event_log()
    event_log.clear()
    catalog = ServiceCatalog(
        image_length=spec.image_length,
        seed=spec.seed,
        precompile=spec.precompile,
    )
    for code_id, code in spec.codes:
        catalog.register_code(code_id, code)
    for context_id, context in spec.contexts:
        catalog.register_context(context_id, context)
    catalog.preload(list(spec.preload))
    _WORKER = {
        "engine": BatchEngine(
            catalog,
            registry=registry,
            report_cost=spec.report_cost,
            result_cache_limit=spec.result_cache_limit,
        ),
        "registry": registry,
        "event_log": event_log,
        "shipped": {},
    }


def _shard_execute(
    requests: tuple[api.RecoveryRequest, ...],
) -> tuple[list[dict], dict, obs_events.EventDigest]:
    """Run one micro-batch in the shard; ship outcomes + obs deltas."""
    assert _WORKER is not None, "shard executed before initialization"
    outcomes = _WORKER["engine"].execute(requests)
    current = _WORKER["registry"].as_dict()
    delta = obs_metrics.diff_snapshot(_WORKER["shipped"], current)
    _WORKER["shipped"] = current
    digest = obs_events.EventDigest.from_log(_WORKER["event_log"])
    _WORKER["event_log"].clear()
    return outcomes, delta, digest


def _shard_snapshot() -> dict:
    """The shard's cumulative registry snapshot (tests, debugging)."""
    assert _WORKER is not None, "shard snapshot before initialization"
    return _WORKER["registry"].as_dict()


def _shard_pid() -> int:
    """Worker liveness probe; forces the initializer on first call."""
    return os.getpid()


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------


@dataclass
class _Shard:
    """One shard's parent-side handle."""

    index: int
    executor: ProcessPoolExecutor | None = None
    pid: int | None = None
    state: str = "starting"  # -> ok | respawning | dead
    lock: Lock = field(default_factory=Lock)


class ShardPool:
    """N pre-forked recovery shards with respawn-and-requeue recovery.

    Parameters
    ----------
    workers:
        Shard count (>= 1).  Each shard is one process pinned to one
        parent queue; size it to the cores you want recovery to use.
    spec:
        The :class:`ShardSpec` every (re)spawned worker initializes
        from.
    registry / event_log:
        Where shipped worker metric deltas and event digests are
        merged (default: the process-wide instances).
    """

    def __init__(
        self,
        workers: int,
        spec: ShardSpec,
        registry: obs_metrics.MetricsRegistry | None = None,
        event_log: obs_events.EventLog | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self._spec = spec
        self._registry = (
            registry if registry is not None else obs_metrics.get_registry()
        )
        self._event_log = (
            event_log if event_log is not None
            else obs_events.get_event_log()
        )
        self._merge_lock = Lock()
        self._shards = [_Shard(index) for index in range(workers)]
        self._g_shards = self._registry.gauge(
            "service.shards", help="Configured recovery shard processes"
        )
        self._c_respawns = self._registry.counter(
            "service.shard.respawns",
            help="Shard processes respawned after a worker death",
        )
        self._c_failures = self._registry.counter(
            "service.shard.failures",
            help="Batches failed after the respawn+requeue policy",
        )
        self._up_gauges = [
            self._registry.gauge(
                f"service.shard.{index}.up",
                help="1 when this shard process is serving, else 0",
            )
            for index in range(workers)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Configured shard count."""
        return len(self._shards)

    def route(self, code_id: str, context_id: str) -> int:
        """The shard index for one request's (code, context)."""
        return route_key(code_id, context_id, len(self._shards))

    def states(self) -> dict[int, str]:
        """Current lifecycle state per shard index.

        A killed worker is noticed here *passively* (the executor's
        manager thread watches the process sentinel), so ``/healthz``
        degrades even before traffic trips the respawn path — the
        shard reports ``worker-lost`` until a batch triggers its
        respawn.
        """
        out: dict[int, str] = {}
        for shard in self._shards:
            state = shard.state
            if (
                state == "ok"
                and shard.executor is not None
                and getattr(shard.executor, "_broken", False)
            ):
                state = "worker-lost"
            out[shard.index] = state
        return out

    def worker_pids(self) -> dict[int, int | None]:
        """OS pid per shard (None before spawn); used by kill tests."""
        return {shard.index: shard.pid for shard in self._shards}

    def snapshots(self, timeout: float = 30.0) -> list[dict]:
        """Each live shard's cumulative registry snapshot, by index."""
        futures = []
        for shard in self._shards:
            if shard.executor is None:
                raise ServiceError(
                    f"shard {shard.index} is not running ({shard.state})"
                )
            futures.append(shard.executor.submit(_shard_snapshot))
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardPool":
        """Fork and pre-warm every shard; returns ``self``.

        Called before the service's HTTP/batcher threads exist, so the
        initial forks happen from an effectively single-threaded
        parent.
        """
        self._g_shards.set(len(self._shards))
        for shard in self._shards:
            self._spawn(shard)
        return self

    def stop(self) -> None:
        """Shut down every shard process (idempotent)."""
        for shard in self._shards:
            executor, shard.executor = shard.executor, None
            shard.state = "stopped"
            shard.pid = None
            self._up_gauges[shard.index].set(0.0)
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _spawn(self, shard: _Shard) -> None:
        """Fork one worker and block until its catalog is pre-warmed."""
        executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=_shard_initializer,
            initargs=(self._spec,),
        )
        try:
            shard.pid = executor.submit(_shard_pid).result(
                timeout=_SPAWN_TIMEOUT_S
            )
        except BaseException:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        shard.executor = executor
        shard.state = "ok"
        self._up_gauges[shard.index].set(1.0)

    def _respawn(self, shard: _Shard, cause: BaseException) -> None:
        """Replace a dead shard's process; raises ShardFailureError
        when the replacement cannot be brought up."""
        with shard.lock:
            shard.state = "respawning"
            self._up_gauges[shard.index].set(0.0)
            self._c_respawns.inc()
            old, shard.executor = shard.executor, None
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            try:
                self._spawn(shard)
            except BaseException as error:
                shard.state = "dead"
                self._c_failures.inc()
                raise ShardFailureError(
                    shard.index,
                    f"respawn after worker death failed: {error} "
                    f"(death cause: {cause})",
                ) from error

    # ------------------------------------------------------------------
    # Batch execution (called from shard batcher worker threads)
    # ------------------------------------------------------------------

    def execute(
        self, index: int, requests: Sequence[api.RecoveryRequest]
    ) -> list[dict]:
        """Run one micro-batch on shard *index*; requeue-once policy.

        Deterministic engines make the requeue safe: a batch that died
        mid-execution re-runs on the fresh worker and produces the
        identical answers, so a worker kill costs latency, never
        correctness — no batch is lost, none is answered twice.
        """
        shard = self._shards[index]
        payload = tuple(requests)
        try:
            executor = shard.executor
            if executor is None:
                raise ShardFailureError(index, f"shard is {shard.state}")
            outcomes, delta, digest = executor.submit(
                _shard_execute, payload
            ).result()
        except ShardFailureError:
            raise
        except BrokenExecutor as death:
            self._respawn(shard, death)  # raises ShardFailureError if not
            try:
                assert shard.executor is not None
                outcomes, delta, digest = shard.executor.submit(
                    _shard_execute, payload
                ).result()
            except BaseException as error:
                shard.state = "dead"
                self._up_gauges[shard.index].set(0.0)
                self._c_failures.inc()
                raise ShardFailureError(
                    index, f"requeued batch failed after respawn: {error}"
                ) from error
        with self._merge_lock:
            obs_metrics.merge_snapshot(delta, self._registry)
            self._event_log.absorb_digest(digest)
        return outcomes
