"""Per-mnemonic instruction statistics (the paper's Fig. 7 data).

The filtering-and-ranking recovery strategy scores each candidate
message by the relative frequency of its mnemonic in the whole program
image; :class:`FrequencyTable` is that side information.  The paper
observes the distributions follow a power law — ``lw`` alone is about
20% of every benchmark — which is what makes frequency ranking
informative; :func:`power_law_fit` quantifies that claim.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import ProgramImageError
from repro.isa.decoder import try_decode
from repro.program.image import ProgramImage

__all__ = [
    "mnemonic_histogram",
    "FrequencyTable",
    "BigramTable",
    "power_law_fit",
]


def mnemonic_histogram(words: Iterable[int]) -> Counter[str]:
    """Count mnemonic occurrences over instruction words.

    Illegal words (data interleaved in .text, as happens in real
    binaries) are skipped, matching how a disassembler-driven count
    behaves.
    """
    histogram: Counter[str] = Counter()
    for word in words:
        instruction = try_decode(word)
        if instruction is not None:
            histogram[instruction.mnemonic] += 1
    return histogram


@dataclass(frozen=True)
class FrequencyTable:
    """Relative mnemonic frequencies of one program image.

    Attributes
    ----------
    source:
        Name of the image the table was computed from.
    counts:
        Absolute mnemonic counts.
    total:
        Total number of (legal) instructions counted.
    """

    source: str
    counts: Mapping[str, int]
    total: int

    @classmethod
    def from_image(cls, image: ProgramImage) -> FrequencyTable:
        """Build the table from a whole program image."""
        histogram = mnemonic_histogram(image.words)
        total = sum(histogram.values())
        if total == 0:
            raise ProgramImageError(
                f"image {image.name!r} contains no legal instructions"
            )
        return cls(source=image.name, counts=dict(histogram), total=total)

    @classmethod
    def from_counts(cls, source: str, counts: Mapping[str, int]) -> FrequencyTable:
        """Build the table from precomputed counts."""
        total = sum(counts.values())
        if total <= 0:
            raise ProgramImageError(f"counts for {source!r} sum to {total}")
        return cls(source=source, counts=dict(counts), total=total)

    def frequency(self, mnemonic: str) -> float:
        """Relative frequency of *mnemonic* (0.0 when absent)."""
        return self.counts.get(mnemonic, 0) / self.total

    def count(self, mnemonic: str) -> int:
        """Absolute count of *mnemonic*."""
        return self.counts.get(mnemonic, 0)

    def ranked(self) -> list[tuple[str, float]]:
        """Mnemonics with frequencies, most frequent first.

        Ties break alphabetically so the ordering is deterministic.
        """
        return sorted(
            ((m, c / self.total) for m, c in self.counts.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def most_common(self, count: int | None = None) -> list[tuple[str, float]]:
        """The *count* most frequent mnemonics (all when ``None``)."""
        ranking = self.ranked()
        return ranking if count is None else ranking[:count]

    def merged_with(self, other: FrequencyTable) -> FrequencyTable:
        """Pool two tables (used by the cross-image ablation)."""
        merged = Counter(self.counts)
        merged.update(other.counts)
        return FrequencyTable.from_counts(
            source=f"{self.source}+{other.source}", counts=merged
        )


@dataclass(frozen=True)
class BigramTable:
    """Adjacent-mnemonic statistics: the "more sophisticated side
    information" the paper's conclusion anticipates.

    Where :class:`FrequencyTable` asks "how common is this operation in
    the program?", a bigram table asks "how common is it *right after
    the operation that precedes the corrupted word*?" — code has strong
    local structure (compare-then-branch, load-then-use, call-then-nop)
    that a unigram model cannot see.

    Attributes
    ----------
    source:
        Name of the image the table was computed from.
    pair_counts:
        ``(previous, next)`` mnemonic pair counts.
    unigram:
        The underlying unigram table (used for smoothing and fallback).
    """

    source: str
    pair_counts: Mapping[tuple[str, str], int]
    prefix_totals: Mapping[str, int]
    unigram: FrequencyTable

    # Laplace-style smoothing weight toward the unigram distribution:
    # unseen-but-plausible pairs keep a small nonzero probability.
    _SMOOTHING: float = 1.0

    @classmethod
    def from_image(cls, image: ProgramImage) -> BigramTable:
        """Count adjacent mnemonic pairs over a whole image.

        Illegal words break the adjacency chain (no pair is counted
        across them), matching how a disassembler-driven count behaves.
        """
        pair_counts: Counter[tuple[str, str]] = Counter()
        previous: str | None = None
        for word in image.words:
            instruction = try_decode(word)
            if instruction is None:
                previous = None
                continue
            mnemonic = instruction.mnemonic
            if previous is not None:
                pair_counts[(previous, mnemonic)] += 1
            previous = mnemonic
        prefix_totals: Counter[str] = Counter()
        for (first, _), count in pair_counts.items():
            prefix_totals[first] += count
        return cls(
            source=image.name,
            pair_counts=dict(pair_counts),
            prefix_totals=dict(prefix_totals),
            unigram=FrequencyTable.from_image(image),
        )

    def pair_count(self, previous: str, next_mnemonic: str) -> int:
        """Raw count of the (previous, next) pair."""
        return self.pair_counts.get((previous, next_mnemonic), 0)

    def conditional(self, next_mnemonic: str, previous: str) -> float:
        """Smoothed ``P(next | previous)``.

        ``(count(prev, next) + s * P_unigram(next)) / (count(prev, *) + s)``
        so contexts never seen fall back to the unigram distribution.
        """
        prefix_total = self.prefix_totals.get(previous, 0)
        smoothing = self._SMOOTHING
        return (
            self.pair_count(previous, next_mnemonic)
            + smoothing * self.unigram.frequency(next_mnemonic)
        ) / (prefix_total + smoothing)


def power_law_fit(table: FrequencyTable) -> tuple[float, float]:
    """Least-squares fit of ``log(freq) ~ alpha * log(rank) + c``.

    Returns ``(alpha, r_squared)``.  A strongly negative *alpha* with
    high r-squared confirms the Fig. 7 claim that instruction usage is
    power-law distributed.
    """
    ranking = table.ranked()
    if len(ranking) < 3:
        raise ProgramImageError(
            f"table {table.source!r} has too few mnemonics for a fit"
        )
    xs = [math.log(rank) for rank in range(1, len(ranking) + 1)]
    ys = [math.log(freq) for _, freq in ranking]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    ss_yy = sum((y - mean_y) ** 2 for y in ys)
    alpha = ss_xy / ss_xx
    r_squared = (ss_xy * ss_xy) / (ss_xx * ss_yy) if ss_yy else 1.0
    return alpha, r_squared
