"""Synthetic program-image generation from benchmark profiles.

Replaces the paper's SPEC CPU2006 MIPS binaries (see DESIGN.md).  The
generator samples mnemonics from a :class:`~repro.program.profiles.
BenchmarkProfile` and then fills operand fields with *realistic*
values — ABI-weighted register choices, small structured immediates,
in-range branch offsets and jump targets — because the recovery
heuristic's behaviour on low-order bits depends on field contents being
plausible, not uniform noise.

Every emitted word is checked against the decoder; the generator can
never produce an illegal instruction.
"""

from __future__ import annotations

import random
import zlib

from repro.errors import ProgramImageError
from repro.isa.decoder import try_decode
from repro.isa.encoder import encode
from repro.isa.opcodes import OperandStyle, spec_for_mnemonic
from repro.program.image import ProgramImage
from repro.program.profiles import BenchmarkProfile, profile_for

__all__ = ["SyntheticProgramGenerator", "synthesize_benchmark"]

# Register-class sampling weights (ABI roles, see repro.isa.registers):
# compilers concentrate traffic on $sp-relative spills, argument and
# temporary registers; $zero appears as an operand constantly.
_REGISTER_POOL: tuple[tuple[int, float], ...] = (
    # (register, weight)
    (29, 0.10),  # $sp
    (30, 0.02),  # $fp
    (28, 0.03),  # $gp
    (4, 0.06), (5, 0.05), (6, 0.04), (7, 0.03),          # $a0..$a3
    (2, 0.08), (3, 0.04),                                # $v0, $v1
    (8, 0.06), (9, 0.06), (10, 0.05), (11, 0.04),        # $t0..$t3
    (12, 0.03), (13, 0.03), (14, 0.02), (15, 0.02),      # $t4..$t7
    (24, 0.02), (25, 0.03),                              # $t8, $t9 (calls)
    (16, 0.05), (17, 0.04), (18, 0.03), (19, 0.02),      # $s0..$s3
    (20, 0.02), (21, 0.015), (22, 0.01), (23, 0.01),     # $s4..$s7
    (0, 0.08),   # $zero
    (31, 0.02),  # $ra
    (1, 0.005),  # $at
)

_COMMON_IMMEDIATES: tuple[int, ...] = (
    0, 1, 2, 3, 4, 8, 16, 24, 32, 64, 100, 255, 256, 1024, -1, -2, -4, -8,
)


class SyntheticProgramGenerator:
    """Generates :class:`ProgramImage` objects from a profile.

    Parameters
    ----------
    profile:
        The benchmark instruction mix to sample from.
    seed:
        Seed for the private RNG; the same (profile, seed, length)
        triple always yields the identical image.
    base_address:
        Address of the first instruction.
    """

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        base_address: int = 0x0040_0000,
    ) -> None:
        self._profile = profile
        # zlib.crc32 rather than hash(): str hashing is salted per
        # process and would silently break cross-run reproducibility.
        self._rng = random.Random(zlib.crc32(profile.name.encode()) ^ seed)
        self._base_address = base_address
        normalized = profile.normalized()
        self._mnemonics = list(normalized)
        self._weights = [normalized[m] for m in self._mnemonics]
        regs, reg_weights = zip(*_REGISTER_POOL)
        self._registers = regs
        self._register_weights = reg_weights

    # ------------------------------------------------------------------
    # Operand synthesis
    # ------------------------------------------------------------------

    def _register(self) -> int:
        return self._rng.choices(self._registers, self._register_weights)[0]

    def _writable_register(self) -> int:
        while True:
            register = self._register()
            if register != 0:
                return register

    def _fp_register(self) -> int:
        # Even registers: o32 doubles occupy even/odd pairs.
        return self._rng.choice(range(0, 32, 2))

    def _load_store_offset(self) -> int:
        roll = self._rng.random()
        if roll < 0.7:
            # Word-aligned structure/stack offsets.
            return 4 * self._rng.randint(0, 64)
        if roll < 0.9:
            return self._rng.randint(0, 255)
        return -4 * self._rng.randint(1, 32)

    def _immediate(self, signed: bool) -> int:
        roll = self._rng.random()
        if roll < 0.55:
            return self._rng.choice(_COMMON_IMMEDIATES) if signed else abs(
                self._rng.choice(_COMMON_IMMEDIATES)
            )
        if roll < 0.85:
            return self._rng.randint(0, 127)
        if signed:
            return self._rng.randint(-0x8000, 0x7FFF)
        return self._rng.randint(0, 0xFFFF)

    def _branch_offset(self, index: int, length: int) -> int:
        """A non-zero offset keeping the target inside the image."""
        lowest = -min(index, 128)
        highest = min(length - index - 2, 128)
        if highest < 1 and lowest > -1:
            return 1  # degenerate tiny image: fall through past the end
        while True:
            offset = self._rng.randint(lowest, max(highest, lowest + 1))
            if offset != 0:
                return offset

    def _jump_target(self, length: int) -> int:
        address = self._base_address + 4 * self._rng.randint(0, length - 1)
        return (address >> 2) & 0x3FF_FFFF

    # ------------------------------------------------------------------
    # Instruction synthesis
    # ------------------------------------------------------------------

    def _synthesize_word(self, mnemonic: str, index: int, length: int) -> int:
        spec = spec_for_mnemonic(mnemonic)
        style = spec.style
        rng = self._rng
        if style is OperandStyle.THREE_REG:
            return encode(mnemonic, rd=self._writable_register(),
                          rs=self._register(), rt=self._register())
        if style is OperandStyle.SHIFT_IMMEDIATE:
            if mnemonic == "sll" and rng.random() < 0.45:
                return 0  # canonical nop, ubiquitous in delay slots
            shamt = rng.choice((1, 2, 3, 4, 8, 16, rng.randint(1, 31)))
            return encode(mnemonic, rd=self._writable_register(),
                          rt=self._register(), shamt=shamt)
        if style is OperandStyle.SHIFT_VARIABLE:
            return encode(mnemonic, rd=self._writable_register(),
                          rt=self._register(), rs=self._register())
        if style is OperandStyle.JUMP_REGISTER:
            register = 31 if rng.random() < 0.7 else self._register()
            return encode(mnemonic, rs=register)
        if style is OperandStyle.JUMP_LINK_REGISTER:
            return encode(mnemonic, rd=31, rs=rng.choice((25, 2, 8)))
        if style is OperandStyle.MOVE_FROM_HILO:
            return encode(mnemonic, rd=self._writable_register())
        if style is OperandStyle.MOVE_TO_HILO:
            return encode(mnemonic, rs=self._register())
        if style in (OperandStyle.MULT_DIV, OperandStyle.TRAP_TWO_REG):
            return encode(mnemonic, rs=self._register(), rt=self._register())
        if style is OperandStyle.NO_OPERANDS:
            return encode(mnemonic)
        if style is OperandStyle.IMMEDIATE_ARITH:
            if mnemonic == "addiu" and rng.random() < 0.25:
                # Stack adjustment idiom.
                return encode(mnemonic, rt=29, rs=29,
                              imm=rng.choice((-32, -40, -48, -64, 32, 40, 48, 64)))
            return encode(mnemonic, rt=self._writable_register(),
                          rs=self._register(), imm=self._immediate(signed=True))
        if style is OperandStyle.IMMEDIATE_LOGIC:
            return encode(mnemonic, rt=self._writable_register(),
                          rs=self._register(), imm=self._immediate(signed=False))
        if style is OperandStyle.LOAD_UPPER:
            # Upper halves of text/data/stack addresses.
            return encode(mnemonic, rt=self._writable_register(),
                          imm=rng.choice((0x0040, 0x0041, 0x1000, 0x7FFF, 0x0800)))
        if style is OperandStyle.LOAD_STORE:
            return encode(mnemonic, rt=self._register(), rs=self._register(),
                          imm=self._load_store_offset())
        if style is OperandStyle.COP_LOAD_STORE:
            return encode(mnemonic, rt=self._fp_register(), rs=self._register(),
                          imm=self._load_store_offset())
        if style is OperandStyle.CACHE_OP:
            return encode(mnemonic, rt=rng.randint(0, 31), rs=self._register(),
                          imm=self._load_store_offset())
        if style is OperandStyle.BRANCH_TWO_REG:
            return encode(mnemonic, rs=self._register(), rt=self._register(),
                          imm=self._branch_offset(index, length))
        if style is OperandStyle.BRANCH_ONE_REG:
            return encode(mnemonic, rs=self._register(),
                          imm=self._branch_offset(index, length))
        if style is OperandStyle.TRAP_IMMEDIATE:
            return encode(mnemonic, rs=self._register(),
                          imm=self._immediate(signed=True))
        if style is OperandStyle.JUMP_TARGET:
            return encode(mnemonic, target=self._jump_target(length))
        if style is OperandStyle.FP_THREE_REG:
            return encode(mnemonic, fd=self._fp_register(),
                          fs=self._fp_register(), ft=self._fp_register())
        if style is OperandStyle.FP_TWO_REG:
            return encode(mnemonic, fd=self._fp_register(), fs=self._fp_register())
        if style is OperandStyle.FP_COMPARE:
            return encode(mnemonic, fs=self._fp_register(), ft=self._fp_register())
        if style is OperandStyle.COP_TRANSFER:
            return encode(mnemonic, rt=self._writable_register(),
                          rd=rng.randint(0, 31))
        if style is OperandStyle.COP_OPERATION:
            return encode(mnemonic)
        raise ProgramImageError(f"no synthesizer for operand style {style}")

    def generate(self, length: int, name: str | None = None) -> ProgramImage:
        """Generate an image of *length* instructions.

        The image begins with a crt0-style entry stub modelled on what
        gcc/glibc startup code looks like — stack and globals setup,
        argument loads, calls into init routines, delay-slot nops.
        This matters for fidelity: the paper corrupts "the first 100
        instructions of each program's .text section", and in a real
        binary that window *is* startup boilerplate.
        """
        if length < 40:
            raise ProgramImageError(f"length must be >= 40, got {length}")
        base_hi = self._base_address >> 16

        def call(word_index: int) -> int:
            return encode(
                "jal", target=((self._base_address >> 2) + word_index) & 0x3FF_FFFF
            )

        words = [
            # __start: establish $gp, $sp, $fp.
            encode("lui", rt=28, imm=0x1000),            # $gp = &_gp
            encode("addiu", rt=28, rs=28, imm=0x7FF0),
            encode("lui", rt=29, imm=0x7FFF),            # $sp = stack top
            encode("addiu", rt=29, rs=29, imm=-16),
            encode("addu", rd=30, rs=29, rt=0),          # $fp = $sp
            0,                                           # nop (delay slot)
            # Load argc/argv/envp from the initial stack frame.
            encode("lw", rt=4, rs=29, imm=16),           # $a0 = argc
            encode("addiu", rt=5, rs=29, imm=20),        # $a1 = argv
            encode("sll", rd=2, rt=4, shamt=2),
            encode("addu", rd=6, rs=5, rt=2),            # $a2 = envp
            encode("addiu", rt=6, rs=6, imm=4),
            encode("sw", rt=6, rs=28, imm=-32688),       # environ = envp
            # __libc_init style calls with delay-slot nops.
            call(40),
            0,
            encode("lui", rt=4, imm=base_hi),            # &main
            encode("addiu", rt=4, rs=4, imm=0x0180),
            encode("lui", rt=5, imm=base_hi),            # &_fini
            encode("addiu", rt=5, rs=5, imm=0x0200),
            call(44),
            0,
            # Call main(argc, argv, envp).
            encode("lw", rt=4, rs=29, imm=16),
            encode("addiu", rt=5, rs=29, imm=20),
            call(48),
            0,
            # exit(main's return value), then a trap guard.
            encode("addu", rd=4, rs=2, rt=0),            # $a0 = $v0
            call(52),
            0,
            encode("addiu", rt=2, rs=0, imm=4001),       # exit syscall number
            encode("syscall"),
            encode("break"),
            0,
            0,
        ]
        while len(words) < length:
            mnemonic = self._rng.choices(self._mnemonics, self._weights)[0]
            word = self._synthesize_word(mnemonic, len(words), length)
            decoded = try_decode(word)
            if decoded is None:
                raise ProgramImageError(
                    f"synthesizer produced illegal word 0x{word:08x} "
                    f"for mnemonic {mnemonic!r}"
                )
            words.append(word)
        return ProgramImage.from_words(
            name or self._profile.name, words[:length], self._base_address
        )


def synthesize_benchmark(
    name: str, length: int = 4096, seed: int = 2016
) -> ProgramImage:
    """Generate the synthetic stand-in for a named SPEC benchmark.

    The default *seed* pins the images used across the test suite and
    the benchmark harness, so reported numbers are reproducible.
    """
    generator = SyntheticProgramGenerator(profile_for(name), seed=seed)
    return generator.generate(length)
