"""Program images, ELF I/O, statistics, and synthetic SPEC-like workloads."""

from repro.program.compiler import (
    CompileError,
    compile_source,
    compile_to_assembly,
)
from repro.program.elf import read_elf, write_elf
from repro.program.image import ProgramImage
from repro.program.profiles import (
    BENCHMARK_NAMES,
    BenchmarkProfile,
    SPEC_PROFILES,
    profile_for,
)
from repro.program.stats import (
    BigramTable,
    FrequencyTable,
    mnemonic_histogram,
    power_law_fit,
)
from repro.program.synth import SyntheticProgramGenerator, synthesize_benchmark

__all__ = [
    "CompileError",
    "compile_source",
    "compile_to_assembly",
    "read_elf",
    "write_elf",
    "ProgramImage",
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "profile_for",
    "BigramTable",
    "FrequencyTable",
    "mnemonic_histogram",
    "power_law_fit",
    "SyntheticProgramGenerator",
    "synthesize_benchmark",
]
