"""Minimal ELF32 (big-endian MIPS) object reader and writer.

The paper's pipeline is ``gcc -> ELF binary -> readelf -> .text words``.
We replace the proprietary SPEC binaries with synthetic ones, but keep
the container format real: images round-trip through genuine ELF32
files that external tools (``readelf``, ``objdump``) can inspect.  Only
the pieces of the format the pipeline touches are implemented: the ELF
header, the section header table, ``.text``, and ``.shstrtab``.
"""

from __future__ import annotations

import struct

from repro.errors import ElfFormatError
from repro.program.image import ProgramImage

__all__ = ["write_elf", "read_elf"]

_ELF_MAGIC = b"\x7fELF"
_ELFCLASS32 = 1
_ELFDATA2MSB = 2  # big-endian, as MIPS executables are
_EV_CURRENT = 1
_ET_EXEC = 2
_EM_MIPS = 8

_EHDR_FORMAT = ">16sHHIIIIIHHHHHH"
_EHDR_SIZE = struct.calcsize(_EHDR_FORMAT)
_SHDR_FORMAT = ">IIIIIIIIII"
_SHDR_SIZE = struct.calcsize(_SHDR_FORMAT)

_SHT_NULL = 0
_SHT_PROGBITS = 1
_SHT_STRTAB = 3
_SHF_ALLOC_EXECINSTR = 0x2 | 0x4


def write_elf(image: ProgramImage) -> bytes:
    """Serialize *image* as a big-endian ELF32 MIPS executable.

    Layout: ELF header, ``.text`` payload, ``.shstrtab`` payload,
    section header table (null / .text / .shstrtab).
    """
    text_payload = b"".join(struct.pack(">I", word) for word in image.words)
    shstrtab = b"\x00.text\x00.shstrtab\x00"
    text_name_offset = 1
    shstrtab_name_offset = 7

    text_offset = _EHDR_SIZE
    shstrtab_offset = text_offset + len(text_payload)
    shoff = shstrtab_offset + len(shstrtab)

    header = struct.pack(
        _EHDR_FORMAT,
        _ELF_MAGIC + bytes([_ELFCLASS32, _ELFDATA2MSB, _EV_CURRENT]) + b"\x00" * 9,
        _ET_EXEC,
        _EM_MIPS,
        _EV_CURRENT,
        image.base_address,  # e_entry
        0,                   # e_phoff (no program headers: offline analysis only)
        shoff,               # e_shoff
        0,                   # e_flags
        _EHDR_SIZE,
        0,                   # e_phentsize
        0,                   # e_phnum
        _SHDR_SIZE,
        3,                   # e_shnum
        2,                   # e_shstrndx
    )

    null_shdr = struct.pack(_SHDR_FORMAT, 0, _SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0)
    text_shdr = struct.pack(
        _SHDR_FORMAT,
        text_name_offset,
        _SHT_PROGBITS,
        _SHF_ALLOC_EXECINSTR,
        image.base_address,
        text_offset,
        len(text_payload),
        0,
        0,
        4,  # alignment
        0,
    )
    shstrtab_shdr = struct.pack(
        _SHDR_FORMAT,
        shstrtab_name_offset,
        _SHT_STRTAB,
        0,
        0,
        shstrtab_offset,
        len(shstrtab),
        0,
        0,
        1,
        0,
    )
    return header + text_payload + shstrtab + null_shdr + text_shdr + shstrtab_shdr


def read_elf(data: bytes, name: str = "elf") -> ProgramImage:
    """Parse an ELF32 big-endian MIPS binary and extract its ``.text``.

    Raises :class:`ElfFormatError` on any malformed structure; a parser
    used on fault-injection experiments cannot afford to guess.
    """
    if len(data) < _EHDR_SIZE:
        raise ElfFormatError(f"file is {len(data)} bytes, smaller than an ELF header")
    (
        ident,
        e_type,
        e_machine,
        e_version,
        e_entry,
        _e_phoff,
        e_shoff,
        _e_flags,
        _e_ehsize,
        _e_phentsize,
        _e_phnum,
        e_shentsize,
        e_shnum,
        e_shstrndx,
    ) = struct.unpack_from(_EHDR_FORMAT, data, 0)
    if ident[:4] != _ELF_MAGIC:
        raise ElfFormatError(f"bad ELF magic {ident[:4]!r}")
    if ident[4] != _ELFCLASS32:
        raise ElfFormatError(f"not a 32-bit ELF (class {ident[4]})")
    if ident[5] != _ELFDATA2MSB:
        raise ElfFormatError(f"not big-endian (data encoding {ident[5]})")
    if e_machine != _EM_MIPS:
        raise ElfFormatError(f"not a MIPS binary (machine {e_machine})")
    if e_version != _EV_CURRENT or e_type != _ET_EXEC:
        raise ElfFormatError(
            f"unsupported ELF type/version ({e_type}/{e_version})"
        )
    if e_shentsize != _SHDR_SIZE:
        raise ElfFormatError(f"unexpected section header size {e_shentsize}")
    if e_shnum < 1 or e_shstrndx >= e_shnum:
        raise ElfFormatError(
            f"inconsistent section counts (shnum={e_shnum}, shstrndx={e_shstrndx})"
        )
    if e_shoff + e_shnum * _SHDR_SIZE > len(data):
        raise ElfFormatError("section header table extends past end of file")

    def section_header(index: int) -> tuple[int, ...]:
        return struct.unpack_from(_SHDR_FORMAT, data, e_shoff + index * _SHDR_SIZE)

    str_header = section_header(e_shstrndx)
    str_offset, str_size = str_header[4], str_header[5]
    if str_offset + str_size > len(data):
        raise ElfFormatError("string table extends past end of file")
    strtab = data[str_offset : str_offset + str_size]

    def section_name(name_offset: int) -> str:
        end = strtab.find(b"\x00", name_offset)
        if end < 0:
            raise ElfFormatError("unterminated section name")
        return strtab[name_offset:end].decode("ascii", errors="replace")

    for index in range(e_shnum):
        shdr = section_header(index)
        sh_name, sh_type, _flags, sh_addr, sh_offset, sh_size = shdr[:6]
        if sh_type == _SHT_PROGBITS and section_name(sh_name) == ".text":
            if sh_size % 4:
                raise ElfFormatError(
                    f".text size {sh_size} is not a multiple of 4"
                )
            if sh_offset + sh_size > len(data):
                raise ElfFormatError(".text extends past end of file")
            words = [
                struct.unpack_from(">I", data, sh_offset + 4 * i)[0]
                for i in range(sh_size // 4)
            ]
            base = sh_addr if sh_addr else e_entry
            if base % 4:
                raise ElfFormatError(
                    f".text load address 0x{base:x} is not word aligned"
                )
            if not words:
                raise ElfFormatError(".text section is empty")
            return ProgramImage.from_words(name, words, base_address=base)
    raise ElfFormatError("no .text section found")
