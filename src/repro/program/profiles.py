"""Per-benchmark instruction-mix profiles modelled on the paper's Fig. 7.

The paper computed mnemonic frequencies from five SPEC CPU2006
benchmarks cross-compiled to 32-bit MIPS-I.  Those binaries are
proprietary, so this module captures the *published shape* of their
distributions instead (DESIGN.md, substitution table):

- a power law with a long tail spanning ~5 orders of magnitude
  (Fig. 7b),
- ``lw`` at roughly 20% of all instructions in every benchmark
  (Fig. 7a),
- a common ranking of the head (loads, address arithmetic, stores,
  branches) with per-benchmark character: bit-twiddling in bzip2,
  byte traffic and multiplies in h264ref, pointer chasing in mcf,
  dispatch-heavy control flow in perlbench, and floating point in
  povray.

Weights are relative; the synthesizer normalises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.isa.opcodes import INSTRUCTION_SPECS

__all__ = ["BenchmarkProfile", "SPEC_PROFILES", "profile_for", "BENCHMARK_NAMES"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named instruction mix: mnemonic -> relative weight."""

    name: str
    description: str
    mix: Mapping[str, float]

    def __post_init__(self) -> None:
        unknown = sorted(set(self.mix) - set(INSTRUCTION_SPECS))
        if unknown:
            raise ValueError(
                f"profile {self.name!r} references unknown mnemonics: {unknown}"
            )
        if not self.mix:
            raise ValueError(f"profile {self.name!r} has an empty mix")
        if any(weight <= 0 for weight in self.mix.values()):
            raise ValueError(f"profile {self.name!r} has non-positive weights")

    def normalized(self) -> dict[str, float]:
        """The mix scaled to sum to 1.0."""
        total = sum(self.mix.values())
        return {mnemonic: weight / total for mnemonic, weight in self.mix.items()}


# The common integer head + tail shared by all benchmarks.  Weights
# approximate the Fig. 7 power law (lw ~ 0.20, tail down to ~1e-5).
_BASE_MIX: dict[str, float] = {
    "lw": 0.200, "addiu": 0.105, "sw": 0.075, "addu": 0.055, "beq": 0.042,
    "bne": 0.040, "lui": 0.036, "sll": 0.030, "jal": 0.030, "jr": 0.022,
    "j": 0.018, "ori": 0.016, "lbu": 0.016, "slt": 0.014, "andi": 0.013,
    "subu": 0.013, "or": 0.012, "sltu": 0.012, "sb": 0.012, "srl": 0.011,
    "lb": 0.010, "and": 0.009, "slti": 0.009, "sra": 0.008, "sltiu": 0.007,
    "lhu": 0.007, "sh": 0.006, "bgez": 0.006, "xor": 0.005, "mflo": 0.005,
    "jalr": 0.005, "bltz": 0.005, "blez": 0.0045, "mult": 0.004, "lh": 0.004,
    "nor": 0.0035, "bgtz": 0.0035, "xori": 0.003, "mfhi": 0.0025,
    "multu": 0.002, "div": 0.0018, "sllv": 0.0018, "movz": 0.0012,
    "srlv": 0.0010, "divu": 0.0010, "movn": 0.0010, "lwl": 0.0010,
    "lwr": 0.0010, "swl": 0.0008, "swr": 0.0008, "srav": 0.0006,
    "bgezal": 0.0005, "syscall": 0.0004, "teq": 0.0003, "break": 0.0002,
    "bltzal": 0.0002, "tne": 0.0001, "sync": 0.0001, "mthi": 0.00005,
    "mtlo": 0.00005,
}


def _variant(scales: dict[str, float], extra: dict[str, float] | None = None) -> dict[str, float]:
    """Scale selected base-mix entries and append new ones."""
    mix = dict(_BASE_MIX)
    for mnemonic, factor in scales.items():
        if mnemonic not in mix:
            raise ValueError(f"cannot scale unknown base mnemonic {mnemonic!r}")
        mix[mnemonic] *= factor
    if extra:
        for mnemonic, weight in extra.items():
            if mnemonic in mix:
                raise ValueError(f"extra mnemonic {mnemonic!r} already in base mix")
            mix[mnemonic] = weight
    return mix


SPEC_PROFILES: Mapping[str, BenchmarkProfile] = MappingProxyType({
    "bzip2": BenchmarkProfile(
        name="bzip2",
        description="Burrows-Wheeler compression: shift/mask heavy, byte traffic",
        mix=_variant({
            "sll": 1.5, "srl": 1.8, "sra": 1.4, "andi": 1.7, "ori": 1.3,
            "lbu": 1.8, "sb": 1.6, "xor": 1.3, "mult": 0.5, "jal": 0.8,
        }),
    ),
    "h264ref": BenchmarkProfile(
        name="h264ref",
        description="Video encoding: multiplies, saturating byte arithmetic",
        mix=_variant({
            "mult": 2.5, "multu": 2.0, "mflo": 2.5, "mfhi": 1.8, "lbu": 1.6,
            "sb": 1.4, "lh": 2.0, "lhu": 1.8, "sh": 1.8, "subu": 1.3,
            "slt": 1.3,
        }),
    ),
    "mcf": BenchmarkProfile(
        name="mcf",
        description="Network simplex: pointer chasing, compare-and-branch",
        mix=_variant({
            "lw": 1.2, "beq": 1.3, "bne": 1.4, "slt": 1.4, "sltu": 1.5,
            "sw": 0.9, "sll": 0.8, "srl": 0.5, "andi": 0.6, "lbu": 0.4,
            "sb": 0.3, "mult": 0.4,
        }),
    ),
    "perlbench": BenchmarkProfile(
        name="perlbench",
        description="Interpreter: indirect jumps, dispatch tables, calls",
        mix=_variant({
            "jr": 1.8, "jalr": 2.5, "jal": 1.4, "lw": 1.05, "sltiu": 1.8,
            "slti": 1.4, "beq": 1.2, "bne": 1.2, "lui": 1.3, "andi": 1.2,
        }),
    ),
    "povray": BenchmarkProfile(
        name="povray",
        description="Ray tracing: double-precision floating point",
        mix=_variant(
            {
                "mult": 0.5, "multu": 0.4, "mflo": 0.5, "sll": 0.9,
                "srl": 0.6, "andi": 0.7, "lbu": 0.5, "sb": 0.4,
            },
            extra={
                "lwc1": 0.035, "swc1": 0.020, "mul.d": 0.009, "add.d": 0.008,
                "sub.d": 0.004, "c.lt.d": 0.004, "mov.d": 0.003,
                "cvt.d.w": 0.003, "add.s": 0.003, "mul.s": 0.003,
                "div.d": 0.002, "c.eq.d": 0.002, "neg.d": 0.001,
                "cvt.s.d": 0.001, "sqrt.d": 0.0008, "abs.d": 0.0005,
            },
        ),
    ),
})

BENCHMARK_NAMES: tuple[str, ...] = tuple(SPEC_PROFILES)


def profile_for(name: str) -> BenchmarkProfile:
    """Return the profile for a benchmark name.

    Raises ``KeyError`` listing the available names on a miss.
    """
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        ) from None
