"""A tiny structured-language compiler targeting MIPS-I.

The evaluation pipeline only needs instruction *images*, but the
forked-execution use model (Sec. III-C) and the end-to-end examples
need programs that actually run.  This module compiles "MiniLang" — a
C-like toy language with functions, integers, control flow, and raw
word memory access — into real MIPS assembly, which
:func:`repro.isa.assembler.assemble` turns into machine code.

Language sketch::

    fn fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    fn main() {
        print(fib(10));
        return fib(10);
    }

Grammar (expressions use C precedence)::

    program   := function*
    function  := "fn" name "(" params? ")" block
    block     := "{" statement* "}"
    statement := "let" name "=" expr ";"
               | name "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "return" expr ";"
               | "print" "(" expr ")" ";"
               | "store" "(" expr "," expr ")" ";"
               | expr ";"
    expr      := binary/unary over: integers, variables, calls,
                 "load" "(" expr ")"

Codegen is a straightforward stack machine: every expression leaves its
value in ``$v0``; binary operators stash the left operand on the stack.
Correct, unoptimised, and — usefully for this project — it produces the
load/store/branch-heavy code real compilers emit at ``-O0``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError, ReproError
from repro.isa.assembler import AssembledProgram, assemble

__all__ = ["CompileError", "compile_source", "compile_to_assembly"]


class CompileError(ReproError):
    """MiniLang source could not be compiled."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=(){},;])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {"fn", "let", "if", "else", "while", "return", "print", "load", "store"}
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "num", "name", "kw", or the operator text
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise CompileError(
                f"unexpected character {source[index]!r} at offset {index}"
            )
        index = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "num":
            tokens.append(_Token("num", text, match.start()))
        elif match.lastgroup == "name":
            kind = "kw" if text in _KEYWORDS else "name"
            tokens.append(_Token(kind, text, match.start()))
        else:
            tokens.append(_Token(text, text, match.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Num:
    value: int


@dataclass(frozen=True)
class _Var:
    name: str


@dataclass(frozen=True)
class _Unary:
    op: str
    operand: object


@dataclass(frozen=True)
class _Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class _Call:
    name: str
    args: tuple


@dataclass(frozen=True)
class _Load:
    address: object


@dataclass(frozen=True)
class _Let:
    name: str
    value: object


@dataclass(frozen=True)
class _Assign:
    name: str
    value: object


@dataclass(frozen=True)
class _If:
    condition: object
    then_body: tuple
    else_body: tuple


@dataclass(frozen=True)
class _While:
    condition: object
    body: tuple


@dataclass(frozen=True)
class _Return:
    value: object


@dataclass(frozen=True)
class _Print:
    value: object


@dataclass(frozen=True)
class _Store:
    address: object
    value: object


@dataclass(frozen=True)
class _ExprStatement:
    value: object


@dataclass(frozen=True)
class _Function:
    name: str
    params: tuple[str, ...]
    body: tuple


# ---------------------------------------------------------------------------
# Parser (recursive descent, C-style precedence climbing)
# ---------------------------------------------------------------------------

_BINARY_PRECEDENCE: dict[str, int] = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise CompileError(
                f"expected {kind!r} but found {token.text!r} "
                f"at offset {token.position}"
            )
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if token.kind != "kw" or token.text != word:
            raise CompileError(
                f"expected keyword {word!r} but found {token.text!r} "
                f"at offset {token.position}"
            )

    def parse_program(self) -> list[_Function]:
        functions = []
        while self._peek().kind != "eof":
            functions.append(self._parse_function())
        if not functions:
            raise CompileError("source defines no functions")
        return functions

    def _parse_function(self) -> _Function:
        self._expect_keyword("fn")
        name = self._expect("name").text
        self._expect("(")
        params: list[str] = []
        if self._peek().kind != ")":
            params.append(self._expect("name").text)
            while self._peek().kind == ",":
                self._advance()
                params.append(self._expect("name").text)
        self._expect(")")
        if len(params) > 4:
            raise CompileError(
                f"function {name!r} has {len(params)} parameters; "
                "the o32-style calling convention here allows 4"
            )
        body = self._parse_block()
        return _Function(name=name, params=tuple(params), body=body)

    def _parse_block(self) -> tuple:
        self._expect("{")
        statements = []
        while self._peek().kind != "}":
            statements.append(self._parse_statement())
        self._expect("}")
        return tuple(statements)

    def _parse_statement(self):
        token = self._peek()
        if token.kind == "kw":
            if token.text == "let":
                self._advance()
                name = self._expect("name").text
                self._expect("=")
                value = self._parse_expression()
                self._expect(";")
                return _Let(name=name, value=value)
            if token.text == "if":
                self._advance()
                self._expect("(")
                condition = self._parse_expression()
                self._expect(")")
                then_body = self._parse_block()
                else_body: tuple = ()
                if self._peek().kind == "kw" and self._peek().text == "else":
                    self._advance()
                    else_body = self._parse_block()
                return _If(condition=condition, then_body=then_body,
                           else_body=else_body)
            if token.text == "while":
                self._advance()
                self._expect("(")
                condition = self._parse_expression()
                self._expect(")")
                body = self._parse_block()
                return _While(condition=condition, body=body)
            if token.text == "return":
                self._advance()
                value = self._parse_expression()
                self._expect(";")
                return _Return(value=value)
            if token.text == "print":
                self._advance()
                self._expect("(")
                value = self._parse_expression()
                self._expect(")")
                self._expect(";")
                return _Print(value=value)
            if token.text == "store":
                self._advance()
                self._expect("(")
                address = self._parse_expression()
                self._expect(",")
                value = self._parse_expression()
                self._expect(")")
                self._expect(";")
                return _Store(address=address, value=value)
        if (
            token.kind == "name"
            and self._tokens[self._index + 1].kind == "="
        ):
            name = self._advance().text
            self._advance()  # '='
            value = self._parse_expression()
            self._expect(";")
            return _Assign(name=name, value=value)
        value = self._parse_expression()
        self._expect(";")
        return _ExprStatement(value=value)

    def _parse_expression(self, min_precedence: int = 1):
        left = self._parse_unary()
        while True:
            op = self._peek().kind
            precedence = _BINARY_PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_expression(precedence + 1)
            left = _Binary(op=op, left=left, right=right)

    def _parse_unary(self):
        token = self._peek()
        if token.kind in ("-", "!", "~"):
            self._advance()
            return _Unary(op=token.kind, operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self._advance()
        if token.kind == "num":
            return _Num(value=int(token.text, 0))
        if token.kind == "kw" and token.text == "load":
            self._expect("(")
            address = self._parse_expression()
            self._expect(")")
            return _Load(address=address)
        if token.kind == "name":
            if self._peek().kind == "(":
                self._advance()
                args = []
                if self._peek().kind != ")":
                    args.append(self._parse_expression())
                    while self._peek().kind == ",":
                        self._advance()
                        args.append(self._parse_expression())
                self._expect(")")
                if len(args) > 4:
                    raise CompileError(
                        f"call to {token.text!r} passes {len(args)} arguments; "
                        "at most 4 are supported"
                    )
                return _Call(name=token.text, args=tuple(args))
            return _Var(name=token.text)
        if token.kind == "(":
            inner = self._parse_expression()
            self._expect(")")
            return inner
        raise CompileError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


@dataclass
class _FunctionContext:
    name: str
    locals: dict[str, int] = field(default_factory=dict)  # name -> $fp offset

    def slot(self, name: str) -> int:
        try:
            return self.locals[name]
        except KeyError:
            raise CompileError(
                f"use of undefined variable {name!r} in function {self.name!r}"
            ) from None

    def define(self, name: str) -> int:
        if name not in self.locals:
            self.locals[name] = 4 * len(self.locals)
        return self.locals[name]


class _CodeGenerator:
    """Emits assembly text for a parsed program."""

    def __init__(self, functions: list[_Function]) -> None:
        self._functions = {f.name: f for f in functions}
        if len(self._functions) != len(functions):
            duplicates = [
                f.name for f in functions
                if sum(1 for g in functions if g.name == f.name) > 1
            ]
            raise CompileError(f"duplicate function names: {sorted(set(duplicates))}")
        if "main" not in self._functions:
            raise CompileError("program has no 'main' function")
        self._lines: list[str] = []
        self._label_counter = 0

    def _emit(self, line: str) -> None:
        self._lines.append(f"    {line}")

    def _label(self, text: str) -> None:
        self._lines.append(f"{text}:")

    def _fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"L{stem}_{self._label_counter}"

    def _push_v0(self) -> None:
        self._emit("addiu $sp, $sp, -4")
        self._emit("sw $v0, 0($sp)")

    def _pop_t1(self) -> None:
        self._emit("lw $t1, 0($sp)")
        self._emit("addiu $sp, $sp, 4")

    # -- program / function layout --------------------------------------

    def generate(self) -> str:
        # Entry stub: call main, then exit2(main's return value).
        self._label("__start")
        self._emit("jal main")
        self._emit("nop")
        self._emit("move $a0, $v0")
        self._emit("li $v0, 17")
        self._emit("syscall")
        self._emit("break")  # unreachable guard
        for function in self._functions.values():
            self._generate_function(function)
        return "\n".join(self._lines) + "\n"

    def _collect_locals(self, body: tuple, context: _FunctionContext) -> None:
        for statement in body:
            if isinstance(statement, _Let):
                context.define(statement.name)
            elif isinstance(statement, _If):
                self._collect_locals(statement.then_body, context)
                self._collect_locals(statement.else_body, context)
            elif isinstance(statement, _While):
                self._collect_locals(statement.body, context)

    def _generate_function(self, function: _Function) -> None:
        context = _FunctionContext(name=function.name)
        for param in function.params:
            context.define(param)
        self._collect_locals(function.body, context)
        locals_bytes = 4 * len(context.locals)
        frame = locals_bytes + 8  # locals + saved $ra + saved $fp

        self._label(function.name)
        self._emit(f"addiu $sp, $sp, -{frame}")
        self._emit(f"sw $ra, {frame - 4}($sp)")
        self._emit(f"sw $fp, {frame - 8}($sp)")
        self._emit("move $fp, $sp")
        for index, param in enumerate(function.params):
            self._emit(f"sw $a{index}, {context.slot(param)}($fp)")

        epilogue = self._fresh_label(f"ret_{function.name}")
        for statement in function.body:
            self._generate_statement(statement, context, epilogue, frame)
        # Implicit `return 0` at the end of a function body.
        self._emit("li $v0, 0")
        self._label(epilogue)
        self._emit("move $sp, $fp")
        self._emit(f"lw $ra, {frame - 4}($sp)")
        self._emit(f"lw $fp, {frame - 8}($sp)")
        self._emit(f"addiu $sp, $sp, {frame}")
        self._emit("jr $ra")
        self._emit("nop")

    # -- statements -------------------------------------------------------

    def _generate_statement(
        self, statement, context: _FunctionContext, epilogue: str, frame: int
    ) -> None:
        if isinstance(statement, (_Let, _Assign)):
            self._generate_expression(statement.value, context)
            self._emit(f"sw $v0, {context.slot(statement.name)}($fp)")
            return
        if isinstance(statement, _If):
            else_label = self._fresh_label("else")
            end_label = self._fresh_label("endif")
            self._generate_expression(statement.condition, context)
            self._emit(f"beqz $v0, {else_label}")
            self._emit("nop")
            for inner in statement.then_body:
                self._generate_statement(inner, context, epilogue, frame)
            self._emit(f"b {end_label}")
            self._emit("nop")
            self._label(else_label)
            for inner in statement.else_body:
                self._generate_statement(inner, context, epilogue, frame)
            self._label(end_label)
            return
        if isinstance(statement, _While):
            head_label = self._fresh_label("while")
            end_label = self._fresh_label("endwhile")
            self._label(head_label)
            self._generate_expression(statement.condition, context)
            self._emit(f"beqz $v0, {end_label}")
            self._emit("nop")
            for inner in statement.body:
                self._generate_statement(inner, context, epilogue, frame)
            self._emit(f"b {head_label}")
            self._emit("nop")
            self._label(end_label)
            return
        if isinstance(statement, _Return):
            self._generate_expression(statement.value, context)
            self._emit(f"b {epilogue}")
            self._emit("nop")
            return
        if isinstance(statement, _Print):
            self._generate_expression(statement.value, context)
            self._emit("move $a0, $v0")
            self._emit("li $v0, 1")
            self._emit("syscall")
            return
        if isinstance(statement, _Store):
            self._generate_expression(statement.address, context)
            self._push_v0()
            self._generate_expression(statement.value, context)
            self._pop_t1()
            self._emit("sw $v0, 0($t1)")
            return
        if isinstance(statement, _ExprStatement):
            self._generate_expression(statement.value, context)
            return
        raise CompileError(f"cannot generate code for statement {statement!r}")

    # -- expressions --------------------------------------------------------

    def _generate_expression(self, expr, context: _FunctionContext) -> None:
        if isinstance(expr, _Num):
            if not -0x8000_0000 <= expr.value <= 0xFFFF_FFFF:
                raise CompileError(f"literal {expr.value} exceeds 32 bits")
            self._emit(f"li $v0, {expr.value}")
            return
        if isinstance(expr, _Var):
            self._emit(f"lw $v0, {context.slot(expr.name)}($fp)")
            return
        if isinstance(expr, _Load):
            self._generate_expression(expr.address, context)
            self._emit("lw $v0, 0($v0)")
            return
        if isinstance(expr, _Unary):
            self._generate_expression(expr.operand, context)
            if expr.op == "-":
                self._emit("subu $v0, $zero, $v0")
            elif expr.op == "~":
                self._emit("nor $v0, $v0, $zero")
            elif expr.op == "!":
                self._emit("sltiu $v0, $v0, 1")
            return
        if isinstance(expr, _Call):
            function = self._functions.get(expr.name)
            if function is None:
                raise CompileError(f"call to undefined function {expr.name!r}")
            if len(expr.args) != len(function.params):
                raise CompileError(
                    f"{expr.name!r} takes {len(function.params)} arguments, "
                    f"got {len(expr.args)}"
                )
            for argument in expr.args:
                self._generate_expression(argument, context)
                self._push_v0()
            for index in reversed(range(len(expr.args))):
                self._emit(f"lw $a{index}, 0($sp)")
                self._emit("addiu $sp, $sp, 4")
            self._emit(f"jal {expr.name}")
            self._emit("nop")
            return
        if isinstance(expr, _Binary):
            self._generate_expression(expr.left, context)
            self._push_v0()
            self._generate_expression(expr.right, context)
            self._pop_t1()  # $t1 = left, $v0 = right
            self._generate_binary_op(expr.op)
            return
        raise CompileError(f"cannot generate code for expression {expr!r}")

    def _generate_binary_op(self, op: str) -> None:
        if op == "+":
            self._emit("addu $v0, $t1, $v0")
        elif op == "-":
            self._emit("subu $v0, $t1, $v0")
        elif op == "*":
            self._emit("mult $t1, $v0")
            self._emit("mflo $v0")
        elif op == "/":
            self._emit("div $t1, $v0")
            self._emit("mflo $v0")
        elif op == "%":
            self._emit("div $t1, $v0")
            self._emit("mfhi $v0")
        elif op == "&":
            self._emit("and $v0, $t1, $v0")
        elif op == "|":
            self._emit("or $v0, $t1, $v0")
        elif op == "^":
            self._emit("xor $v0, $t1, $v0")
        elif op == "<<":
            self._emit("sllv $v0, $t1, $v0")
        elif op == ">>":
            self._emit("srav $v0, $t1, $v0")
        elif op == "<":
            self._emit("slt $v0, $t1, $v0")
        elif op == ">":
            self._emit("slt $v0, $v0, $t1")
        elif op == "<=":
            self._emit("slt $v0, $v0, $t1")
            self._emit("xori $v0, $v0, 1")
        elif op == ">=":
            self._emit("slt $v0, $t1, $v0")
            self._emit("xori $v0, $v0, 1")
        elif op == "==":
            self._emit("xor $v0, $t1, $v0")
            self._emit("sltiu $v0, $v0, 1")
        elif op == "!=":
            self._emit("xor $v0, $t1, $v0")
            self._emit("sltu $v0, $zero, $v0")
        elif op == "&&":
            self._emit("sltu $t1, $zero, $t1")
            self._emit("sltu $v0, $zero, $v0")
            self._emit("and $v0, $t1, $v0")
        elif op == "||":
            self._emit("or $v0, $t1, $v0")
            self._emit("sltu $v0, $zero, $v0")
        else:
            raise CompileError(f"no code generator for operator {op!r}")


def compile_to_assembly(source: str) -> str:
    """Compile MiniLang *source* to MIPS assembly text."""
    functions = _Parser(_tokenize(source)).parse_program()
    return _CodeGenerator(functions).generate()


def compile_source(source: str, base_address: int = 0x0040_0000) -> AssembledProgram:
    """Compile MiniLang *source* straight to machine code.

    Entry point is the image base (the ``__start`` stub), so the result
    can be handed to :class:`repro.sim.cpu.Cpu` directly.
    """
    assembly = compile_to_assembly(source)
    try:
        return assemble(assembly, base_address=base_address)
    except AssemblerError as exc:  # pragma: no cover - compiler bug guard
        raise CompileError(f"generated assembly failed to assemble: {exc}") from exc
