"""Program images: the unit of analysis for the paper's evaluation.

A :class:`ProgramImage` is a named ``.text`` section — a base address
plus a sequence of 32-bit instruction words — mirroring what the paper
extracted from SPEC CPU2006 binaries with ``readelf``.  The evaluation
operates on "the first 100 instructions of each program's .text
section" and on whole-image mnemonic statistics; both views live here.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import ProgramImageError
from repro.isa.decoder import try_decode
from repro.isa.disassembler import disassemble
from repro.isa.instruction import Instruction

__all__ = ["ProgramImage"]


@dataclass(frozen=True)
class ProgramImage:
    """An immutable program text section.

    Attributes
    ----------
    name:
        Benchmark-style name, e.g. ``"bzip2"``.
    words:
        Instruction words in address order.
    base_address:
        Byte address of ``words[0]``.
    """

    name: str
    words: tuple[int, ...]
    base_address: int = 0x0040_0000

    def __post_init__(self) -> None:
        if not self.words:
            raise ProgramImageError(f"image {self.name!r} has no instructions")
        if self.base_address % 4:
            raise ProgramImageError(
                f"image {self.name!r} base address 0x{self.base_address:x} "
                "is not word aligned"
            )
        for index, word in enumerate(self.words):
            if not 0 <= word <= 0xFFFFFFFF:
                raise ProgramImageError(
                    f"image {self.name!r} word {index} = 0x{word:x} is not 32 bits"
                )

    @classmethod
    def from_words(
        cls, name: str, words: Iterable[int], base_address: int = 0x0040_0000
    ) -> ProgramImage:
        """Build an image from any iterable of words."""
        return cls(name=name, words=tuple(words), base_address=base_address)

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self) -> Iterator[int]:
        return iter(self.words)

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at *index*."""
        if not 0 <= index < len(self.words):
            raise ProgramImageError(
                f"instruction index {index} out of range for {self.name!r}"
            )
        return self.base_address + 4 * index

    def word_at_address(self, address: int) -> int:
        """The instruction word stored at byte *address*."""
        offset = address - self.base_address
        if offset % 4 or not 0 <= offset // 4 < len(self.words):
            raise ProgramImageError(
                f"address 0x{address:x} is not a word of image {self.name!r}"
            )
        return self.words[offset // 4]

    def instruction_at(self, index: int) -> Instruction | None:
        """Decode the instruction at *index* (``None`` when illegal)."""
        self.address_of(index)  # bounds check
        return try_decode(self.words[index])

    def first(self, count: int) -> ProgramImage:
        """The image restricted to its first *count* instructions.

        This is the paper's evaluation window ("the first 100
        instructions from each program's .text section").
        """
        if count < 1:
            raise ProgramImageError(f"count must be >= 1, got {count}")
        return ProgramImage(
            name=self.name,
            words=self.words[:count],
            base_address=self.base_address,
        )

    def legal_fraction(self) -> float:
        """Fraction of words that decode as legal instructions."""
        legal = sum(1 for word in self.words if try_decode(word) is not None)
        return legal / len(self.words)

    def disassembly(self) -> str:
        """Full text disassembly of the image."""
        return disassemble(self.words, self.base_address)
