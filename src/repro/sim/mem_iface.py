"""Memory interfaces for the CPU simulator.

The simulator fetches and loads through a small protocol so it can run
over a plain word store (:class:`FlatMemory`) or over the ECC-protected
model (:class:`EccBackedMemory`), in which case DUEs flow through the
configured policy — including SWD-ECC heuristic recovery — *during
execution*, which is what the end-to-end examples demonstrate.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import MemoryFaultError
from repro.memory.model import EccMemory

__all__ = ["WordMemory", "FlatMemory", "EccBackedMemory", "PoisonError"]


class PoisonError(MemoryFaultError):
    """A poisoned word reached an architectural consumer."""


@runtime_checkable
class WordMemory(Protocol):
    """Word-granular memory as seen by the CPU."""

    def read_word(self, address: int) -> int:
        """Load the aligned 32-bit word at *address*."""

    def write_word(self, address: int, value: int) -> None:
        """Store an aligned 32-bit word."""

    def is_mapped(self, address: int) -> bool:
        """True when the aligned word at *address* exists."""


class FlatMemory:
    """A plain sparse word store (no ECC) for fast golden runs."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def read_word(self, address: int) -> int:
        try:
            return self._words[address]
        except KeyError:
            raise MemoryFaultError(
                f"read from unmapped address 0x{address:x}"
            ) from None

    def write_word(self, address: int, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise MemoryFaultError(f"value 0x{value:x} is not a 32-bit word")
        self._words[address] = value

    def is_mapped(self, address: int) -> bool:
        return address in self._words

    def load_image(self, words: list[int] | tuple[int, ...], base_address: int) -> None:
        """Bulk-store a program image."""
        for index, word in enumerate(words):
            self.write_word(base_address + 4 * index, word)


class EccBackedMemory:
    """Adapter running CPU traffic through an :class:`EccMemory`.

    Poisoned reads surface as :class:`MemoryFaultError` so the CPU can
    convert them into the POISON_CONSUMED symptom.
    """

    def __init__(self, memory: EccMemory) -> None:
        self._memory = memory

    @property
    def ecc_memory(self) -> EccMemory:
        """The wrapped ECC memory model."""
        return self._memory

    def read_word(self, address: int) -> int:
        result = self._memory.read(address)
        if result.poisoned:
            raise PoisonError(f"poisoned word consumed at 0x{address:x}")
        return result.word

    def write_word(self, address: int, value: int) -> None:
        self._memory.write(address, value)

    def is_mapped(self, address: int) -> bool:
        try:
            self._memory.raw_codeword(address)
        except MemoryFaultError:
            return False
        return True
