"""Symptom classification for abnormal execution (paper refs. [8], [9]).

The forked-execution use model of Sec. III-C needs to tell "this fork
consumed a wrong recovery candidate" from "this fork is fine".  The
signals it uses are the *symptoms of abnormal execution* from
ReStore-style detectors: illegal instructions, unaligned accesses, wild
jumps, traps firing, watchdog expiry.  :class:`Symptom` enumerates the
classes our CPU simulator can raise.
"""

from __future__ import annotations

import enum

__all__ = ["Symptom"]


class Symptom(enum.Enum):
    """Why a simulated program stopped abnormally."""

    ILLEGAL_INSTRUCTION = "illegal-instruction"
    """Fetch decoded to a reserved encoding (SIGILL)."""

    UNALIGNED_ACCESS = "unaligned-access"
    """A load/store address violated its natural alignment (SIGBUS)."""

    UNMAPPED_MEMORY = "unmapped-memory"
    """A data access touched an address with no backing (SIGSEGV)."""

    OUT_OF_RANGE_PC = "out-of-range-pc"
    """Control flow left the text segment (wild jump)."""

    OVERFLOW_TRAP = "overflow-trap"
    """A trapping arithmetic op (add/addi/sub) overflowed."""

    TRAP_INSTRUCTION = "trap-instruction"
    """A conditional trap (teq/tlt/...) fired."""

    BREAKPOINT = "breakpoint"
    """A break instruction executed outside a debugger."""

    DIVISION_BY_ZERO = "division-by-zero"
    """div/divu with a zero divisor (architecturally unpredictable;
    flagged as a symptom because compiled code guards against it)."""

    UNSUPPORTED_INSTRUCTION = "unsupported-instruction"
    """A legal encoding the functional simulator does not model
    (coprocessor operations); counts as abnormal for forked runs of
    integer-only programs."""

    POISON_CONSUMED = "poison-consumed"
    """The program architecturally consumed a poisoned word."""

    WATCHDOG_TIMEOUT = "watchdog-timeout"
    """The step budget expired (livelock / runaway loop)."""

    BAD_SYSCALL = "bad-syscall"
    """An unknown or malformed system call."""
