"""A functional MIPS-I CPU simulator with branch delay slots.

Executes the integer MIPS-I subset our compiler and synthesizer emit,
with architectural fidelity where it matters for fault experiments:

- big-endian memory, including the unaligned-access pair
  lwl/lwr/swl/swr;
- branch *delay slots* (the instruction after a branch always runs);
- trapping arithmetic (``add``/``addi``/``sub`` overflow) — compilers
  emit the non-trapping ``u`` forms, so a trap firing is a strong
  symptom that a recovery candidate was wrong;
- SPIM-style syscalls (print_int = 1, print_char = 11, exit = 10,
  exit2 = 17) plus the Linux ``exit`` number the crt0 stub uses.

Abnormal events do not raise: they end the run with a
:class:`~repro.sim.symptoms.Symptom`, which is what the forked-
execution arbiter consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryFaultError, UncorrectableError
from repro.isa.decoder import try_decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP0_OPCODE,
    COP1_OPCODE,
    COP2_OPCODE,
    COP3_OPCODE,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.mem_iface import PoisonError, WordMemory
from repro.sim.symptoms import Symptom

__all__ = ["Cpu", "ExecutionResult", "CpuState"]

_WORD_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000


def _signed(value: int) -> int:
    """Interpret a 32-bit value as two's complement."""
    return value - 0x1_0000_0000 if value & _SIGN_BIT else value


@dataclass
class CpuState:
    """Architectural state: registers, HI/LO, PC."""

    registers: list[int] = field(default_factory=lambda: [0] * 32)
    hi: int = 0
    lo: int = 0
    pc: int = 0

    def snapshot(self) -> tuple[int, ...]:
        """A hashable image of the state (fork-join comparison)."""
        return (*self.registers, self.hi, self.lo, self.pc)


@dataclass(frozen=True)
class ExecutionResult:
    """How a simulated run ended.

    Attributes
    ----------
    exit_code:
        The program's exit status when it terminated normally, else
        ``None``.
    symptom:
        The abnormal-execution symptom when it did not.
    steps:
        Instructions retired.
    output:
        Values emitted through print syscalls, in order.
    pc:
        Final program counter.
    state:
        Final architectural snapshot.
    """

    exit_code: int | None
    symptom: Symptom | None
    steps: int
    output: tuple[object, ...]
    pc: int
    state: tuple[int, ...]

    @property
    def crashed(self) -> bool:
        """True when the run ended with a symptom."""
        return self.symptom is not None


class _Halt(Exception):
    """Internal control flow: the program ended (normally or not)."""

    def __init__(self, exit_code: int | None, symptom: Symptom | None) -> None:
        super().__init__(symptom.value if symptom else f"exit {exit_code}")
        self.exit_code = exit_code
        self.symptom = symptom


class Cpu:
    """The simulator.

    Parameters
    ----------
    memory:
        Instruction and data memory (see :mod:`repro.sim.mem_iface`).
    entry_pc:
        Initial program counter.
    text_range:
        Valid [low, high) byte range for the PC; leaving it is the
        OUT_OF_RANGE_PC symptom.
    stack_pointer:
        Initial $sp (also $fp).
    """

    def __init__(
        self,
        memory: WordMemory,
        entry_pc: int,
        text_range: tuple[int, int],
        stack_pointer: int = 0x7FFF_FFF0,
    ) -> None:
        self._memory = memory
        self._text_low, self._text_high = text_range
        self.state = CpuState()
        self.state.pc = entry_pc
        self.state.registers[29] = stack_pointer
        self.state.registers[30] = stack_pointer
        self._next_pc = entry_pc + 4
        self._output: list[object] = []
        self._steps = 0

    # ------------------------------------------------------------------
    # Register and memory plumbing
    # ------------------------------------------------------------------

    def _read_reg(self, index: int) -> int:
        return self.state.registers[index]

    def _write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.state.registers[index] = value & _WORD_MASK

    def _load_word(self, address: int) -> int:
        if address % 4:
            raise _Halt(None, Symptom.UNALIGNED_ACCESS)
        try:
            return self._memory.read_word(address)
        except PoisonError as exc:
            raise _Halt(None, Symptom.POISON_CONSUMED) from exc
        except UncorrectableError:
            # A machine check under the crash policy is not a symptom
            # the program can contain: it propagates (kernel panic).
            raise
        except MemoryFaultError as exc:
            raise _Halt(None, Symptom.UNMAPPED_MEMORY) from exc

    def _store_word(self, address: int, value: int) -> None:
        if address % 4:
            raise _Halt(None, Symptom.UNALIGNED_ACCESS)
        try:
            self._memory.write_word(address, value & _WORD_MASK)
        except UncorrectableError:
            raise
        except MemoryFaultError as exc:
            raise _Halt(None, Symptom.UNMAPPED_MEMORY) from exc

    def _load_aligned(self, address: int) -> int:
        """Load the aligned word containing *address* (for sub-word ops)."""
        return self._load_word(address & ~3)

    def _load_byte(self, address: int) -> int:
        word = self._load_aligned(address)
        shift = (3 - (address & 3)) * 8  # big-endian byte order
        return (word >> shift) & 0xFF

    def _store_byte(self, address: int, value: int) -> None:
        aligned = address & ~3
        word = self._load_aligned(address)
        shift = (3 - (address & 3)) * 8
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._store_word(aligned, word)

    def _load_half(self, address: int) -> int:
        if address % 2:
            raise _Halt(None, Symptom.UNALIGNED_ACCESS)
        word = self._load_aligned(address)
        shift = (2 - (address & 3)) * 8
        return (word >> shift) & 0xFFFF

    def _store_half(self, address: int, value: int) -> None:
        if address % 2:
            raise _Halt(None, Symptom.UNALIGNED_ACCESS)
        aligned = address & ~3
        word = self._load_aligned(address)
        shift = (2 - (address & 3)) * 8
        word = (word & ~(0xFFFF << shift)) | ((value & 0xFFFF) << shift)
        self._store_word(aligned, word)

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------

    @property
    def output(self) -> tuple[object, ...]:
        """Values printed so far."""
        return tuple(self._output)

    def run(self, max_steps: int = 1_000_000) -> ExecutionResult:
        """Run until exit, a symptom, or the watchdog expires."""
        exit_code: int | None = None
        symptom: Symptom | None = None
        steps_before = self._steps
        try:
            with span("cpu.run"):
                while self._steps < max_steps:
                    self._step()
                symptom = Symptom.WATCHDOG_TIMEOUT
        except _Halt as halt:
            exit_code = halt.exit_code
            symptom = halt.symptom
        # Counters are updated once per run, not per step, so the hot
        # execution loop stays instrumentation free.
        registry = obs_metrics.get_registry()
        registry.counter("cpu.runs").inc()
        registry.counter("cpu.instructions").inc(self._steps - steps_before)
        if symptom is not None:
            registry.counter(f"cpu.symptom.{symptom.value}").inc()
        return ExecutionResult(
            exit_code=exit_code,
            symptom=symptom,
            steps=self._steps,
            output=tuple(self._output),
            pc=self.state.pc,
            state=self.state.snapshot(),
        )

    def _step(self) -> None:
        pc = self.state.pc
        if pc % 4 or not self._text_low <= pc < self._text_high:
            raise _Halt(None, Symptom.OUT_OF_RANGE_PC)
        word = self._load_word(pc)
        instruction = try_decode(word)
        if instruction is None:
            raise _Halt(None, Symptom.ILLEGAL_INSTRUCTION)
        # Delay-slot sequencing: the instruction at next_pc always
        # executes; a taken branch redirects the one after it.
        self.state.pc = self._next_pc
        self._next_pc = self.state.pc + 4
        self._steps += 1
        self._execute(instruction, pc)

    def _branch(self, taken: bool, offset: int, branch_pc: int) -> None:
        if taken:
            self._next_pc = (branch_pc + 4 + (offset << 2)) & _WORD_MASK

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, instruction: Instruction, pc: int) -> None:
        mnemonic = instruction.mnemonic
        handler = _HANDLERS.get(mnemonic)
        if handler is not None:
            handler(self, instruction, pc)
            return
        if instruction.opcode in (
            COP0_OPCODE, COP1_OPCODE, COP2_OPCODE, COP3_OPCODE,
        ) or mnemonic.startswith(("lwc", "swc")) or mnemonic == "cache":
            raise _Halt(None, Symptom.UNSUPPORTED_INSTRUCTION)
        raise _Halt(None, Symptom.UNSUPPORTED_INSTRUCTION)

    # -- arithmetic ----------------------------------------------------

    def _op_addu(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rs) + self._read_reg(i.rt))

    def _op_add(self, i: Instruction, pc: int) -> None:
        a = _signed(self._read_reg(i.rs))
        b = _signed(self._read_reg(i.rt))
        if not -0x8000_0000 <= a + b <= 0x7FFF_FFFF:
            raise _Halt(None, Symptom.OVERFLOW_TRAP)
        self._write_reg(i.rd, a + b)

    def _op_subu(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rs) - self._read_reg(i.rt))

    def _op_sub(self, i: Instruction, pc: int) -> None:
        a = _signed(self._read_reg(i.rs))
        b = _signed(self._read_reg(i.rt))
        if not -0x8000_0000 <= a - b <= 0x7FFF_FFFF:
            raise _Halt(None, Symptom.OVERFLOW_TRAP)
        self._write_reg(i.rd, a - b)

    def _op_addiu(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._read_reg(i.rs) + i.signed_immediate)

    def _op_addi(self, i: Instruction, pc: int) -> None:
        a = _signed(self._read_reg(i.rs))
        if not -0x8000_0000 <= a + i.signed_immediate <= 0x7FFF_FFFF:
            raise _Halt(None, Symptom.OVERFLOW_TRAP)
        self._write_reg(i.rt, a + i.signed_immediate)

    def _op_and(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rs) & self._read_reg(i.rt))

    def _op_or(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rs) | self._read_reg(i.rt))

    def _op_xor(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rs) ^ self._read_reg(i.rt))

    def _op_nor(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, ~(self._read_reg(i.rs) | self._read_reg(i.rt)))

    def _op_slt(self, i: Instruction, pc: int) -> None:
        self._write_reg(
            i.rd,
            1 if _signed(self._read_reg(i.rs)) < _signed(self._read_reg(i.rt)) else 0,
        )

    def _op_sltu(self, i: Instruction, pc: int) -> None:
        self._write_reg(
            i.rd, 1 if self._read_reg(i.rs) < self._read_reg(i.rt) else 0
        )

    def _op_slti(self, i: Instruction, pc: int) -> None:
        self._write_reg(
            i.rt, 1 if _signed(self._read_reg(i.rs)) < i.signed_immediate else 0
        )

    def _op_sltiu(self, i: Instruction, pc: int) -> None:
        self._write_reg(
            i.rt,
            1 if self._read_reg(i.rs) < (i.signed_immediate & _WORD_MASK) else 0,
        )

    def _op_andi(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._read_reg(i.rs) & i.immediate)

    def _op_ori(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._read_reg(i.rs) | i.immediate)

    def _op_xori(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._read_reg(i.rs) ^ i.immediate)

    def _op_lui(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, i.immediate << 16)

    # -- shifts ----------------------------------------------------------

    def _op_sll(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rt) << i.shamt)

    def _op_srl(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rt) >> i.shamt)

    def _op_sra(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, _signed(self._read_reg(i.rt)) >> i.shamt)

    def _op_sllv(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rt) << (self._read_reg(i.rs) & 31))

    def _op_srlv(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self._read_reg(i.rt) >> (self._read_reg(i.rs) & 31))

    def _op_srav(self, i: Instruction, pc: int) -> None:
        self._write_reg(
            i.rd, _signed(self._read_reg(i.rt)) >> (self._read_reg(i.rs) & 31)
        )

    # -- multiply / divide ------------------------------------------------

    def _op_mult(self, i: Instruction, pc: int) -> None:
        product = _signed(self._read_reg(i.rs)) * _signed(self._read_reg(i.rt))
        self.state.lo = product & _WORD_MASK
        self.state.hi = (product >> 32) & _WORD_MASK

    def _op_multu(self, i: Instruction, pc: int) -> None:
        product = self._read_reg(i.rs) * self._read_reg(i.rt)
        self.state.lo = product & _WORD_MASK
        self.state.hi = (product >> 32) & _WORD_MASK

    def _op_div(self, i: Instruction, pc: int) -> None:
        divisor = _signed(self._read_reg(i.rt))
        if divisor == 0:
            raise _Halt(None, Symptom.DIVISION_BY_ZERO)
        dividend = _signed(self._read_reg(i.rs))
        quotient = int(dividend / divisor)  # C-style truncation
        self.state.lo = quotient & _WORD_MASK
        self.state.hi = (dividend - quotient * divisor) & _WORD_MASK

    def _op_divu(self, i: Instruction, pc: int) -> None:
        divisor = self._read_reg(i.rt)
        if divisor == 0:
            raise _Halt(None, Symptom.DIVISION_BY_ZERO)
        dividend = self._read_reg(i.rs)
        self.state.lo = dividend // divisor
        self.state.hi = dividend % divisor

    def _op_mfhi(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self.state.hi)

    def _op_mflo(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, self.state.lo)

    def _op_mthi(self, i: Instruction, pc: int) -> None:
        self.state.hi = self._read_reg(i.rs)

    def _op_mtlo(self, i: Instruction, pc: int) -> None:
        self.state.lo = self._read_reg(i.rs)

    # -- conditional moves / sync ------------------------------------------

    def _op_movz(self, i: Instruction, pc: int) -> None:
        if self._read_reg(i.rt) == 0:
            self._write_reg(i.rd, self._read_reg(i.rs))

    def _op_movn(self, i: Instruction, pc: int) -> None:
        if self._read_reg(i.rt) != 0:
            self._write_reg(i.rd, self._read_reg(i.rs))

    def _op_sync(self, i: Instruction, pc: int) -> None:
        pass  # memory ordering is trivially satisfied here

    # -- control flow ---------------------------------------------------

    def _op_j(self, i: Instruction, pc: int) -> None:
        self._next_pc = ((pc + 4) & 0xF000_0000) | (i.target << 2)

    def _op_jal(self, i: Instruction, pc: int) -> None:
        self._write_reg(31, pc + 8)
        self._next_pc = ((pc + 4) & 0xF000_0000) | (i.target << 2)

    def _op_jr(self, i: Instruction, pc: int) -> None:
        self._next_pc = self._read_reg(i.rs)

    def _op_jalr(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rd, pc + 8)
        self._next_pc = self._read_reg(i.rs)

    def _op_beq(self, i: Instruction, pc: int) -> None:
        self._branch(
            self._read_reg(i.rs) == self._read_reg(i.rt), i.signed_immediate, pc
        )

    def _op_bne(self, i: Instruction, pc: int) -> None:
        self._branch(
            self._read_reg(i.rs) != self._read_reg(i.rt), i.signed_immediate, pc
        )

    def _op_blez(self, i: Instruction, pc: int) -> None:
        self._branch(_signed(self._read_reg(i.rs)) <= 0, i.signed_immediate, pc)

    def _op_bgtz(self, i: Instruction, pc: int) -> None:
        self._branch(_signed(self._read_reg(i.rs)) > 0, i.signed_immediate, pc)

    def _op_bltz(self, i: Instruction, pc: int) -> None:
        self._branch(_signed(self._read_reg(i.rs)) < 0, i.signed_immediate, pc)

    def _op_bgez(self, i: Instruction, pc: int) -> None:
        self._branch(_signed(self._read_reg(i.rs)) >= 0, i.signed_immediate, pc)

    def _op_bltzal(self, i: Instruction, pc: int) -> None:
        self._write_reg(31, pc + 8)
        self._branch(_signed(self._read_reg(i.rs)) < 0, i.signed_immediate, pc)

    def _op_bgezal(self, i: Instruction, pc: int) -> None:
        self._write_reg(31, pc + 8)
        self._branch(_signed(self._read_reg(i.rs)) >= 0, i.signed_immediate, pc)

    # -- traps ------------------------------------------------------------

    def _trap_if(self, condition: bool) -> None:
        if condition:
            raise _Halt(None, Symptom.TRAP_INSTRUCTION)

    def _op_teq(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) == self._read_reg(i.rt))

    def _op_tne(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) != self._read_reg(i.rt))

    def _op_tge(self, i: Instruction, pc: int) -> None:
        self._trap_if(
            _signed(self._read_reg(i.rs)) >= _signed(self._read_reg(i.rt))
        )

    def _op_tgeu(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) >= self._read_reg(i.rt))

    def _op_tlt(self, i: Instruction, pc: int) -> None:
        self._trap_if(
            _signed(self._read_reg(i.rs)) < _signed(self._read_reg(i.rt))
        )

    def _op_tltu(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) < self._read_reg(i.rt))

    def _op_tgei(self, i: Instruction, pc: int) -> None:
        self._trap_if(_signed(self._read_reg(i.rs)) >= i.signed_immediate)

    def _op_tgeiu(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) >= (i.signed_immediate & _WORD_MASK))

    def _op_tlti(self, i: Instruction, pc: int) -> None:
        self._trap_if(_signed(self._read_reg(i.rs)) < i.signed_immediate)

    def _op_tltiu(self, i: Instruction, pc: int) -> None:
        self._trap_if(self._read_reg(i.rs) < (i.signed_immediate & _WORD_MASK))

    def _op_teqi(self, i: Instruction, pc: int) -> None:
        self._trap_if(_signed(self._read_reg(i.rs)) == i.signed_immediate)

    def _op_tnei(self, i: Instruction, pc: int) -> None:
        self._trap_if(_signed(self._read_reg(i.rs)) != i.signed_immediate)

    def _op_break(self, i: Instruction, pc: int) -> None:
        raise _Halt(None, Symptom.BREAKPOINT)

    # -- loads / stores -----------------------------------------------------

    def _effective_address(self, i: Instruction) -> int:
        return (self._read_reg(i.rs) + i.signed_immediate) & _WORD_MASK

    def _op_lw(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._load_word(self._effective_address(i)))

    def _op_sw(self, i: Instruction, pc: int) -> None:
        self._store_word(self._effective_address(i), self._read_reg(i.rt))

    def _op_lb(self, i: Instruction, pc: int) -> None:
        value = self._load_byte(self._effective_address(i))
        self._write_reg(i.rt, value - 0x100 if value & 0x80 else value)

    def _op_lbu(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._load_byte(self._effective_address(i)))

    def _op_sb(self, i: Instruction, pc: int) -> None:
        self._store_byte(self._effective_address(i), self._read_reg(i.rt))

    def _op_lh(self, i: Instruction, pc: int) -> None:
        value = self._load_half(self._effective_address(i))
        self._write_reg(i.rt, value - 0x10000 if value & 0x8000 else value)

    def _op_lhu(self, i: Instruction, pc: int) -> None:
        self._write_reg(i.rt, self._load_half(self._effective_address(i)))

    def _op_sh(self, i: Instruction, pc: int) -> None:
        self._store_half(self._effective_address(i), self._read_reg(i.rt))

    def _op_lwl(self, i: Instruction, pc: int) -> None:
        address = self._effective_address(i)
        k = address & 3
        word = self._load_aligned(address)
        keep_mask = (1 << (8 * k)) - 1
        merged = ((word << (8 * k)) & _WORD_MASK) | (
            self._read_reg(i.rt) & keep_mask
        )
        self._write_reg(i.rt, merged)

    def _op_lwr(self, i: Instruction, pc: int) -> None:
        address = self._effective_address(i)
        k = address & 3
        word = self._load_aligned(address)
        take_mask = (1 << (8 * (k + 1))) - 1
        merged = (self._read_reg(i.rt) & ~take_mask & _WORD_MASK) | (
            (word >> (8 * (3 - k))) & take_mask
        )
        self._write_reg(i.rt, merged)

    def _op_swl(self, i: Instruction, pc: int) -> None:
        address = self._effective_address(i)
        k = address & 3
        aligned = address & ~3
        word = self._load_aligned(address)
        low_mask = (1 << (8 * (4 - k))) - 1  # bytes k..3 of the word
        merged = (word & ~low_mask & _WORD_MASK) | (self._read_reg(i.rt) >> (8 * k))
        self._store_word(aligned, merged)

    def _op_swr(self, i: Instruction, pc: int) -> None:
        address = self._effective_address(i)
        k = address & 3
        aligned = address & ~3
        word = self._load_aligned(address)
        high_mask = (_WORD_MASK << (8 * (3 - k))) & _WORD_MASK
        merged = (word & ~high_mask & _WORD_MASK) | (
            (self._read_reg(i.rt) << (8 * (3 - k))) & high_mask
        )
        self._store_word(aligned, merged)

    # -- system calls ---------------------------------------------------

    def _op_syscall(self, i: Instruction, pc: int) -> None:
        number = self._read_reg(2)  # $v0
        a0 = self._read_reg(4)
        if number == 1:  # print_int
            self._output.append(_signed(a0))
            return
        if number == 11:  # print_char
            self._output.append(chr(a0 & 0xFF))
            return
        if number == 10:  # exit
            raise _Halt(0, None)
        if number == 17:  # exit2(code)
            raise _Halt(_signed(a0), None)
        if number == 4001:  # Linux o32 exit
            raise _Halt(_signed(a0), None)
        raise _Halt(None, Symptom.BAD_SYSCALL)


def _build_handlers() -> dict:
    handlers = {}
    for attribute in dir(Cpu):
        if attribute.startswith("_op_"):
            handlers[attribute[4:]] = getattr(Cpu, attribute)
    return handlers


_HANDLERS = _build_handlers()
