"""Speculative forked execution over recovery candidates (Sec. III-C).

When the heuristic cannot be trusted outright, the paper proposes
forking execution once per candidate message and letting the forks
race: crashes and abnormal symptoms prune wrong candidates, identical
surviving states can be joined, and if ambiguity persists the system
forfeits and rolls back.  :class:`ForkedExecution` implements that
arbitration over the functional CPU simulator:

- **SOLE_SURVIVOR** — every fork but one crashed (rule i);
- **CONVERGED** — several forks survived with identical architectural
  outcomes, so the error was masked or immaterial (rules ii/iii);
- **ALL_CRASHED** — nothing survived: fall back to rollback (rule v);
- **AMBIGUOUS** — survivors disagree: forfeiting is safer than
  guessing (rule v).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.cpu import Cpu, ExecutionResult
from repro.sim.mem_iface import FlatMemory

__all__ = ["JoinRule", "ForkOutcome", "ForkVerdict", "ForkedExecution"]


class JoinRule(enum.Enum):
    """How the arbitration concluded."""

    SOLE_SURVIVOR = "sole-survivor"
    CONVERGED = "converged"
    ALL_CRASHED = "all-crashed"
    AMBIGUOUS = "ambiguous"


@dataclass(frozen=True)
class ForkOutcome:
    """One fork: the candidate it ran with and how the run ended."""

    candidate: int
    result: ExecutionResult

    @property
    def survived(self) -> bool:
        """True when the fork terminated normally (no symptom)."""
        return not self.result.crashed


@dataclass(frozen=True)
class ForkVerdict:
    """Arbitration result over all forks.

    Attributes
    ----------
    outcomes:
        Per-fork results, in candidate order.
    rule:
        Which join rule concluded the race.
    chosen:
        The accepted candidate message, or ``None`` when the system
        should forfeit (roll back / restart).
    """

    outcomes: tuple[ForkOutcome, ...]
    rule: JoinRule
    chosen: int | None

    @property
    def survivors(self) -> tuple[ForkOutcome, ...]:
        """Forks that terminated normally."""
        return tuple(o for o in self.outcomes if o.survived)


class ForkedExecution:
    """Runs one fork per candidate message and arbitrates.

    Parameters
    ----------
    words:
        The program image (one fork-local copy is made per candidate).
    base_address:
        Load address of ``words``.
    due_word_index:
        Index of the instruction word the DUE corrupted; each fork
        substitutes its candidate there.
    entry_pc:
        Start PC (defaults to the image base).
    max_steps:
        Per-fork watchdog budget.
    """

    def __init__(
        self,
        words: Sequence[int],
        base_address: int,
        due_word_index: int,
        entry_pc: int | None = None,
        max_steps: int = 200_000,
    ) -> None:
        if not 0 <= due_word_index < len(words):
            raise SimulationError(
                f"DUE word index {due_word_index} outside image of "
                f"{len(words)} words"
            )
        self._words = list(words)
        self._base_address = base_address
        self._due_word_index = due_word_index
        self._entry_pc = entry_pc if entry_pc is not None else base_address
        self._max_steps = max_steps

    def run_fork(self, candidate: int) -> ForkOutcome:
        """Execute one fork with *candidate* patched over the DUE."""
        memory = FlatMemory()
        patched = list(self._words)
        patched[self._due_word_index] = candidate
        memory.load_image(patched, self._base_address)
        text_range = (
            self._base_address,
            self._base_address + 4 * len(patched),
        )
        cpu = Cpu(memory, entry_pc=self._entry_pc, text_range=text_range)
        result = cpu.run(max_steps=self._max_steps)
        return ForkOutcome(candidate=candidate, result=result)

    def run(self, candidates: Sequence[int]) -> ForkVerdict:
        """Race all candidates and arbitrate per the Sec. III-C rules."""
        if not candidates:
            raise SimulationError("forked execution needs at least one candidate")
        outcomes = tuple(self.run_fork(candidate) for candidate in candidates)
        survivors = [o for o in outcomes if o.survived]
        if not survivors:
            return ForkVerdict(outcomes=outcomes, rule=JoinRule.ALL_CRASHED, chosen=None)
        if len(survivors) == 1:
            return ForkVerdict(
                outcomes=outcomes,
                rule=JoinRule.SOLE_SURVIVOR,
                chosen=survivors[0].candidate,
            )
        # Milestone comparison: exit status plus everything the program
        # externalized.  Identical observable behaviour means the forks
        # can be joined regardless of which candidate was "really" right.
        signatures = {
            (o.result.exit_code, o.result.output) for o in survivors
        }
        if len(signatures) == 1:
            return ForkVerdict(
                outcomes=outcomes,
                rule=JoinRule.CONVERGED,
                chosen=min(o.candidate for o in survivors),
            )
        return ForkVerdict(outcomes=outcomes, rule=JoinRule.AMBIGUOUS, chosen=None)
