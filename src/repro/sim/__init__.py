"""Functional MIPS-I simulation: CPU, memory interfaces, forked execution."""

from repro.sim.cpu import Cpu, CpuState, ExecutionResult
from repro.sim.fork import ForkedExecution, ForkOutcome, ForkVerdict, JoinRule
from repro.sim.mem_iface import (
    EccBackedMemory,
    FlatMemory,
    PoisonError,
    WordMemory,
)
from repro.sim.symptoms import Symptom

__all__ = [
    "Cpu",
    "CpuState",
    "ExecutionResult",
    "ForkedExecution",
    "ForkOutcome",
    "ForkVerdict",
    "JoinRule",
    "EccBackedMemory",
    "FlatMemory",
    "PoisonError",
    "WordMemory",
    "Symptom",
]
