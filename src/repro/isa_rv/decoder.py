"""RV32I legality oracle: SWD-ECC on "other ISAs" (paper future work).

The paper's conclusion proposes applying the technique to other
instruction sets.  RISC-V's RV32I base is the interesting contrast to
MIPS-I: its encoding is much *sparser* —

- bits [1:0] must be ``11`` for any 32-bit instruction (3/4 of the
  space is gone immediately);
- only 11 of the 32 major opcodes are populated;
- most opcodes constrain funct3, and the register-register group
  additionally constrains funct7;

so a random 32-bit word is far less likely to be a legal instruction
than under MIPS (~9 % vs ~58 %), which makes legality filtering a far
sharper knife.  The comparison is quantified in
``benchmarks/bench_ext_riscv.py``.

This module mirrors the :mod:`repro.isa.decoder` surface at the level
SWD-ECC needs: :func:`is_legal`, :func:`mnemonic_of` /
:func:`try_mnemonic`, plus per-format encoders for the workload
synthesizer.  (It is a legality-and-statistics oracle, not a full
toolchain like the MIPS package.)
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import IllegalInstructionError

__all__ = [
    "is_legal",
    "try_mnemonic",
    "mnemonic_of",
    "encode_r",
    "encode_i",
    "encode_s",
    "encode_b",
    "encode_u",
    "encode_j",
    "RV32I_MNEMONICS",
]

# Major opcodes (bits 6..0, with [1:0] = 0b11).
_LUI = 0b0110111
_AUIPC = 0b0010111
_JAL = 0b1101111
_JALR = 0b1100111
_BRANCH = 0b1100011
_LOAD = 0b0000011
_STORE = 0b0100011
_OP_IMM = 0b0010011
_OP = 0b0110011
_MISC_MEM = 0b0001111
_SYSTEM = 0b1110011

_BRANCH_FUNCT3 = {
    0b000: "beq", 0b001: "bne", 0b100: "blt", 0b101: "bge",
    0b110: "bltu", 0b111: "bgeu",
}
_LOAD_FUNCT3 = {
    0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu",
}
_STORE_FUNCT3 = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_OP_IMM_FUNCT3 = {
    0b000: "addi", 0b010: "slti", 0b011: "sltiu", 0b100: "xori",
    0b110: "ori", 0b111: "andi",
    # 001 (slli) and 101 (srli/srai) are funct7 constrained, handled below.
}
_OP_FUNCT = {
    (0b000, 0b0000000): "add", (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll",
    (0b010, 0b0000000): "slt", (0b011, 0b0000000): "sltu",
    (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl", (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or", (0b111, 0b0000000): "and",
}
_CSR_FUNCT3 = {
    0b001: "csrrw", 0b010: "csrrs", 0b011: "csrrc",
    0b101: "csrrwi", 0b110: "csrrsi", 0b111: "csrrci",
}

RV32I_MNEMONICS: frozenset[str] = frozenset(
    {"lui", "auipc", "jal", "jalr", "fence", "fence.i", "ecall", "ebreak",
     "slli", "srli", "srai"}
    | set(_BRANCH_FUNCT3.values())
    | set(_LOAD_FUNCT3.values())
    | set(_STORE_FUNCT3.values())
    | set(_OP_IMM_FUNCT3.values())
    | set(_OP_FUNCT.values())
    | set(_CSR_FUNCT3.values())
)


def _fields(word: int) -> tuple[int, int, int]:
    """(opcode, funct3, funct7) of a 32-bit word."""
    return word & 0x7F, (word >> 12) & 0x7, (word >> 25) & 0x7F


@lru_cache(maxsize=1 << 16)
def try_mnemonic(word: int) -> str | None:
    """The RV32I mnemonic of *word*, or ``None`` when illegal."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise ValueError(f"instruction word 0x{word:x} is not 32 bits")
    if word & 0b11 != 0b11:
        return None  # compressed/reserved encoding space
    opcode, funct3, funct7 = _fields(word)
    if opcode == _LUI:
        return "lui"
    if opcode == _AUIPC:
        return "auipc"
    if opcode == _JAL:
        return "jal"
    if opcode == _JALR:
        return "jalr" if funct3 == 0 else None
    if opcode == _BRANCH:
        return _BRANCH_FUNCT3.get(funct3)
    if opcode == _LOAD:
        return _LOAD_FUNCT3.get(funct3)
    if opcode == _STORE:
        return _STORE_FUNCT3.get(funct3)
    if opcode == _OP_IMM:
        if funct3 == 0b001:
            return "slli" if funct7 == 0 else None
        if funct3 == 0b101:
            if funct7 == 0:
                return "srli"
            if funct7 == 0b0100000:
                return "srai"
            return None
        return _OP_IMM_FUNCT3.get(funct3)
    if opcode == _OP:
        return _OP_FUNCT.get((funct3, funct7))
    if opcode == _MISC_MEM:
        if funct3 == 0b000:
            return "fence"
        if funct3 == 0b001:
            return "fence.i"
        return None
    if opcode == _SYSTEM:
        if funct3 == 0b000:
            # ECALL/EBREAK: rd, rs1 must be zero; imm selects which.
            if word >> 7 == 0:
                return "ecall"
            if word >> 7 == (1 << 13):  # imm=1 in bits 31..20
                return "ebreak"
            return None
        return _CSR_FUNCT3.get(funct3)
    return None


def is_legal(word: int) -> bool:
    """True when *word* is a legal RV32I instruction."""
    return try_mnemonic(word) is not None


def mnemonic_of(word: int) -> str:
    """The mnemonic of a legal word (raises for illegal encodings)."""
    mnemonic = try_mnemonic(word)
    if mnemonic is None:
        raise IllegalInstructionError(word, "not a legal RV32I encoding")
    return mnemonic


# ---------------------------------------------------------------------------
# Format encoders (for the synthetic workload generator).
# ---------------------------------------------------------------------------


def _check_reg(value: int) -> int:
    if not 0 <= value < 32:
        raise ValueError(f"register x{value} out of range")
    return value


def encode_r(opcode: int, funct3: int, funct7: int, rd: int, rs1: int, rs2: int) -> int:
    """R-type: funct7 | rs2 | rs1 | funct3 | rd | opcode."""
    return (
        (funct7 << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15)
        | (funct3 << 12) | (_check_reg(rd) << 7) | opcode
    )


def encode_i(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    """I-type with a 12-bit signed immediate."""
    if not -2048 <= imm <= 2047:
        raise ValueError(f"I-immediate {imm} out of 12-bit range")
    return (
        ((imm & 0xFFF) << 20) | (_check_reg(rs1) << 15) | (funct3 << 12)
        | (_check_reg(rd) << 7) | opcode
    )


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """S-type (stores): immediate split across bits 31..25 and 11..7."""
    if not -2048 <= imm <= 2047:
        raise ValueError(f"S-immediate {imm} out of 12-bit range")
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15)
        | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, offset: int) -> int:
    """B-type (branches): 13-bit signed, even byte offset."""
    if offset % 2 or not -4096 <= offset <= 4094:
        raise ValueError(f"branch offset {offset} invalid")
    imm = offset & 0x1FFF
    return (
        (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
        | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode
    )


def encode_u(opcode: int, rd: int, imm20: int) -> int:
    """U-type (lui/auipc): 20-bit upper immediate."""
    if not 0 <= imm20 < (1 << 20):
        raise ValueError(f"U-immediate {imm20} out of 20-bit range")
    return (imm20 << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(opcode: int, rd: int, offset: int) -> int:
    """J-type (jal): 21-bit signed, even byte offset."""
    if offset % 2 or not -(1 << 20) <= offset <= (1 << 20) - 2:
        raise ValueError(f"jump offset {offset} invalid")
    imm = offset & 0x1FFFFF
    return (
        (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
        | (_check_reg(rd) << 7) | opcode
    )
