"""Synthetic RV32I instruction workloads for the cross-ISA experiment.

Mirrors :mod:`repro.program.synth` at the level the recovery sweep
needs: an instruction stream sampled from a realistic RV32I mnemonic
mix with plausible operand values, every word guaranteed legal.  The
mix mirrors the same compiled-code shape as the MIPS profiles (loads
dominate, then address arithmetic, stores, branches) so the cross-ISA
comparison isolates the *encoding density* difference rather than a
workload difference.
"""

from __future__ import annotations

import random
import zlib

from repro.errors import ProgramImageError
from repro.isa_rv import decoder as rv

__all__ = ["RV32I_MIX", "generate_rv32i_words"]

# Compiled-code shape, aligned with the MIPS base mix of
# repro.program.profiles (loads ~22%, addi ~13%, stores ~10%, ...).
RV32I_MIX: dict[str, float] = {
    "lw": 0.200, "addi": 0.130, "sw": 0.085, "add": 0.050, "beq": 0.040,
    "bne": 0.040, "lui": 0.035, "jal": 0.030, "jalr": 0.022, "lbu": 0.018,
    "andi": 0.015, "slli": 0.015, "auipc": 0.015, "or": 0.012, "sub": 0.012,
    "sltu": 0.011, "sb": 0.011, "slt": 0.010, "srli": 0.009, "blt": 0.009,
    "bge": 0.008, "xor": 0.007, "and": 0.007, "lh": 0.006, "lhu": 0.006,
    "sh": 0.006, "srai": 0.005, "ori": 0.005, "slti": 0.004, "xori": 0.004,
    "sltiu": 0.003, "bltu": 0.003, "bgeu": 0.003, "sll": 0.002, "srl": 0.002,
    "sra": 0.002, "lb": 0.002, "fence": 0.0005, "ecall": 0.0003,
    "ebreak": 0.0001, "csrrs": 0.0002, "csrrw": 0.0001,
}

_OPCODES = {
    "lui": 0b0110111, "auipc": 0b0010111, "jal": 0b1101111,
    "jalr": 0b1100111, "branch": 0b1100011, "load": 0b0000011,
    "store": 0b0100011, "op_imm": 0b0010011, "op": 0b0110011,
    "misc_mem": 0b0001111, "system": 0b1110011,
}
_BRANCH_F3 = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_LOAD_F3 = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_F3 = {"sb": 0, "sh": 1, "sw": 2}
_OP_IMM_F3 = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_OP_F37 = {
    "add": (0, 0), "sub": (0, 0b0100000), "sll": (1, 0), "slt": (2, 0),
    "sltu": (3, 0), "xor": (4, 0), "srl": (5, 0), "sra": (5, 0b0100000),
    "or": (6, 0), "and": (7, 0),
}
_CSR_F3 = {"csrrw": 1, "csrrs": 2, "csrrc": 3}


def generate_rv32i_words(length: int, seed: int = 2016) -> list[int]:
    """Generate *length* legal RV32I instruction words."""
    if length < 1:
        raise ProgramImageError(f"length must be >= 1, got {length}")
    rng = random.Random(zlib.crc32(b"rv32i") ^ seed)
    mnemonics = list(RV32I_MIX)
    weights = list(RV32I_MIX.values())

    def register() -> int:
        # RISC-V ABI hot registers: sp(2), a0..a5(10..15), t0..t2(5..7),
        # s0/s1(8/9), ra(1), zero(0).
        return rng.choices(
            (2, 8, 10, 11, 12, 13, 14, 15, 5, 6, 7, 9, 1, 0, 28, 18),
            (10, 8, 9, 8, 6, 5, 4, 3, 6, 5, 4, 4, 3, 6, 2, 2),
        )[0]

    def small_imm() -> int:
        roll = rng.random()
        if roll < 0.6:
            return 4 * rng.randint(-16, 64)
        return rng.randint(-2048, 2047)

    words = []
    while len(words) < length:
        mnemonic = rng.choices(mnemonics, weights)[0]
        if mnemonic == "lui" or mnemonic == "auipc":
            word = rv.encode_u(_OPCODES[mnemonic], register(),
                               rng.choice((0x10000 >> 12, 0x11, 0x12, 0x400)))
        elif mnemonic == "jal":
            offset = 2 * rng.randint(-min(len(words), 200), 200)
            word = rv.encode_j(_OPCODES["jal"], rng.choice((0, 1)), offset)
        elif mnemonic == "jalr":
            word = rv.encode_i(_OPCODES["jalr"], 0, rng.choice((0, 1)),
                               register(), small_imm() & ~1)
        elif mnemonic in _BRANCH_F3:
            offset = 2 * rng.randint(-100, 100) or 4
            word = rv.encode_b(_OPCODES["branch"], _BRANCH_F3[mnemonic],
                               register(), register(), offset)
        elif mnemonic in _LOAD_F3:
            word = rv.encode_i(_OPCODES["load"], _LOAD_F3[mnemonic],
                               register(), register(), small_imm())
        elif mnemonic in _STORE_F3:
            word = rv.encode_s(_OPCODES["store"], _STORE_F3[mnemonic],
                               register(), register(), small_imm())
        elif mnemonic in _OP_IMM_F3:
            word = rv.encode_i(_OPCODES["op_imm"], _OP_IMM_F3[mnemonic],
                               register(), register(), small_imm())
        elif mnemonic in ("slli", "srli", "srai"):
            funct7 = 0b0100000 if mnemonic == "srai" else 0
            shamt = rng.randint(0, 31)
            word = rv.encode_r(_OPCODES["op_imm"],
                               1 if mnemonic == "slli" else 5,
                               funct7, register(), register(), shamt)
        elif mnemonic in _OP_F37:
            funct3, funct7 = _OP_F37[mnemonic]
            word = rv.encode_r(_OPCODES["op"], funct3, funct7,
                               register(), register(), register())
        elif mnemonic == "fence":
            word = rv.encode_i(_OPCODES["misc_mem"], 0, 0, 0, 0x0FF)
        elif mnemonic == "ecall":
            word = rv.encode_i(_OPCODES["system"], 0, 0, 0, 0)
        elif mnemonic == "ebreak":
            word = rv.encode_i(_OPCODES["system"], 0, 0, 0, 1)
        elif mnemonic in _CSR_F3:
            word = rv.encode_i(_OPCODES["system"], _CSR_F3[mnemonic],
                               register(), register(), 0x340)
        else:  # pragma: no cover - mix/table mismatch guard
            raise ProgramImageError(f"no synthesizer for {mnemonic!r}")
        if rv.try_mnemonic(word) != mnemonic:
            raise ProgramImageError(
                f"synthesized 0x{word:08x} decodes as "
                f"{rv.try_mnemonic(word)!r}, expected {mnemonic!r}"
            )
        words.append(word)
    return words
