"""RV32I legality oracle and workload synthesis (cross-ISA extension)."""

from repro.isa_rv.decoder import (
    RV32I_MNEMONICS,
    is_legal,
    mnemonic_of,
    try_mnemonic,
)
from repro.isa_rv.synth import RV32I_MIX, generate_rv32i_words

__all__ = [
    "RV32I_MNEMONICS",
    "is_legal",
    "mnemonic_of",
    "try_mnemonic",
    "RV32I_MIX",
    "generate_rv32i_words",
]
