"""Lightweight tracing spans around pipeline stages.

A span measures the wall-clock time (``time.perf_counter_ns``) spent in
a ``with`` block and records it — with its nesting depth and parent —
into the active :class:`SpanCollector`.  Collection is **opt-in**: until
:func:`enable_tracing` installs a collector, :func:`span` returns a
shared no-op context manager and instrumented code pays only a function
call and an attribute read per stage.

Spans nest naturally::

    with span("sweep.run"):
        with span("swdecc.recover"):
            ...

and the collector's :meth:`SpanCollector.summary` aggregates per-name
count/total/min/max/mean for the stage-latency tables that ``repro
stats`` and ``--profile`` print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "Span",
    "SpanCollector",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_collector",
]


@dataclass(frozen=True)
class Span:
    """One finished timing span.

    Attributes
    ----------
    name:
        Stage name (``swdecc.filter``, ``cpu.run``, ...).
    start_ns / end_ns:
        ``perf_counter_ns`` readings at entry and exit.
    depth:
        Nesting depth at the time the span opened (0 = root).
    span_id:
        Identifier assigned at entry, unique within the collector.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for a root span.
    """

    name: str
    start_ns: int
    end_ns: int
    depth: int
    span_id: int
    parent_id: int | None

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds."""
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly record."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class SpanCollector:
    """Accumulates finished spans and aggregates them per name."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        # Open spans: (name, span_id, parent_id, start_ns).
        self._stack: list[tuple[str, int, int | None, int]] = []
        self._next_id = 0

    # -- recording (called by the span context manager) -----------------

    def _enter(self, name: str) -> None:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1][1] if self._stack else None
        self._stack.append((name, span_id, parent_id, time.perf_counter_ns()))

    def _exit(self) -> None:
        end_ns = time.perf_counter_ns()
        name, span_id, parent_id, start_ns = self._stack.pop()
        self._spans.append(
            Span(
                name=name,
                start_ns=start_ns,
                end_ns=end_ns,
                depth=len(self._stack),
                span_id=span_id,
                parent_id=parent_id,
            )
        )

    # -- reading ---------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """All finished spans, in completion order."""
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop every finished span (open spans are unaffected)."""
        self._spans.clear()

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregate: count, total/min/max/mean nanoseconds."""
        aggregate: dict[str, dict[str, float]] = {}
        for item in self._spans:
            entry = aggregate.get(item.name)
            duration = item.duration_ns
            if entry is None:
                aggregate[item.name] = {
                    "count": 1,
                    "total_ns": duration,
                    "min_ns": duration,
                    "max_ns": duration,
                }
            else:
                entry["count"] += 1
                entry["total_ns"] += duration
                if duration < entry["min_ns"]:
                    entry["min_ns"] = duration
                if duration > entry["max_ns"]:
                    entry["max_ns"] = duration
        for entry in aggregate.values():
            entry["mean_ns"] = entry["total_ns"] / entry["count"]
        return aggregate


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


class _LiveSpan:
    """Context manager that records into the active collector."""

    __slots__ = ("_name", "_collector")

    def __init__(self, name: str, collector: SpanCollector) -> None:
        self._name = name
        self._collector = collector

    def __enter__(self) -> "_LiveSpan":
        self._collector._enter(self._name)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._collector._exit()
        return False


_NULL_SPAN = _NullSpan()
_active: SpanCollector | None = None


def span(name: str) -> _NullSpan | _LiveSpan:
    """A context manager timing the enclosed block as *name*.

    No-op (and allocation-free) while tracing is disabled.
    """
    collector = _active
    if collector is None:
        return _NULL_SPAN
    return _LiveSpan(name, collector)


def enable_tracing(collector: SpanCollector | None = None) -> SpanCollector:
    """Install (and return) the active span collector."""
    global _active
    _active = collector if collector is not None else SpanCollector()
    return _active


def disable_tracing() -> SpanCollector | None:
    """Remove the active collector; returns it for post-hoc reading."""
    global _active
    previous = _active
    _active = None
    return previous


def tracing_enabled() -> bool:
    """True when a collector is installed."""
    return _active is not None


def current_collector() -> SpanCollector | None:
    """The active collector, or ``None``."""
    return _active
