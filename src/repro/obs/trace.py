"""Lightweight tracing spans around pipeline stages and requests.

A span measures the wall-clock time (``time.perf_counter_ns``) spent in
a ``with`` block and records it — with its nesting depth and parent —
into the active :class:`SpanCollector`.  Collection is **opt-in**: until
:func:`enable_tracing` installs a collector, :func:`span` returns a
shared no-op context manager and instrumented code pays only a function
call and an attribute read per stage.

Spans nest naturally::

    with span("sweep.run"):
        with span("swdecc.recover"):
            ...

and the collector's :meth:`SpanCollector.summary` aggregates per-name
count/total/min/max/mean for the stage-latency tables that ``repro
stats`` and ``--profile`` print.

On top of the in-process spans sits **request-scoped tracing** for the
recovery service (Dapper-style):

- :class:`TraceContext` is a picklable ``(trace_id, span_id, sampled)``
  triple that crosses thread and process boundaries.  It parses from
  and renders to the W3C ``traceparent`` header
  (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``), so
  external callers can correlate their own traces with ours.
- Trace-scoped span ids are *random* 63-bit integers
  (:func:`new_span_id`), not the collector's sequential counter, so
  spans minted independently in shard worker processes never collide
  when they are re-parented into the parent collector.
- :meth:`SpanCollector.begin_trace` / :meth:`SpanCollector.finish_trace`
  stage every span recorded under a trace id and, at request end, fold
  them into a :class:`TraceEntry` kept in the collector's bounded
  :class:`TraceBuffer` — the slowest N requests by end-to-end latency,
  each with its full span tree (``GET /traces``, ``repro trace``).

The collector itself is bounded: raw spans are retained in a deque of
``max_spans`` while :meth:`SpanCollector.summary` stays *exact* via an
incrementally maintained per-name aggregate, so a long-lived
``serve-recovery`` run with tracing enabled holds steady-state memory.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, NamedTuple

__all__ = [
    "Span",
    "SpanCollector",
    "TraceBuffer",
    "TraceContext",
    "TraceEntry",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_collector",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
    "format_span_id",
    "spans_to_forest",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_TRACE_CAPACITY",
]

#: Raw spans retained by a collector (aggregates stay exact beyond it).
DEFAULT_MAX_SPANS = 10_000

#: Slow-request trace entries retained by a collector's buffer.
DEFAULT_TRACE_CAPACITY = 64

#: In-flight traces the collector will stage concurrently; beyond this
#: the oldest staging slot is shed (its spans still reach the ring).
_MAX_STAGED_TRACES = 4096

#: The only ``traceparent`` version we speak (the W3C-defined one).
_TRACEPARENT_VERSION = "00"


# ----------------------------------------------------------------------
# Trace identity and W3C traceparent propagation
# ----------------------------------------------------------------------


def new_trace_id() -> str:
    """A random 32-hex-char (128-bit) trace id, never all zeros."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != "0" * 32:
            return trace_id


def new_span_id() -> int:
    """A random nonzero 63-bit span id.

    Random (not sequential) so ids minted independently in shard
    worker processes are collision-free when re-parented into the
    parent collector; 63 bits keeps them positive ints that render as
    16 hex chars for ``traceparent``.
    """
    while True:
        span_id = int.from_bytes(os.urandom(8), "big") >> 1
        if span_id:
            return span_id


def format_span_id(span_id: int) -> str:
    """The 16-hex-char wire spelling of a span id."""
    return format(span_id & ((1 << 64) - 1), "016x")


class TraceContext(NamedTuple):
    """One request's trace identity: where new child spans attach.

    Picklable (it crosses the shard process boundary inside
    :class:`~repro.service.api.RecoveryRequest`).  ``sampled`` False
    means the id is propagated for correlation but no spans are
    recorded for it.
    """

    trace_id: str
    span_id: int
    sampled: bool = True

    @classmethod
    def new(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context with random ids."""
        return cls(new_trace_id(), new_span_id(), sampled)

    def child(self, span_id: int) -> "TraceContext":
        """The context a child span propagates onward."""
        return TraceContext(self.trace_id, span_id, self.sampled)

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return (
            f"{_TRACEPARENT_VERSION}-{self.trace_id}-"
            f"{format_span_id(self.span_id)}-{flags}"
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a W3C ``traceparent`` header; ``None`` when malformed.

    Accepts ``version-traceid-parentid-flags`` with a 2-hex version
    (not ``ff``), 32-hex trace id, 16-hex parent span id, and 2-hex
    flags; all-zero ids are invalid per the spec.  Unknown versions
    with extra trailing fields are tolerated (forward compatibility),
    malformed values are ignored rather than failing the request.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or version.lower() == "ff":
        return None
    if len(parts) > 4 and version == _TRACEPARENT_VERSION:
        return None  # version 00 defines exactly four fields
    if len(trace_id) != 32 or len(parent_id) != 16 or len(flags) != 2:
        return None
    try:
        span_id = int(parent_id, 16)
        int(trace_id, 16)
        flag_bits = int(flags, 16)
        int(version, 16)
    except ValueError:
        return None
    if span_id == 0 or trace_id == "0" * 32:
        return None
    if trace_id.lower() != trace_id or parent_id.lower() != parent_id:
        return None  # the spec mandates lowercase hex
    return TraceContext(trace_id, span_id, bool(flag_bits & 0x01))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """One finished timing span.

    Attributes
    ----------
    name:
        Stage name (``swdecc.filter``, ``service.stage.queue_wait``, ...).
    start_ns / end_ns:
        ``perf_counter_ns`` readings at entry and exit.
    depth:
        Nesting depth at the time the span opened (0 = root).
    span_id:
        Identifier assigned at entry, unique within the collector.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for a root span.
    trace_id:
        The owning request trace, or ``None`` for plain stage spans.
    """

    name: str
    start_ns: int
    end_ns: int
    depth: int
    span_id: int
    parent_id: int | None
    trace_id: str | None = None

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds."""
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly record."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
        }


def spans_to_forest(spans: Iterable[Span]) -> list[dict]:
    """Nest *spans* into JSON-ready trees by parent linkage.

    Each node carries the wire spelling of its ids (16-hex span ids)
    plus timing, with ``children`` sorted by start time.  Spans whose
    parent is absent become roots of their own tree — the caller
    decides whether that is legitimate (a true root) or an orphan to
    adopt (see :meth:`TraceEntry.as_dict`).
    """
    nodes: dict[int, dict] = {}
    ordered: list[tuple[Span, dict]] = []
    for item in spans:
        node = {
            "name": item.name,
            "span_id": format_span_id(item.span_id),
            "parent_id": None,
            "trace_id": item.trace_id,
            "start_ns": item.start_ns,
            "end_ns": item.end_ns,
            "duration_ns": item.duration_ns,
            "children": [],
        }
        nodes[item.span_id] = node
        ordered.append((item, node))
    roots: list[dict] = []
    for item, node in ordered:
        parent = (
            nodes.get(item.parent_id) if item.parent_id is not None else None
        )
        if parent is None or parent is node:
            roots.append(node)
        else:
            node["parent_id"] = format_span_id(item.parent_id)
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start_ns"])
    roots.sort(key=lambda node: node["start_ns"])
    return roots


# ----------------------------------------------------------------------
# Slow-request trace retention
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEntry:
    """One finished request trace: identity plus its full span set."""

    trace_id: str
    root_span_id: int
    remote_parent_id: int | None
    duration_ns: int
    spans: tuple[Span, ...]

    def as_dict(self) -> dict[str, object]:
        """JSON tree for ``/traces``: one root, every parent present.

        Spans whose parent fell outside the staging window (e.g. a
        stage span recorded after a timed-out request already
        finished) are *adopted* under the root rather than emitted as
        dangling trees, so consumers can rely on parent links
        resolving within the document.
        """
        forest = spans_to_forest(self.spans)
        root_hex = format_span_id(self.root_span_id)
        root = None
        orphans = []
        for node in forest:
            if node["span_id"] == root_hex and root is None:
                root = node
            else:
                orphans.append(node)
        if root is None:
            root = {
                "name": "service.request",
                "span_id": root_hex,
                "parent_id": None,
                "trace_id": self.trace_id,
                "start_ns": min((s.start_ns for s in self.spans), default=0),
                "end_ns": max((s.end_ns for s in self.spans), default=0),
                "duration_ns": self.duration_ns,
                "children": [],
            }
        for node in orphans:
            node["parent_id"] = root_hex
            root["children"].append(node)
        root["children"].sort(key=lambda child: child["start_ns"])
        return {
            "trace_id": self.trace_id,
            "remote_parent_id": (
                format_span_id(self.remote_parent_id)
                if self.remote_parent_id is not None else None
            ),
            "duration_ns": self.duration_ns,
            "duration_ms": round(self.duration_ns / 1e6, 3),
            "span_count": len(self.spans),
            "root": root,
        }


class TraceBuffer:
    """Bounded top-N request traces by end-to-end latency.

    Thread-safe; adding beyond capacity evicts the *fastest* retained
    entry, so the buffer always holds the slowest requests seen —
    exactly the ones worth a waterfall when a tail-latency alarm fires.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: list[TraceEntry] = []

    @property
    def capacity(self) -> int:
        """Maximum retained entries."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, entry: TraceEntry) -> None:
        """Retain *entry*, evicting the fastest entry when full."""
        with self._lock:
            self._entries.append(entry)
            if len(self._entries) > self._capacity:
                fastest = min(
                    range(len(self._entries)),
                    key=lambda i: self._entries[i].duration_ns,
                )
                self._entries.pop(fastest)

    def slowest(self, limit: int | None = None) -> list[TraceEntry]:
        """Retained entries, slowest first (optionally the top *limit*)."""
        with self._lock:
            entries = sorted(
                self._entries, key=lambda e: e.duration_ns, reverse=True
            )
        if limit is not None:
            entries = entries[:limit]
        return entries

    def get(self, trace_id: str) -> TraceEntry | None:
        """The retained entry for *trace_id*, or ``None``."""
        with self._lock:
            for entry in self._entries:
                if entry.trace_id == trace_id:
                    return entry
        return None

    def clear(self) -> None:
        """Drop every retained entry."""
        with self._lock:
            self._entries.clear()


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------


class SpanCollector:
    """Accumulates finished spans and aggregates them per name.

    Thread-safe.  Raw spans are retained in a bounded deque
    (*max_spans*); the per-name :meth:`summary` is maintained
    incrementally and stays exact no matter how many spans the cap
    evicted.  ``with span(...)`` nesting is tracked per thread, so the
    service's handler threads cannot cross-parent each other's spans.
    """

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._recorded = 0
        self._aggregate: dict[str, dict[str, float]] = {}
        self._staging: dict[str, list[Span]] = {}
        self.traces = TraceBuffer(trace_capacity)

    def _stack(self) -> list[tuple[str, int, int | None, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording (called by the span context manager) -----------------

    def _enter(self, name: str) -> None:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = stack[-1][1] if stack else None
        stack.append((name, span_id, parent_id, time.perf_counter_ns()))

    def _exit(self) -> None:
        end_ns = time.perf_counter_ns()
        stack = self._stack()
        name, span_id, parent_id, start_ns = stack.pop()
        self.record(
            Span(
                name=name,
                start_ns=start_ns,
                end_ns=end_ns,
                depth=len(stack),
                span_id=span_id,
                parent_id=parent_id,
            )
        )

    def record(self, item: Span) -> None:
        """Retain one finished span (built here or shipped from afar).

        Updates the exact per-name aggregate, appends to the bounded
        raw-span deque, and — when the span belongs to a trace that is
        currently staged — files it for that trace's entry.
        """
        duration = item.duration_ns
        with self._lock:
            self._spans.append(item)
            self._recorded += 1
            entry = self._aggregate.get(item.name)
            if entry is None:
                self._aggregate[item.name] = {
                    "count": 1,
                    "total_ns": duration,
                    "min_ns": duration,
                    "max_ns": duration,
                }
            else:
                entry["count"] += 1
                entry["total_ns"] += duration
                if duration < entry["min_ns"]:
                    entry["min_ns"] = duration
                if duration > entry["max_ns"]:
                    entry["max_ns"] = duration
            if item.trace_id is not None:
                staged = self._staging.get(item.trace_id)
                if staged is not None:
                    staged.append(item)

    # -- request-trace staging ------------------------------------------

    def begin_trace(self, trace_id: str) -> None:
        """Open a staging slot collecting spans recorded for *trace_id*."""
        with self._lock:
            if trace_id not in self._staging:
                while len(self._staging) >= _MAX_STAGED_TRACES:
                    self._staging.pop(next(iter(self._staging)))
                self._staging[trace_id] = []

    def finish_trace(
        self,
        trace_id: str,
        root_span_id: int,
        remote_parent_id: int | None = None,
    ) -> TraceEntry | None:
        """Close *trace_id*'s staging slot into the trace buffer.

        The root span must already be :meth:`record`-ed.  Returns the
        retained :class:`TraceEntry` (or ``None`` when nothing was
        staged — e.g. the slot was shed under staging pressure).
        """
        with self._lock:
            staged = self._staging.pop(trace_id, None)
        if not staged:
            return None
        root = next(
            (s for s in staged if s.span_id == root_span_id), None
        )
        duration_ns = (
            root.duration_ns if root is not None
            else max(s.end_ns for s in staged) - min(s.start_ns for s in staged)
        )
        entry = TraceEntry(
            trace_id=trace_id,
            root_span_id=root_span_id,
            remote_parent_id=remote_parent_id,
            duration_ns=duration_ns,
            spans=tuple(sorted(staged, key=lambda s: s.start_ns)),
        )
        self.traces.add(entry)
        return entry

    # -- reading ---------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Retained finished spans, in completion order (bounded)."""
        with self._lock:
            return tuple(self._spans)

    @property
    def dropped(self) -> int:
        """Finished spans evicted from raw retention by the cap."""
        with self._lock:
            return self._recorded - len(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Drop every finished span and aggregate (open spans unaffected)."""
        with self._lock:
            self._spans.clear()
            self._aggregate.clear()
            self._recorded = 0

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregate: count, total/min/max/mean nanoseconds.

        Exact over every span recorded since the last :meth:`clear`,
        including spans the retention cap has already evicted.
        """
        with self._lock:
            aggregate = {
                name: dict(entry) for name, entry in self._aggregate.items()
            }
        for entry in aggregate.values():
            entry["mean_ns"] = entry["total_ns"] / entry["count"]
        return aggregate


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


class _LiveSpan:
    """Context manager that records into the active collector."""

    __slots__ = ("_name", "_collector")

    def __init__(self, name: str, collector: SpanCollector) -> None:
        self._name = name
        self._collector = collector

    def __enter__(self) -> "_LiveSpan":
        self._collector._enter(self._name)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._collector._exit()
        return False


_NULL_SPAN = _NullSpan()
_active: SpanCollector | None = None


def span(name: str) -> _NullSpan | _LiveSpan:
    """A context manager timing the enclosed block as *name*.

    No-op (and allocation-free) while tracing is disabled.
    """
    collector = _active
    if collector is None:
        return _NULL_SPAN
    return _LiveSpan(name, collector)


def enable_tracing(collector: SpanCollector | None = None) -> SpanCollector:
    """Install (and return) the active span collector."""
    global _active
    _active = collector if collector is not None else SpanCollector()
    return _active


def disable_tracing() -> SpanCollector | None:
    """Remove the active collector; returns it for post-hoc reading."""
    global _active
    previous = _active
    _active = None
    return previous


def tracing_enabled() -> bool:
    """True when a collector is installed."""
    return _active is not None


def current_collector() -> SpanCollector | None:
    """The active collector, or ``None``."""
    return _active
