"""Observability: metrics, tracing, events, logs, and live serving.

The recovery pipeline is a pipeline of heuristics, and the paper's own
evaluation (candidate counts, filtering rates, per-bit-position success)
is exactly the data a metrics layer produces as a byproduct of normal
runs.  This package provides that layer with zero dependencies:

- :mod:`repro.obs.metrics` — process-local counters, gauges, and
  histograms in a named registry.  Counter collection is **default on**
  and cheap enough for hot paths.
- :mod:`repro.obs.trace` — nestable wall-clock spans around pipeline
  stages.  Span *collection* is **opt-in** (:func:`enable_tracing`);
  when disabled a span is a shared no-op object.
- :mod:`repro.obs.events` — one JSON-serializable :class:`DueEvent`
  record per DUE handled by :meth:`repro.core.swdecc.SwdEcc.recover`,
  kept in a bounded in-memory log, plus :class:`EventDigest` aggregates
  shipped home from parallel workers.
- :mod:`repro.obs.export` — text tables (via
  :func:`repro.analysis.heatmap.render_table`) and a JSON encoder for
  all of the above.
- :mod:`repro.obs.energy` — energy & cost accounting: a pluggable
  per-op joule model that turns the ``ops.*`` counters into
  ``energy.joules_per_recovery``, ``cost.dollars_per_million_requests``
  and ``carbon.grams_co2_total`` at snapshot time.
- :mod:`repro.obs.promtext` — OpenMetrics / Prometheus text exposition
  of a registry snapshot (what ``GET /metrics`` serves).
- :mod:`repro.obs.server` — :class:`ObsServer`, a stdlib HTTP endpoint
  serving metrics, events, and spans live while a run is in flight.
- :mod:`repro.obs.logging` — structured JSON logs with
  contextvar-bound fields (the CLI's ``--log-json``).
- :mod:`repro.obs.progress` — :class:`SweepProgress`, live sweep
  progress gauges with rate/ETA (the CLI's ``--progress``).

See ``docs/observability.md`` for a worked example.
"""

from __future__ import annotations

from repro.obs.events import (
    DueEvent,
    EventDigest,
    EventLog,
    get_event_log,
    set_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Info,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    Span,
    SpanCollector,
    current_collector,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)
from repro.obs.energy import (
    EnergyModel,
    get_energy_model,
    set_energy_model,
)
from repro.obs.progress import SweepProgress
from repro.obs.server import ObsServer

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    # trace
    "Span",
    "SpanCollector",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_collector",
    # events
    "DueEvent",
    "EventDigest",
    "EventLog",
    "get_event_log",
    "set_event_log",
    # energy
    "EnergyModel",
    "get_energy_model",
    "set_energy_model",
    # serving & progress
    "ObsServer",
    "SweepProgress",
]
