"""A zero-dependency HTTP endpoint serving live observability state.

:class:`ObsServer` wraps a stdlib :class:`~http.server.ThreadingHTTPServer`
on a daemon thread so a long sweep can be watched *while it runs*:

- ``GET /metrics`` — OpenMetrics text (:mod:`repro.obs.promtext`);
  snapshot collectors run on every scrape, so derived gauges are fresh.
- ``GET /metrics.json`` — the same snapshot as JSON.
- ``GET /events?limit=N`` — the newest *N* retained DUE events as
  JSON lines (default: all retained).  ``limit`` must be a positive
  integer; anything else is a 400 with a JSON error body.
- ``GET /spans`` — per-stage latency summary when tracing is enabled;
  ``?format=json`` returns the retained raw spans as nested JSON
  trees instead of the text-oriented aggregate.
- ``GET /traces?limit=N`` — the slowest retained request traces
  (full span trees, slowest first), from the collector's bounded
  slow-request buffer.  Same ``limit`` validation as ``/events``.
- ``GET /healthz`` — liveness probe.

The server binds ``127.0.0.1`` by default (observability data includes
memory contents; do not expose it beyond the host without a reason) and
supports ``port=0`` so tests bind an ephemeral port and read
:attr:`ObsServer.port` back.  Serving is read-only and touches shared
state only through snapshot APIs, so it never perturbs sweep results.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from urllib.parse import parse_qs, urlparse

from repro.errors import ObservabilityError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import promtext
from repro.obs import trace as obs_trace

__all__ = ["ObsServer", "dispatch_get"]

_log = logging.getLogger("repro.obs.server")
_log.addHandler(logging.NullHandler())


class _ObsRequestHandler(BaseHTTPRequestHandler):
    """Routes GET requests to the owning :class:`ObsServer`."""

    server_version = "repro-obs/1.0"
    # Keep scrape round-trips off the Nagle/delayed-ACK path.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        obs: ObsServer = self.server.obs  # type: ignore[attr-defined]
        url = urlparse(self.path)
        try:
            route = _ROUTES.get(url.path)
            if route is None:
                self._reply(404, "text/plain; charset=utf-8",
                            f"no such endpoint: {url.path}\n")
                return
            status, content_type, body = route(obs, parse_qs(url.query))
            self._reply(status, content_type, body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, "text/plain; charset=utf-8", f"{error}\n")

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        # Route http.server's stderr chatter to the repro logger instead.
        _log.debug("%s %s", self.address_string(), format % args)


def _endpoint_metrics(obs: "ObsServer", query) -> tuple[int, str, str]:
    return 200, promtext.CONTENT_TYPE, promtext.render(obs.registry)


def _endpoint_metrics_json(obs: "ObsServer", query) -> tuple[int, str, str]:
    body = json.dumps(obs.registry.as_dict(), sort_keys=True, indent=2)
    return 200, "application/json", body + "\n"


def _endpoint_events(obs: "ObsServer", query) -> tuple[int, str, str]:
    events = obs.event_log.events()
    limit, error = _parse_limit(query)
    if error is not None:
        return 400, "application/json", error
    if limit is not None:
        events = events[len(events) - min(limit, len(events)):]
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    return 200, "application/x-ndjson", "\n".join(lines) + ("\n" if lines else "")


def _parse_limit(query) -> tuple[int | None, str | None]:
    """Validate a ``?limit=N`` query: (limit, error-body-or-None)."""
    raw_limit = query.get("limit", [None])[0]
    if raw_limit is None:
        return None, None
    try:
        limit = int(raw_limit)
    except ValueError:
        limit = 0  # non-numeric: rejected below alongside <= 0
    if limit < 1:
        body = json.dumps({
            "error": f"bad limit: {raw_limit!r} "
            "(must be a positive integer)"
        })
        return None, body + "\n"
    return limit, None


def _endpoint_spans(obs: "ObsServer", query) -> tuple[int, str, str]:
    collector = obs_trace.current_collector()
    fmt = query.get("format", ["summary"])[0]
    if fmt == "json":
        spans = collector.spans if collector is not None else ()
        body = {
            "tracing": collector is not None,
            "span_count": len(spans),
            "dropped": collector.dropped if collector is not None else 0,
            "spans": obs_trace.spans_to_forest(spans),
        }
    elif fmt == "summary":
        body = {
            "tracing": collector is not None,
            "stages": collector.summary() if collector is not None else {},
        }
    else:
        error = json.dumps({
            "error": f"bad format: {fmt!r} (must be 'summary' or 'json')"
        })
        return 400, "application/json", error + "\n"
    return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"


def _endpoint_traces(obs: "ObsServer", query) -> tuple[int, str, str]:
    limit, error = _parse_limit(query)
    if error is not None:
        return 400, "application/json", error
    collector = obs_trace.current_collector()
    entries = (
        collector.traces.slowest(limit) if collector is not None else []
    )
    body = {
        "tracing": collector is not None,
        "count": len(entries),
        "traces": [entry.as_dict() for entry in entries],
    }
    return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"


def _endpoint_healthz(obs: "ObsServer", query) -> tuple[int, str, str]:
    return 200, "application/json", '{"status": "ok"}\n'


_ROUTES = {
    "/metrics": _endpoint_metrics,
    "/metrics.json": _endpoint_metrics_json,
    "/events": _endpoint_events,
    "/spans": _endpoint_spans,
    "/traces": _endpoint_traces,
    "/healthz": _endpoint_healthz,
}


def dispatch_get(owner, path: str, query) -> tuple[int, str, str] | None:
    """Route a GET to the shared observability endpoints.

    *owner* only needs ``registry`` and ``event_log`` properties, so
    other HTTP frontends (the recovery service) can mount the same
    ``/metrics``-family endpoints without duplicating them.  Returns
    ``(status, content type, body)``, or ``None`` for unknown paths.
    """
    route = _ROUTES.get(path)
    if route is None:
        return None
    return route(owner, query)


class ObsServer:
    """Serve the process's observability state over HTTP.

    Parameters
    ----------
    host:
        Bind address (default loopback).
    port:
        TCP port; 0 picks an ephemeral port (read :attr:`port` after
        :meth:`start`).
    registry / event_log:
        Override the process-wide defaults (tests use private ones).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9100,
        registry: obs_metrics.MetricsRegistry | None = None,
        event_log: obs_events.EventLog | None = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._registry = registry
        self._event_log = event_log
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: Thread | None = None

    @property
    def registry(self) -> obs_metrics.MetricsRegistry:
        """The registry served (resolved per request when defaulted)."""
        return (
            self._registry if self._registry is not None
            else obs_metrics.get_registry()
        )

    @property
    def event_log(self) -> obs_events.EventLog:
        """The event log served (resolved per request when defaulted)."""
        return (
            self._event_log if self._event_log is not None
            else obs_events.get_event_log()
        )

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves port 0 after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ObsServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise ObservabilityError("ObsServer is already running")
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _ObsRequestHandler
        )
        httpd.daemon_threads = True
        httpd.obs = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = Thread(
            target=httpd.serve_forever,
            name=f"repro-obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("obs server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObsServer":
        return self.start() if not self.running else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
