"""Live sweep progress: bounded gauges, rate/ETA, optional stderr line.

A long exhaustive sweep used to be a black box until the final table
printed.  :class:`SweepProgress` turns per-chunk completions (posted by
:func:`repro.analysis.parallel.parallel_map` as workers finish — not at
merge time) into a fixed, bounded set of registry metrics a scraper can
watch advance through ``GET /metrics``:

- ``sweep.progress.patterns_done`` — units completed so far (gauge,
  monotone during a process's lifetime: chunk completions only add).
- ``sweep.progress.total_patterns`` — units planned so far (gauge).
- ``sweep.progress.eta_seconds`` — remaining-work estimate from the
  observed completion rate (gauge; 0 once done).
- ``sweep.chunks_completed`` — chunk completions (counter).

Metric names are fixed regardless of how many benchmarks or chunks a
run sweeps, respecting the registry's bounded-cardinality rule.  With a
*stream* the tracker also renders a single-line ``\\r`` progress bar
with rate and ETA (the CLI's ``--progress`` flag passes stderr).

Constructing a tracker marks the start of a new sweep session: the
``sweep.progress.*`` gauges, ``sweep.last_wall_seconds``, and the
``sweep.last_benchmark`` info metric are reset to zero/empty so a
scraper watching a long-lived process (normal under the recovery
service) never reads the *previous* run's totals or ETA during the new
run's ramp-up.  ``sweep.chunks_completed`` is a counter and keeps its
process-lifetime total.
"""

from __future__ import annotations

import time
from typing import TextIO

from repro.obs import metrics as obs_metrics

__all__ = ["SweepProgress"]


class SweepProgress:
    """Fold chunk completions into progress metrics and an ETA.

    Parameters
    ----------
    registry:
        Metrics registry to update (default: the process registry).
    stream:
        Optional text stream for a live one-line progress display.
    unit:
        Noun used by the rendered line (``patterns``, ``trials``...).
    """

    def __init__(
        self,
        registry: obs_metrics.MetricsRegistry | None = None,
        stream: TextIO | None = None,
        unit: str = "patterns",
    ) -> None:
        registry = (
            registry if registry is not None else obs_metrics.get_registry()
        )
        self._g_done = registry.gauge(
            "sweep.progress.patterns_done",
            help="Sweep units completed so far (live; advances per chunk)",
        )
        self._g_total = registry.gauge(
            "sweep.progress.total_patterns",
            help="Sweep units planned so far",
        )
        self._g_eta = registry.gauge(
            "sweep.progress.eta_seconds",
            help="Estimated seconds until the current sweep finishes",
        )
        self._c_chunks = registry.counter(
            "sweep.chunks_completed",
            help="Sweep chunks completed (serial runs count one per run)",
        )
        # A new tracker is a new sweep session: scrub the per-run state
        # a previous sweep in this process left behind, so scrapers
        # don't read stale totals/ETA (or last-run identity) while this
        # run ramps up.  Counters above are cumulative and stay.
        self._g_done.set(0.0)
        self._g_total.set(0.0)
        self._g_eta.set(0.0)
        for stale_name in ("sweep.last_wall_seconds", "sweep.last_benchmark"):
            stale = registry.get(stale_name)
            if stale is not None:  # only a prior sweep registers these
                stale.reset()
        self._stream = stream
        self._unit = unit
        self._started_at: float | None = None
        self._done = 0
        self._total = 0
        self._success_sum = 0.0
        self._wrote_line = False

    @property
    def done(self) -> int:
        """Units this tracker has seen complete."""
        return self._done

    @property
    def total(self) -> int:
        """Units this tracker has been told to expect."""
        return self._total

    def add_total(self, units: int) -> None:
        """Announce *units* of upcoming work (callable repeatedly)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
        self._total += units
        self._g_total.inc(units)

    def on_chunk(
        self,
        units: int,
        wall_seconds: float | None = None,
        success_sum: float = 0.0,
    ) -> None:
        """Record one completed chunk of *units* sweep units.

        *wall_seconds* is the worker-side duration (informational;
        rate/ETA use the tracker's own elapsed wall clock so overlapping
        workers don't overcount).  *success_sum* accumulates partial
        success mass for the rendered line.
        """
        if self._started_at is None:
            self._started_at = time.monotonic()
        self._done += units
        self._success_sum += success_sum
        self._g_done.inc(units)
        self._c_chunks.inc()
        self._g_eta.set(self.eta_seconds())
        if self._stream is not None:
            self._stream.write("\r" + self.render_line())
            self._stream.flush()
            self._wrote_line = True

    def rate(self) -> float:
        """Observed units/second since the tracker started."""
        if self._started_at is None or not self._done:
            return 0.0
        elapsed = time.monotonic() - self._started_at
        return self._done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float:
        """Estimated seconds of work remaining (0 when unknown/done)."""
        remaining = max(self._total - self._done, 0)
        if not remaining:
            return 0.0
        rate = self.rate()
        return remaining / rate if rate > 0 else 0.0

    def render_line(self) -> str:
        """The one-line progress display (also used by tests)."""
        total = max(self._total, self._done)
        percent = 100.0 * self._done / total if total else 0.0
        parts = [
            f"sweep: {self._done}/{total} {self._unit} ({percent:5.1f}%)",
            f"{self.rate():8.1f} {self._unit}/s",
        ]
        if self._done and self._unit == "patterns":
            parts.append(f"mean success {self._success_sum / self._done:.3f}")
        remaining = max(total - self._done, 0)
        parts.append("done" if not remaining else f"eta {self.eta_seconds():.0f}s")
        return " | ".join(parts)

    def finish(self) -> None:
        """Zero the ETA and terminate the progress line, if any."""
        self._g_eta.set(0.0)
        if self._stream is not None and self._wrote_line:
            self._stream.write("\r" + self.render_line() + "\n")
            self._stream.flush()
            self._wrote_line = False
