"""OpenMetrics / Prometheus text exposition for metric registries.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the text format scrapers understand (``GET /metrics`` serves it):

- counters get the ``_total`` sample suffix,
- histograms become *cumulative* ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (the registry stores per-bin counts; the
  encoder accumulates),
- gauges are emitted verbatim,
- :class:`~repro.obs.metrics.Info` annotations become a labeled
  ``_info`` gauge whose sample value is always 1,
- dotted metric names are sanitized to underscores and non-empty help
  strings become ``# HELP`` lines.

The module also carries :func:`parse_exposition`, a small strict parser
used by the tests and the CI smoke script to round-trip-validate the
encoder (type/sample-suffix agreement, bucket cumulativity, ``_count``
vs ``+Inf`` consistency, trailing ``# EOF``).  It is not a general
Prometheus parser; it understands exactly what :func:`render` emits.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Info,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "CONTENT_TYPE",
    "MetricFamily",
    "metric_name",
    "render",
    "parse_exposition",
]

#: Content type advertised by the ``/metrics`` endpoint.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One sample line: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str) -> str:
    """Sanitize a dotted registry name into an exposition name.

    ``candidates.cache_hits`` -> ``candidates_cache_hits``; characters
    outside ``[a-zA-Z0-9_:]`` collapse to ``_`` and a leading digit is
    prefixed with ``_``.
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - registries never do this
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    # Sequential str.replace would misread an escaped backslash followed
    # by a literal "n" (\\n) as an escaped newline; scan left to right.
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            escaped = value[index + 1]
            if escaped == "n":
                out.append("\n")
                index += 2
                continue
            if escaped in ('"', "\\"):
                out.append(escaped)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def render(registry: MetricsRegistry | None = None) -> str:
    """Encode *registry* (default: the process registry) as exposition
    text.

    Iterating the registry runs its snapshot collectors, so derived
    metrics (cache hit rates, memory gauges) are refreshed on every
    scrape.
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    seen: dict[str, str] = {}
    for metric in registry:
        family = metric_name(metric.name)
        if isinstance(metric, Info):
            family += "_info"
        previous = seen.get(family)
        if previous is not None:
            raise ObservabilityError(
                f"metric names {previous!r} and {metric.name!r} both "
                f"sanitize to exposition family {family!r}"
            )
        seen[family] = metric.name
        if metric.help:
            lines.append(f"# HELP {family} {_escape_help(metric.help)}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family}_total {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {family} histogram")
            cumulative = 0
            for bound, count in metric.bucket_counts():
                cumulative += count
                lines.append(
                    f'{family}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{family}_sum {_format_value(metric.sum)}")
            lines.append(f"{family}_count {metric.count}")
        elif isinstance(metric, Info):
            lines.append(f"# TYPE {family} gauge")
            lines.append(
                f'{family}{{value="{_escape_label(metric.value)}"}} 1'
            )
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_format_value(metric.value)}")
        else:  # pragma: no cover - registry only stores the four kinds
            raise ObservabilityError(
                f"cannot encode metric {metric.name!r} "
                f"({type(metric).__name__})"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Test-only parser
# ---------------------------------------------------------------------------


@dataclass
class MetricFamily:
    """One parsed exposition family (used by tests and the CI smoke)."""

    name: str
    type: str
    help: str = ""
    #: ``(sample name, labels, value)`` triples in document order.
    samples: list[tuple[str, dict[str, str], float]] = field(
        default_factory=list
    )

    def sample_value(
        self, suffix: str = "", labels: dict[str, str] | None = None
    ) -> float:
        """The value of the sample ``name + suffix`` (optionally
        matching *labels*); raises when absent."""
        wanted = self.name + suffix
        for sample_name, sample_labels, value in self.samples:
            if sample_name != wanted:
                continue
            if labels is not None and sample_labels != labels:
                continue
            return value
        raise ObservabilityError(
            f"family {self.name!r} has no sample {wanted!r} "
            f"with labels {labels!r}"
        )


_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as error:
        raise ObservabilityError(f"bad sample value {text!r}") from error


def _check_histogram(family: MetricFamily) -> None:
    buckets = [
        (labels, value)
        for name, labels, value in family.samples
        if name == family.name + "_bucket"
    ]
    if not buckets:
        raise ObservabilityError(
            f"histogram {family.name!r} has no _bucket samples"
        )
    bounds = []
    for labels, _ in buckets:
        if "le" not in labels:
            raise ObservabilityError(
                f"histogram {family.name!r} bucket is missing its le label"
            )
        bounds.append(_parse_value(labels["le"]))
    if bounds != sorted(bounds):
        raise ObservabilityError(
            f"histogram {family.name!r} le bounds are not sorted: {bounds}"
        )
    if not math.isinf(bounds[-1]):
        raise ObservabilityError(
            f"histogram {family.name!r} is missing its +Inf bucket"
        )
    counts = [value for _, value in buckets]
    if counts != sorted(counts):
        raise ObservabilityError(
            f"histogram {family.name!r} buckets are not cumulative: {counts}"
        )
    total = family.sample_value("_count")
    if counts[-1] != total:
        raise ObservabilityError(
            f"histogram {family.name!r} +Inf bucket {counts[-1]} != "
            f"_count {total}"
        )
    family.sample_value("_sum")  # must exist


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse (and structurally validate) :func:`render` output.

    Returns families keyed by family name.  Raises
    :class:`~repro.errors.ObservabilityError` on any malformation:
    unknown line shapes, samples without a ``# TYPE``, sample suffixes
    that disagree with the declared type, non-cumulative or unsorted
    histogram buckets, ``+Inf`` != ``_count``, or a missing ``# EOF``.
    """
    families: dict[str, MetricFamily] = {}
    saw_eof = False
    pending_help: dict[str, str] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ObservabilityError(f"line {number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            pending_help[name] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or parts[1] not in _SUFFIXES:
                raise ObservabilityError(f"line {number}: bad TYPE line {line!r}")
            name, kind = parts
            if name in families:
                raise ObservabilityError(
                    f"line {number}: duplicate family {name!r}"
                )
            families[name] = MetricFamily(
                name=name, type=kind, help=pending_help.pop(name, "")
            )
            continue
        if line.startswith("#"):
            raise ObservabilityError(f"line {number}: unknown comment {line!r}")
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ObservabilityError(f"line {number}: bad sample line {line!r}")
        sample_name, label_text, value_text = match.groups()
        labels = {}
        if label_text:
            labels = {
                key: _unescape_label(value)
                for key, value in _LABEL.findall(label_text[1:-1])
            }
        family = None
        for candidate in families.values():
            if any(
                sample_name == candidate.name + suffix
                for suffix in _SUFFIXES[candidate.type]
            ):
                family = candidate
                break
        if family is None:
            raise ObservabilityError(
                f"line {number}: sample {sample_name!r} has no matching "
                f"# TYPE declaration"
            )
        family.samples.append((sample_name, labels, _parse_value(value_text)))
    if not saw_eof:
        raise ObservabilityError("exposition text does not end with # EOF")
    for family in families.values():
        if not family.samples:
            raise ObservabilityError(f"family {family.name!r} has no samples")
        if family.type == "histogram":
            _check_histogram(family)
        if not _VALID_NAME.match(family.name):
            raise ObservabilityError(f"bad family name {family.name!r}")
    return families
