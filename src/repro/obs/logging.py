"""Structured JSON logging on top of the stdlib :mod:`logging` module.

Instrumented code logs *events with fields*, not formatted strings::

    _log = obs_logging.get_logger("swdecc")
    obs_logging.emit(_log, logging.DEBUG, "filter fell back",
                     received=hex(word), candidates=count)

and harnesses bind run-scoped context that every line inside the block
inherits::

    with obs_logging.bind(benchmark="mcf", strategy="filter-and-rank"):
        sweep.run(image)

Until :func:`configure` attaches a handler the ``repro`` logger tree is
silent and an :func:`emit` call costs one (cached) ``isEnabledFor``
check — cheap enough for the rare-path hooks (fallbacks, escalations,
scrub DUEs, chunk completions) that use it.  :func:`configure` wires a
:class:`JsonFormatter` handler writing one JSON object per line with
``ts``/``level``/``logger``/``msg`` plus the bound context and the
event's own fields; the CLI exposes it as ``--log-json PATH`` (``-``
for stderr) on every subcommand.
"""

from __future__ import annotations

import contextlib
import json
import logging
import sys
from contextvars import ContextVar
from typing import Iterator, Mapping, TextIO

__all__ = [
    "JsonFormatter",
    "ROOT_LOGGER",
    "bind",
    "bound_fields",
    "configure",
    "emit",
    "get_logger",
    "unconfigure",
]

#: Every repro logger lives under this name; :func:`configure` attaches
#: its handler here.
ROOT_LOGGER = "repro"

# Quiet-by-default: without this, logging.lastResort would print any
# WARNING+ record to stderr even when the user asked for no logging.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

_bound: ContextVar[dict[str, object]] = ContextVar(
    "repro_log_fields", default={}
)


def get_logger(name: str) -> logging.Logger:
    """The logger ``repro.<name>`` (pass-through when already rooted)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def bound_fields() -> dict[str, object]:
    """The fields currently bound in this context (a copy)."""
    return dict(_bound.get())


@contextlib.contextmanager
def bind(**fields: object) -> Iterator[None]:
    """Bind *fields* to every record emitted inside the block.

    Bindings nest (inner blocks extend/override outer ones) and are
    contextvar-scoped, so concurrent threads and tasks do not leak
    context into each other.
    """
    token = _bound.set({**_bound.get(), **fields})
    try:
        yield
    finally:
        _bound.reset(token)


def emit(
    logger: logging.Logger, level: int, msg: str, **fields: object
) -> None:
    """Log *msg* at *level* with structured *fields* attached.

    A no-op (one cached level check) when nothing is configured to
    listen, so hooks on rare paths stay effectively free.
    """
    if logger.isEnabledFor(level):
        logger.log(level, msg, extra={"fields": fields})


class JsonFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    Key order is fixed (``ts``, ``level``, ``logger``, ``msg``, then
    bound context, then the event's own fields) so the lines diff and
    grep predictably; later field sources override earlier ones on key
    collisions.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_bound.get())
        fields = getattr(record, "fields", None)
        if isinstance(fields, Mapping):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(
    destination: str | TextIO = "-", level: int = logging.DEBUG
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    *destination* is a path, ``"-"`` for stderr, or an open stream.
    Returns the handler so callers can detach it with
    :func:`unconfigure` (the CLI does, keeping repeated in-process
    ``main()`` calls from stacking handlers).
    """
    if destination == "-":
        handler: logging.Handler = logging.StreamHandler(sys.stderr)
    elif isinstance(destination, str):
        handler = logging.FileHandler(destination, encoding="utf-8")
    else:
        handler = logging.StreamHandler(destination)
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    root = logging.getLogger(ROOT_LOGGER)
    root.addHandler(handler)
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    return handler


def unconfigure(handler: logging.Handler) -> None:
    """Detach and close a handler installed by :func:`configure`."""
    logging.getLogger(ROOT_LOGGER).removeHandler(handler)
    handler.close()
