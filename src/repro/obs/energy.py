"""Energy & cost accounting derived from op-level counters.

The decode hot paths count their abstract work — GF(2) XOR/AND word
operations, syndrome computations, candidate enumerations, and
filter/ranker evaluations — as plain ``ops.*`` counters (see
:mod:`repro.ecc.code`, :mod:`repro.ecc.candidates`, and
:mod:`repro.core.swdecc`).  This module converts those counts into the
figures operators actually compare deployments by:

- ``energy.joules_total`` — modeled energy of all counted ops,
- ``energy.joules_per_recovery`` — energy per heuristic recovery,
- ``cost.dollars_per_million_requests`` — electricity cost per million
  recoveries at the configured $/kWh,
- ``carbon.grams_co2_total`` — CO2-equivalent at the configured
  regional carbon intensity,
- ``energy.model`` — an info metric carrying the model configuration.

All four are *derived at snapshot time* by a registry collector (the
same idiom as the cache-hit-rate gauges): hot paths pay only the
counter increments, and every ``/metrics`` scrape sees fresh figures.

The per-op joule constants are a deliberately simple software cost
model (order-of-magnitude CPU energy per counted operation class, in
the spirit of the XOR/AND-count energy models used by sustainability
benchmarks), and everything is pluggable: construct an
:class:`EnergyModel` with your own constants, region carbon intensity
(g CO2/kWh), and electricity price, then :func:`set_energy_model` it —
or set ``REPRO_CARBON_G_PER_KWH`` / ``REPRO_DOLLARS_PER_KWH`` in the
environment before the process starts.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs import metrics as obs_metrics

__all__ = [
    "DEFAULT_JOULES_PER_OP",
    "EnergyModel",
    "get_energy_model",
    "set_energy_model",
    "op_counts",
    "joules_of_counts",
]

#: Joules per counted operation, by counter name.  Word-level GF(2)
#: ops are modeled as single ALU operations of a ~1 GHz-class core
#: (~0.4 nJ whole-core energy each).  A syndrome compute is one AND
#: plus one parity-XOR per parity-check row — those row ops are folded
#: into its constant (sized for the ~7-row SECDED regime plus dispatch)
#: so the hot path pays a single counter inc.  Candidate enumerations
#: carry a small dispatch overhead on top of the XORs they also count;
#: filter/ranker evaluations decode an instruction word (dozens of ALU
#: ops plus table lookups).
DEFAULT_JOULES_PER_OP: dict[str, float] = {
    "ops.xor": 4.0e-10,
    "ops.and": 4.0e-10,
    "ops.syndrome_computes": 8.0e-9,
    "ops.candidate_enumerations": 2.0e-9,
    "ops.filter_evals": 2.4e-8,
    "ops.ranker_evals": 2.4e-8,
}

#: Joules in one kilowatt-hour.
JOULES_PER_KWH = 3.6e6

#: Environment overrides honoured by :meth:`EnergyModel.from_env`.
ENV_CARBON = "REPRO_CARBON_G_PER_KWH"
ENV_DOLLARS = "REPRO_DOLLARS_PER_KWH"


@dataclass(frozen=True)
class EnergyModel:
    """Pluggable op-count -> joules/dollars/CO2 conversion.

    Parameters
    ----------
    joules_per_op:
        Joules charged per increment of each ``ops.*`` counter.
        Counters absent from the mapping cost nothing; mapping entries
        with no counter contribute nothing.
    carbon_intensity_g_per_kwh:
        Grams of CO2-equivalent per kWh of the deployment region
        (default 400, roughly a mixed grid).
    dollars_per_kwh:
        Electricity price (default $0.12/kWh).
    """

    joules_per_op: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_JOULES_PER_OP)
    )
    carbon_intensity_g_per_kwh: float = 400.0
    dollars_per_kwh: float = 0.12

    def __post_init__(self) -> None:
        for name, joules in self.joules_per_op.items():
            if joules < 0:
                raise ObservabilityError(
                    f"joules_per_op[{name!r}] must be >= 0, got {joules}"
                )
        if self.carbon_intensity_g_per_kwh < 0:
            raise ObservabilityError(
                "carbon_intensity_g_per_kwh must be >= 0, "
                f"got {self.carbon_intensity_g_per_kwh}"
            )
        if self.dollars_per_kwh < 0:
            raise ObservabilityError(
                f"dollars_per_kwh must be >= 0, got {self.dollars_per_kwh}"
            )

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "EnergyModel":
        """Default model with region/price overrides from the environment."""
        environ = environ if environ is not None else os.environ
        kwargs: dict[str, float] = {}
        for key, env_name in (
            ("carbon_intensity_g_per_kwh", ENV_CARBON),
            ("dollars_per_kwh", ENV_DOLLARS),
        ):
            raw = environ.get(env_name)
            if raw is None:
                continue
            try:
                kwargs[key] = float(raw)
            except ValueError:
                raise ObservabilityError(
                    f"{env_name}={raw!r} is not a number"
                )
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def joules(self, counts: Mapping[str, int | float]) -> float:
        """Modeled energy of an op-count mapping."""
        return sum(
            count * self.joules_per_op.get(name, 0.0)
            for name, count in counts.items()
        )

    def dollars(self, joules: float) -> float:
        """Electricity cost of *joules* at the configured price."""
        return joules / JOULES_PER_KWH * self.dollars_per_kwh

    def grams_co2(self, joules: float) -> float:
        """CO2-equivalent of *joules* at the configured intensity."""
        return joules / JOULES_PER_KWH * self.carbon_intensity_g_per_kwh

    def describe(self) -> str:
        """One-line configuration summary (the ``energy.model`` info)."""
        ops = " ".join(
            f"{name}={self.joules_per_op[name]:.3g}"
            for name in sorted(self.joules_per_op)
        )
        return (
            f"carbon_g_per_kwh={self.carbon_intensity_g_per_kwh:g} "
            f"dollars_per_kwh={self.dollars_per_kwh:g} {ops}"
        )


_model: EnergyModel = EnergyModel.from_env()


def get_energy_model() -> EnergyModel:
    """The process-wide energy model."""
    return _model


def set_energy_model(model: EnergyModel) -> EnergyModel:
    """Replace the process-wide energy model; returns the previous one."""
    global _model
    previous = _model
    _model = model
    return previous


def op_counts(
    registry: obs_metrics.MetricsRegistry | None = None,
    model: EnergyModel | None = None,
) -> dict[str, int | float]:
    """Current values of the model's op counters in *registry*.

    Missing counters read as 0, so deltas between two calls are valid
    even when instrumented objects have not been constructed yet.
    """
    registry = registry if registry is not None else obs_metrics.get_registry()
    model = model if model is not None else _model
    counts: dict[str, int | float] = {}
    for name in model.joules_per_op:
        metric = registry.get(name)
        counts[name] = (
            metric.value if isinstance(metric, obs_metrics.Counter) else 0
        )
    return counts


def joules_of_counts(
    counts: Mapping[str, int | float], model: EnergyModel | None = None
) -> float:
    """Convenience: modeled joules of an op-count mapping."""
    model = model if model is not None else _model
    return model.joules(counts)


def _energy_collector() -> None:
    """Derive the energy/cost/carbon metrics at snapshot time.

    Runs against the *current* default registry (like the cache-hit-rate
    collector): the ops counters live wherever the instrumented objects
    were constructed, and the derived gauges are written next to them so
    one ``/metrics`` scrape carries both.
    """
    registry = obs_metrics.get_registry()
    model = _model
    total = model.joules(op_counts(registry, model))
    registry.gauge(
        "energy.joules_total",
        help="Modeled energy of all counted decode ops (derived at snapshot time)",
    ).set(total)
    recoveries_metric = registry.get("swdecc.recoveries")
    recoveries = (
        recoveries_metric.value
        if isinstance(recoveries_metric, obs_metrics.Counter)
        else 0
    )
    per_recovery = total / recoveries if recoveries else 0.0
    registry.gauge(
        "energy.joules_per_recovery",
        help="Modeled energy per heuristic recovery (derived at snapshot time)",
    ).set(per_recovery)
    registry.gauge(
        "cost.dollars_per_million_requests",
        help="Electricity cost per million recovery requests at the "
        "configured $/kWh (derived at snapshot time)",
    ).set(model.dollars(per_recovery) * 1e6)
    registry.gauge(
        "carbon.grams_co2_total",
        help="CO2-equivalent of all counted decode ops at the configured "
        "regional intensity (derived at snapshot time)",
    ).set(model.grams_co2(total))
    registry.info(
        "energy.model",
        help="Energy-model configuration (per-op joules, carbon intensity, $/kWh)",
    ).set(model.describe())


obs_metrics.add_collector(_energy_collector)
