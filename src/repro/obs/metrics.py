"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat namespace of named metrics.  The
module keeps one default registry that instrumented code fetches with
:func:`get_registry`; hot classes cache the metric *objects* at
construction time so the steady-state cost of an increment is one
attribute access and an integer add.

Collection is default-on.  To measure the cost of instrumentation
itself (``benchmarks/bench_obs_overhead.py``) install
:data:`NULL_REGISTRY`, whose metrics accept updates and discard them.

Naming convention: dotted lowercase paths, subsystem first —
``swdecc.recoveries``, ``memory.reads``, ``sweep.benchmark_wall_seconds``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "get_registry",
    "set_registry",
    "add_collector",
    "run_collectors",
    "merge_snapshot",
    "diff_snapshot",
]

#: Latency-style bucket upper bounds, in seconds (Prometheus defaults).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Small-integer bucket upper bounds (candidate counts, list sizes).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 128,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    @property
    def value(self) -> int | float:
        """Current count."""
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self._value += amount

    def reset(self) -> None:
        """Zero the counter (registry resets, test isolation)."""
        self._value = 0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot."""
        return {"type": "counter", "name": self.name, "value": self._value}


class Gauge:
    """A value that can go up and down (sizes, last-seen readings)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current reading."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the reading."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the reading upward."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Adjust the reading downward."""
        self._value -= amount

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot."""
        return {"type": "gauge", "name": self.name, "value": self._value}


class Histogram:
    """A distribution summarised by fixed buckets plus running moments.

    Buckets are *upper bounds* of cumulative-style bins; an observation
    lands in the first bucket whose bound is >= the value, or in the
    implicit overflow bucket.  ``count``/``sum``/``min``/``max`` are
    exact regardless of bucketing.
    """

    __slots__ = (
        "name", "help", "buckets", "_bucket_counts",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        help: str = "",
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs buckets")
        if list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be sorted: {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        # bisect_left lands v == bound in that bucket (le semantics)
        # and v beyond every bound in the overflow slot.
        self._bucket_counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return self._sum

    @property
    def min(self) -> float | None:
        """Smallest observation, or ``None`` when empty."""
        return self._min

    @property
    def max(self) -> float | None:
        """Largest observation, or ``None`` when empty."""
        return self._max

    @property
    def mean(self) -> float | None:
        """Arithmetic mean, or ``None`` when empty."""
        return self._sum / self._count if self._count else None

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper bound, count) pairs; the overflow bound is ``inf``."""
        bounds = [*self.buckets, float("inf")]
        return list(zip(bounds, self._bucket_counts))

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution estimate of the *q*-quantile (0..1).

        ``q=0`` returns the exact minimum and ``q=1`` the exact maximum
        (both tracked outside the buckets); empty histograms return
        ``None``.  Otherwise the answer is the upper bound of the
        bucket holding the rank, clamped to the observed maximum —
        empty leading buckets are skipped so they can never satisfy the
        rank spuriously.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if not self._count:
            return None
        if q == 0.0:
            return self._min
        rank = q * self._count
        cumulative = 0
        for bound, count in self.bucket_counts():
            if not count:
                continue
            cumulative += count
            if cumulative >= rank:
                return min(bound, self._max if self._max is not None else bound)
        return self._max

    def reset(self) -> None:
        """Drop all observations (buckets are kept)."""
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def merge_dict(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`as_dict` snapshot into this one.

        Used when aggregating worker-process metrics into the parent
        registry (see :func:`merge_snapshot`).  The snapshot must have
        the same bucket bounds; merged ``count``/``sum``/``min``/``max``
        stay exact.
        """
        bounds = tuple(entry["le"] for entry in snapshot["buckets"][:-1])
        if bounds != self.buckets:
            raise ObservabilityError(
                f"histogram {self.name!r} bucket mismatch while merging: "
                f"{bounds} != {self.buckets}"
            )
        for index, entry in enumerate(snapshot["buckets"]):
            self._bucket_counts[index] += entry["count"]
        self._count += snapshot["count"]
        self._sum += snapshot["sum"]
        for bound_key, better in (("min", min), ("max", max)):
            other = snapshot[bound_key]
            if other is None:
                continue
            current = self._min if bound_key == "min" else self._max
            merged = other if current is None else better(current, other)
            if bound_key == "min":
                self._min = merged
            else:
                self._max = merged

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot."""
        return {
            "type": "histogram",
            "name": self.name,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in self.bucket_counts()
            ],
        }


class Info:
    """A string-valued annotation metric (last set wins).

    The numeric metrics cannot carry identity ("which benchmark ran
    last?") without minting one metric per identity — unbounded
    cardinality.  An info metric holds a single string instead, so hot
    loops over arbitrary names stay at O(1) registered metrics.
    """

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = ""

    @property
    def value(self) -> str:
        """Current annotation."""
        return self._value

    def set(self, value: str) -> None:
        """Replace the annotation."""
        self._value = str(value)

    def reset(self) -> None:
        """Clear the annotation."""
        self._value = ""

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot."""
        return {"type": "info", "name": self.name, "value": self._value}


#: Callbacks that refresh *derived* metrics right before a snapshot.
#: Subsystems with hot paths too cheap to instrument inline (e.g. the
#: per-instance ``MemoryStats`` counters) register a collector instead:
#: it runs when the registry is read, not when events happen.
_collectors: list = []


def add_collector(callback) -> None:
    """Register a zero-argument callback run before registry snapshots."""
    _collectors.append(callback)


def run_collectors() -> None:
    """Run every registered collector (snapshot refresh)."""
    for callback in list(_collectors):
        callback()


def _cache_hit_rate_collector() -> None:
    """Derive ``<base>.cache_hit_rate`` gauges from hit/miss counters.

    Raw hit/miss counters are what the hot paths can afford to update;
    the *ratio* operators actually read is computed here, at snapshot
    time, for every ``<base>.cache_hits`` counter in the registry —
    no per-lookup division, no extra hot-path metric.
    """
    registry = get_registry()
    for name in registry.names():
        if not name.endswith(".cache_hits"):
            continue
        base = name[: -len(".cache_hits")]
        hits_metric = registry.get(name)
        misses_metric = registry.get(f"{base}.cache_misses")
        if not isinstance(hits_metric, Counter):
            continue
        hits = hits_metric.value
        misses = misses_metric.value if isinstance(misses_metric, Counter) else 0
        total = hits + misses
        if total:
            registry.gauge(
                f"{base}.cache_hit_rate",
                help="Cache hits / lookups (derived at snapshot time)",
            ).set(hits / total)


class MetricsRegistry:
    """A flat, get-or-create namespace of metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Info] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ObservabilityError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram *name*.

        *buckets* only takes effect on creation; later calls return the
        existing histogram unchanged.
        """
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def info(self, name: str, help: str = "") -> Info:
        """Get or create the info metric *name*."""
        return self._get_or_create(name, Info, lambda: Info(name, help))

    def get(self, name: str) -> Counter | Gauge | Histogram | Info | None:
        """The metric registered under *name*, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def __iter__(self):
        run_collectors()
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric, keeping registrations (cached references
        held by instrumented objects stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every registration.  Cached references keep updating
        their orphaned metrics; prefer :meth:`reset` between runs."""
        self._metrics.clear()

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Snapshot of every metric, keyed by name."""
        run_collectors()
        return {name: self._metrics[name].as_dict() for name in self.names()}


class _NullCounter(Counter):
    """A counter that discards updates (overhead baseline)."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    """A gauge that discards updates."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that discards observations."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullInfo(Info):
    """An info metric that discards updates."""

    __slots__ = ()

    def set(self, value: str) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose metrics accept and discard all updates.

    Install with ``set_registry(NULL_REGISTRY)`` to measure (or remove)
    instrumentation cost; objects constructed afterwards cache the null
    metrics and become no-op instrumented.
    """

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: _NullCounter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: _NullGauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: _NullHistogram(name, buckets, help)
        )

    def info(self, name: str, help: str = "") -> Info:
        return self._get_or_create(name, Info, lambda: _NullInfo(name, help))


add_collector(_cache_hit_rate_collector)


#: Shared no-op registry for overhead baselines.
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one.

    Only objects constructed *after* the swap pick up the new registry —
    instrumented classes cache metric objects at construction time.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def diff_snapshot(
    previous: dict[str, dict[str, object]],
    current: dict[str, dict[str, object]],
) -> dict[str, dict[str, object]]:
    """The counter/histogram delta between two registry snapshots.

    This is how a long-lived shard process ships its metrics home
    incrementally: it keeps the cumulative snapshot it last shipped,
    and each batch sends only what changed since, so the parent can
    :func:`merge_snapshot` every delta without double counting.

    Only the *additive* metric kinds appear in the delta.  Counters
    carry the value difference (zero-delta counters are omitted);
    histograms carry per-bucket/count/sum differences, with ``min`` /
    ``max`` left at their cumulative values — both are monotone over a
    metric's lifetime, and the parent's merge takes ``min``/``max``
    again, so repeated shipping stays exact.  Gauges and info metrics
    are last-wins readings owned by whichever process set them; deltas
    have no meaning for them, so they never leave the shard.
    """
    delta: dict[str, dict[str, object]] = {}
    for name in current:
        data = current[name]
        kind = data.get("type")
        prior = previous.get(name)
        if kind == "counter":
            changed = data["value"] - (
                prior["value"] if prior is not None else 0
            )
            if changed:
                delta[name] = {
                    "type": "counter", "name": name, "value": changed
                }
        elif kind == "histogram":
            if prior is None:
                if data["count"]:
                    delta[name] = data
                continue
            if data["count"] == prior["count"]:
                continue
            buckets = [
                {"le": entry["le"], "count": entry["count"] - old["count"]}
                for entry, old in zip(data["buckets"], prior["buckets"])
            ]
            delta[name] = {
                "type": "histogram",
                "name": name,
                "count": data["count"] - prior["count"],
                "sum": data["sum"] - prior["sum"],
                "min": data["min"],
                "max": data["max"],
                "mean": None,
                "buckets": buckets,
            }
    return delta


def merge_snapshot(
    snapshot: dict[str, dict[str, object]],
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold an :meth:`MetricsRegistry.as_dict` snapshot into *registry*.

    This is how the process-parallel sweep aggregates worker metrics:
    each worker resets its (fork-copied) registry, runs its task,
    snapshots, and ships the snapshot back; the parent merges them in
    task order.  Counters and histograms accumulate; gauges and info
    metrics take the snapshot's value (last merge wins), which is
    deterministic because the parent merges in submission order.
    """
    registry = registry if registry is not None else get_registry()
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        if kind == "counter":
            registry.counter(name).inc(data["value"])
        elif kind == "gauge":
            registry.gauge(name).set(data["value"])
        elif kind == "info":
            registry.info(name).set(data["value"])
        elif kind == "histogram":
            bounds = tuple(entry["le"] for entry in data["buckets"][:-1])
            registry.histogram(name, buckets=bounds).merge_dict(data)
        else:
            raise ObservabilityError(
                f"cannot merge metric {name!r} of unknown type {kind!r}"
            )
