"""Exporters: text tables and JSON for metrics, spans, and events.

Rendering reuses :func:`repro.analysis.heatmap.render_table` so the
``repro stats`` / ``--profile`` output matches the look of the figure
reproductions.  :func:`to_jsonable` is the one JSON encoder the CLI's
machine-readable modes (``--json``, ``--events``) share: it flattens
dataclasses, enums, and the obs objects into plain JSON types.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections.abc import Mapping, Sequence, Set
from typing import Any

from repro.analysis.heatmap import render_table
from repro.obs.events import EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, Info, MetricsRegistry
from repro.obs.trace import SpanCollector

__all__ = [
    "to_jsonable",
    "to_json",
    "render_metrics",
    "render_spans",
    "render_events_summary",
    "render_waterfall",
    "write_events",
]


def to_jsonable(value: Any) -> Any:
    """Recursively convert *value* into plain JSON-compatible types.

    Handles dataclasses (via their fields), enums (their ``value``),
    mappings, sequences, sets, and objects exposing ``as_dict()`` or
    ``to_dict()``; everything else must already be a JSON scalar.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    for method in ("to_dict", "as_dict"):
        converter = getattr(value, method, None)
        if callable(converter) and not isinstance(value, type):
            return to_jsonable(converter())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (Sequence, Set)):
        return [to_jsonable(item) for item in value]
    return str(value)


def to_json(value: Any, indent: int | None = 2) -> str:
    """Serialize *value* through :func:`to_jsonable`."""
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=True)


def render_metrics(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Counters/gauges and histogram summaries as aligned tables."""
    scalar_rows: list[list[object]] = []
    histogram_rows: list[list[object]] = []
    for metric in registry:
        if isinstance(metric, Counter):
            scalar_rows.append([metric.name, "counter", metric.value])
        elif isinstance(metric, Gauge):
            scalar_rows.append([metric.name, "gauge", metric.value])
        elif isinstance(metric, Info):
            scalar_rows.append([metric.name, "info", metric.value or "-"])
        elif isinstance(metric, Histogram):
            histogram_rows.append([
                metric.name,
                metric.count,
                _sig(metric.mean),
                _sig(metric.min),
                _sig(metric.max),
                _sig(metric.sum),
            ])
    parts = []
    if scalar_rows:
        parts.append(render_table(
            ["metric", "type", "value"], scalar_rows, title=title
        ))
    if histogram_rows:
        parts.append(render_table(
            ["histogram", "count", "mean", "min", "max", "sum"],
            histogram_rows,
            title=f"{title} | distributions",
        ))
    if not parts:
        return f"{title}: (no metrics recorded)"
    return "\n\n".join(parts)


def render_spans(collector: SpanCollector, title: str = "stage latency") -> str:
    """Per-stage latency aggregates as a table, slowest total first."""
    summary = collector.summary()
    if not summary:
        return f"{title}: (no spans recorded)"
    rows = [
        [
            name,
            int(entry["count"]),
            _ms(entry["total_ns"]),
            _ms(entry["mean_ns"]),
            _ms(entry["min_ns"]),
            _ms(entry["max_ns"]),
        ]
        for name, entry in sorted(
            summary.items(), key=lambda kv: -kv[1]["total_ns"]
        )
    ]
    return render_table(
        ["stage", "count", "total ms", "mean ms", "min ms", "max ms"],
        rows,
        title=title,
    )


def render_waterfall(trace: Mapping, width: int = 48) -> str:
    """A request trace as an indented waterfall (``repro trace``).

    *trace* is one entry from ``GET /traces`` (the shape
    :meth:`repro.obs.trace.TraceEntry.as_dict` produces): each span
    prints indented under its parent with its duration and a bar
    positioned along the request's end-to-end window, so queue wait
    vs. linger vs. shard execution vs. serialization reads off at a
    glance.
    """
    root = trace["root"]
    total_ns = max(
        int(trace.get("duration_ns") or root["duration_ns"]), 1
    )
    base_ns = int(root["start_ns"])
    header = (
        f"trace {trace['trace_id']}  "
        f"{int(trace.get('duration_ns') or root['duration_ns']) / 1e6:.3f} ms"
        f"  {trace.get('span_count', '?')} spans"
    )
    if trace.get("remote_parent_id"):
        header += f"  (remote parent {trace['remote_parent_id']})"
    lines = [header]

    def walk(node: Mapping, depth: int) -> None:
        duration_ns = int(node["duration_ns"])
        offset_ns = max(int(node["start_ns"]) - base_ns, 0)
        start_col = min(offset_ns * width // total_ns, width - 1)
        length = max(duration_ns * width // total_ns, 1)
        length = min(length, width - start_col)
        bar = (
            " " * start_col
            + "█" * length
            + " " * (width - start_col - length)
        )
        label = ("  " * depth + node["name"])[:38].ljust(38)
        lines.append(f"{label} {duration_ns / 1e6:9.3f} ms |{bar}|")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def render_events_summary(log: EventLog, title: str = "DUE events") -> str:
    """A one-table digest of the retained DUE events.

    When the log has absorbed worker-process digests (``--jobs N``
    runs), the table appends the worker aggregate — the events
    themselves live in the worker rings and never cross the process
    boundary, but their digest does, so parallel profiles stay honest.
    """
    events = log.events()
    worker = log.absorbed_digest
    if not events and not worker.count:
        return f"{title}: (none recorded)"
    rows: list[list[object]] = []
    if events:
        fallbacks = sum(1 for e in events if e.filter_fell_back)
        with_truth = [e for e in events if e.recovered is not None]
        recovered = sum(1 for e in with_truth if e.recovered)
        rows += [
            ["events retained", len(events)],
            ["events total", log.total_recorded],
            ["filter fallbacks", fallbacks],
            ["mean candidates", _sig(_mean(e.num_candidates for e in events))],
            ["mean valid", _sig(_mean(e.num_valid for e in events))],
            ["mean latency us", _sig(_mean(e.latency_ns for e in events) / 1e3)],
            [
                "recovered (where truth known)",
                f"{recovered}/{len(with_truth)}" if with_truth else "n/a",
            ],
        ]
    if worker.count:
        mean_latency = worker.mean_latency_ns
        rows += [
            ["worker events (digest)", worker.count],
            ["worker filter fallbacks", worker.fallbacks],
            [
                "worker mean latency us",
                _sig(None if mean_latency is None else mean_latency / 1e3),
            ],
            [
                "worker recovered (where truth known)",
                f"{worker.recovered}/{worker.with_truth}"
                if worker.with_truth else "n/a",
            ],
        ]
    return render_table(["statistic", "value"], rows, title=title)


def write_events(path: str, log: EventLog) -> int:
    """Write the retained events to *path* as JSON lines; returns the
    number of events written."""
    text = log.to_json_lines()
    with open(path, "w", encoding="utf-8") as handle:
        if text:
            handle.write(text + "\n")
    return len(log)


def _mean(values) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0


def _sig(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.4g}"


def _ms(nanoseconds: float) -> str:
    return f"{nanoseconds / 1e6:.3f}"
