"""Structured event logging: one record per DUE handled.

Every call to :meth:`repro.core.swdecc.SwdEcc.recover` emits one
:class:`DueEvent` into the process-wide :class:`EventLog` — a bounded
ring buffer, so long sweeps cannot grow memory without bound.  Events
are named tuples (construction sits on the recovery hot path, and a
``NamedTuple`` builds several times faster than a frozen dataclass)
that round-trip through JSON
(:meth:`DueEvent.to_dict` / :meth:`DueEvent.from_dict`), which is what
the CLI's ``--events PATH`` flag writes as JSON lines.

The emitter knows the received word and what the engine chose; it
cannot know the *true* original word.  Harnesses that do (sweeps, the
``repro recover`` command) annotate the event afterwards with
:meth:`DueEvent.with_truth`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterator, NamedTuple

__all__ = [
    "DueEvent",
    "EventDigest",
    "EventLog",
    "NullEventLog",
    "get_event_log",
    "set_event_log",
]


class DueEvent(NamedTuple):
    """One DUE handled by the SWD-ECC engine.

    Attributes
    ----------
    received:
        The n-bit DUE word as read from memory.
    num_candidates:
        Size of the unfiltered equidistant candidate list.
    num_valid:
        Candidates surviving the filter stage (before any fallback).
    filter_fell_back:
        True when filtering rejected everything and the engine reverted
        to the unfiltered list.
    chosen_message / chosen_codeword:
        The recovery target the engine picked.
    tied:
        Number of candidates sharing the winning score.
    latency_ns:
        Wall-clock nanoseconds spent inside ``recover()``.
    address:
        Faulting word address, when the caller knows it.
    true_message:
        The actual original message, when a harness knows ground truth.
    """

    received: int
    num_candidates: int
    num_valid: int
    filter_fell_back: bool
    chosen_message: int
    chosen_codeword: int
    tied: int
    latency_ns: int
    address: int | None = None
    true_message: int | None = None

    @property
    def recovered(self) -> bool | None:
        """Whether the chosen message matches ground truth; ``None``
        when no ground truth was attached."""
        if self.true_message is None:
            return None
        return self.chosen_message == self.true_message

    def with_truth(self, true_message: int) -> "DueEvent":
        """A copy annotated with the known original message."""
        return self._replace(true_message=true_message)

    def with_address(self, address: int) -> "DueEvent":
        """A copy annotated with the faulting address."""
        return self._replace(address=address)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable record (includes the derived verdict)."""
        return {
            "received": self.received,
            "num_candidates": self.num_candidates,
            "num_valid": self.num_valid,
            "filter_fell_back": self.filter_fell_back,
            "chosen_message": self.chosen_message,
            "chosen_codeword": self.chosen_codeword,
            "tied": self.tied,
            "latency_ns": self.latency_ns,
            "address": self.address,
            "true_message": self.true_message,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "DueEvent":
        """Rebuild an event from :meth:`to_dict` output (the derived
        ``recovered`` key, if present, is ignored)."""
        return cls(
            received=int(record["received"]),  # type: ignore[arg-type]
            num_candidates=int(record["num_candidates"]),  # type: ignore[arg-type]
            num_valid=int(record["num_valid"]),  # type: ignore[arg-type]
            filter_fell_back=bool(record["filter_fell_back"]),
            chosen_message=int(record["chosen_message"]),  # type: ignore[arg-type]
            chosen_codeword=int(record["chosen_codeword"]),  # type: ignore[arg-type]
            tied=int(record["tied"]),  # type: ignore[arg-type]
            latency_ns=int(record["latency_ns"]),  # type: ignore[arg-type]
            address=(
                None if record.get("address") is None
                else int(record["address"])  # type: ignore[arg-type]
            ),
            true_message=(
                None if record.get("true_message") is None
                else int(record["true_message"])  # type: ignore[arg-type]
            ),
        )


class EventDigest(NamedTuple):
    """Aggregate statistics of an event population.

    Worker processes cannot ship their event *rings* home (parallel
    chunks would interleave the bounded ring meaninglessly — see
    ``docs/performance.md``), but a fixed-size digest merges exactly:
    :func:`repro.analysis.parallel.parallel_map` computes one per worker
    task and the parent absorbs them, so ``--jobs N`` profiles report
    worker DUE activity instead of a misleadingly empty summary.

    ``count`` covers every event recorded (including any evicted from
    the ring); the remaining fields are tallied over retained events.
    """

    count: int = 0
    fallbacks: int = 0
    latency_ns_total: int = 0
    latency_events: int = 0
    recovered: int = 0
    with_truth: int = 0

    @classmethod
    def from_log(cls, log: "EventLog") -> "EventDigest":
        """Digest the retained contents (and totals) of *log*."""
        events = log.events()
        with_truth = [e for e in events if e.recovered is not None]
        return cls(
            count=log.total_recorded,
            fallbacks=sum(1 for e in events if e.filter_fell_back),
            latency_ns_total=sum(e.latency_ns for e in events),
            latency_events=len(events),
            recovered=sum(1 for e in with_truth if e.recovered),
            with_truth=len(with_truth),
        )

    def merge(self, other: "EventDigest") -> "EventDigest":
        """Field-wise sum of two digests."""
        return EventDigest(*(a + b for a, b in zip(self, other)))

    @property
    def mean_latency_ns(self) -> float | None:
        """Mean per-event latency, or ``None`` with no timed events."""
        if not self.latency_events:
            return None
        return self.latency_ns_total / self.latency_events

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable record (includes the derived mean)."""
        return {**self._asdict(), "mean_latency_ns": self.mean_latency_ns}


class EventLog:
    """Bounded in-memory DUE event log (newest events win).

    Besides its own ring, a log accumulates *absorbed* digests of
    worker-process events (:meth:`absorb_digest`) so parallel runs keep
    an accurate aggregate even though the worker rings stay remote.
    """

    DEFAULT_CAPACITY = 8192

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._events: deque[DueEvent] = deque(maxlen=capacity)
        self._total = 0
        self._absorbed = EventDigest()

    @property
    def capacity(self) -> int:
        """Ring-buffer size."""
        return self._events.maxlen or 0

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any evicted by the bound."""
        return self._total

    def record(self, event: DueEvent) -> None:
        """Append an event (evicting the oldest when full)."""
        self._events.append(event)
        self._total += 1

    def events(self) -> tuple[DueEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def last(self) -> DueEvent | None:
        """The most recent event, or ``None``."""
        return self._events[-1] if self._events else None

    def annotate_last(self, **changes: object) -> DueEvent | None:
        """Replace fields of the most recent event in place.

        Harnesses that learn ground truth (or the faulting address)
        right after a ``recover()`` call use this to enrich the event
        the engine just emitted.  Returns the updated event.
        """
        if not self._events:
            return None
        updated = self._events[-1]._replace(**changes)  # type: ignore[arg-type]
        self._events[-1] = updated
        return updated

    def drain(self) -> tuple[DueEvent, ...]:
        """Return and remove all retained events."""
        drained = tuple(self._events)
        self._events.clear()
        return drained

    def absorb_digest(self, digest: EventDigest) -> None:
        """Fold a worker's event digest into this log's aggregate."""
        self._absorbed = self._absorbed.merge(digest)

    @property
    def absorbed_digest(self) -> EventDigest:
        """The accumulated worker-event digest (zeros when none)."""
        return self._absorbed

    def clear(self) -> None:
        """Drop all retained events, absorbed digests, and the total."""
        self._events.clear()
        self._total = 0
        self._absorbed = EventDigest()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DueEvent]:
        return iter(tuple(self._events))

    def to_json_lines(self) -> str:
        """All retained events as newline-delimited JSON."""
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in self)

    @classmethod
    def from_json_lines(cls, text: str, capacity: int | None = None) -> "EventLog":
        """Rebuild a log from :meth:`to_json_lines` output."""
        log = cls(capacity if capacity is not None else cls.DEFAULT_CAPACITY)
        for line in text.splitlines():
            line = line.strip()
            if line:
                log.record(DueEvent.from_dict(json.loads(line)))
        return log


class NullEventLog(EventLog):
    """An event log that discards records (overhead baseline)."""

    def record(self, event: DueEvent) -> None:
        pass

    def absorb_digest(self, digest: EventDigest) -> None:
        pass


_default_log = EventLog()


def get_event_log() -> EventLog:
    """The process-wide DUE event log."""
    return _default_log


def set_event_log(log: EventLog) -> EventLog:
    """Replace the default log; returns the previous one.

    Like :func:`repro.obs.metrics.set_registry`, only objects
    constructed after the swap pick up the new log.
    """
    global _default_log
    previous = _default_log
    _default_log = log
    return previous
