"""A word-granular ECC-protected memory model.

Models the hardware side of Fig. 1: every stored 32-bit word is
encoded to an n-bit codeword on write and decoded on read; the decoder
reports OK / CE / DUE exactly like memory-controller ECC hardware.  On
a DUE the configured :class:`~repro.memory.policy.DuePolicy` decides
what the "system" does — crash, poison, or hand the received word to
SWD-ECC.

The model is deliberately functional rather than cycle accurate: the
paper's evaluation is offline, and what matters is the *information
flow* between decoder, policy, and recovery engine.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable
from dataclasses import dataclass

from repro.bits import bit_mask
from repro.obs import metrics as obs_metrics
from repro.ecc.channel import ErrorPattern
from repro.ecc.code import DecodeStatus, LinearBlockCode
from repro.errors import MemoryFaultError
from repro.memory.policy import DuePolicy, PoisonedRead
from repro.core.swdecc import RecoveryResult

__all__ = ["EccMemory", "MemoryReadResult", "MemoryStats"]


@dataclass(eq=False)
class MemoryStats:
    """Event counters accumulated by an :class:`EccMemory`.

    Backed by :mod:`repro.obs` via the collector pattern: instances
    register themselves in a weak set at construction, and a metrics
    collector sums every live instance into the registry's ``memory.*``
    gauges whenever the registry is snapshotted (``repro stats``,
    ``--profile``, ``registry.as_dict()``).  The hot read/write paths
    therefore stay plain integer increments — observability costs
    nothing until somebody looks.
    """

    writes: int = 0
    reads: int = 0
    clean_reads: int = 0
    corrected_errors: int = 0
    detected_uncorrectable: int = 0
    heuristic_recoveries: int = 0
    poisoned_reads: int = 0

    def __post_init__(self) -> None:
        _LIVE_STATS.add(self)

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "writes": self.writes,
            "reads": self.reads,
            "clean_reads": self.clean_reads,
            "corrected_errors": self.corrected_errors,
            "detected_uncorrectable": self.detected_uncorrectable,
            "heuristic_recoveries": self.heuristic_recoveries,
            "poisoned_reads": self.poisoned_reads,
        }


#: Live MemoryStats instances, summed into ``memory.*`` gauges by the
#: snapshot-time collector below.
_LIVE_STATS: "weakref.WeakSet[MemoryStats]" = weakref.WeakSet()


def _collect_memory_stats() -> None:
    registry = obs_metrics.get_registry()
    totals: dict[str, int] = {}
    for stats in list(_LIVE_STATS):
        for name, value in stats.as_dict().items():
            totals[name] = totals.get(name, 0) + value
    for name, value in totals.items():
        registry.gauge(
            f"memory.{name}",
            help="sum over all live EccMemory instances",
        ).set(value)


obs_metrics.add_collector(_collect_memory_stats)


@dataclass(frozen=True)
class MemoryReadResult:
    """Outcome of one ECC-protected read.

    Attributes
    ----------
    word:
        The k-bit message delivered to the consumer.
    status:
        The hardware decode status (OK / CORRECTED / DUE).
    poisoned:
        True when the word was delivered under the poison policy and
        must not be architecturally consumed.
    recovery:
        The SWD-ECC trace when heuristic recovery produced the word.
    """

    word: int
    status: DecodeStatus
    poisoned: bool = False
    recovery: RecoveryResult | None = None


class EccMemory:
    """Sparse ECC-protected word memory.

    Parameters
    ----------
    code:
        The ECC code (message width = memory word width).
    policy:
        DUE-handling policy; defaults to
        :class:`~repro.memory.policy.CrashPolicy` (the conventional
        system of Fig. 3).
    """

    def __init__(self, code: LinearBlockCode, policy: DuePolicy | None = None) -> None:
        from repro.memory.policy import CrashPolicy

        self._code = code
        self._policy = policy if policy is not None else CrashPolicy()
        self._store: dict[int, int] = {}
        self._stats = MemoryStats()

    @property
    def code(self) -> LinearBlockCode:
        """The protecting ECC code."""
        return self._code

    @property
    def policy(self) -> DuePolicy:
        """The configured DUE-handling policy."""
        return self._policy

    def set_policy(self, policy: DuePolicy) -> None:
        """Replace the DUE-handling policy.

        Needed when the policy's context provider reads from this very
        memory (provider wants the memory, policy wants the provider,
        memory wants the policy): construct the memory with a default
        policy, then install the real one.
        """
        self._policy = policy

    @property
    def stats(self) -> MemoryStats:
        """Event counters (live object, not a copy)."""
        return self._stats

    def addresses(self) -> Iterable[int]:
        """All currently mapped word addresses."""
        return self._store.keys()

    def _check_address(self, address: int) -> None:
        if address < 0 or address % 4:
            raise MemoryFaultError(
                f"address 0x{address:x} is not a valid word address"
            )

    def write(self, address: int, word: int) -> None:
        """Encode and store a k-bit word."""
        self._check_address(address)
        if word < 0 or word > bit_mask(self._code.k):
            raise MemoryFaultError(
                f"word 0x{word:x} does not fit in {self._code.k} bits"
            )
        self._store[address] = self._code.encode(word)
        self._stats.writes += 1

    def load_image(self, words: Iterable[int], base_address: int) -> None:
        """Bulk-write a program image starting at *base_address*."""
        for index, word in enumerate(words):
            self.write(base_address + 4 * index, word)

    def read(self, address: int) -> MemoryReadResult:
        """Read with ECC decode; DUEs are routed through the policy."""
        self._check_address(address)
        try:
            stored = self._store[address]
        except KeyError:
            raise MemoryFaultError(
                f"read from unmapped address 0x{address:x}"
            ) from None
        self._stats.reads += 1
        result = self._code.decode(stored)
        if result.status is DecodeStatus.OK:
            self._stats.clean_reads += 1
            assert result.message is not None
            return MemoryReadResult(word=result.message, status=result.status)
        if result.status is DecodeStatus.CORRECTED:
            self._stats.corrected_errors += 1
            assert result.codeword is not None and result.message is not None
            # Write back the corrected codeword (in-line scrubbing),
            # preventing the single error from later pairing into a DUE.
            self._store[address] = result.codeword
            return MemoryReadResult(word=result.message, status=result.status)
        self._stats.detected_uncorrectable += 1
        outcome = self._policy.handle(address, stored, self)
        if isinstance(outcome, PoisonedRead):
            self._stats.poisoned_reads += 1
            return MemoryReadResult(
                word=outcome.placeholder, status=result.status, poisoned=True
            )
        if outcome.recovery is not None:
            self._stats.heuristic_recoveries += 1
            # Re-encode the chosen message so subsequent reads are clean.
            self._store[address] = self._code.encode(outcome.word)
        return MemoryReadResult(
            word=outcome.word, status=result.status, recovery=outcome.recovery
        )

    # ------------------------------------------------------------------
    # Fault injection hooks (used by repro.memory.faults)
    # ------------------------------------------------------------------

    def raw_codeword(self, address: int) -> int:
        """The stored n-bit codeword (possibly corrupted), no decode."""
        self._check_address(address)
        try:
            return self._store[address]
        except KeyError:
            raise MemoryFaultError(
                f"no codeword stored at 0x{address:x}"
            ) from None

    def corrupt(self, address: int, pattern: ErrorPattern) -> None:
        """XOR an error pattern into the stored codeword at *address*."""
        if pattern.width != self._code.n:
            raise MemoryFaultError(
                f"error pattern width {pattern.width} != codeword length "
                f"{self._code.n}"
            )
        self._store[address] = pattern.apply(self.raw_codeword(address))
