"""Scrubbing and page retirement: the opportunistic baselines of Sec. II-B.

These reliability-management techniques "can only speculate on the
occurrence of future DUEs, not recover from existing ones" — the
contrast the paper draws with SWD-ECC.  They are implemented here so
the extension benchmarks can quantify that complementarity: scrubbing
reduces how often single errors *accumulate into* DUEs, while SWD-ECC
handles the DUEs that still happen.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.ecc.code import DecodeStatus
from repro.errors import MemoryFaultError
from repro.memory.model import EccMemory
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

_log = obs_logging.get_logger("memory.scrub")

__all__ = ["ScrubReport", "Scrubber", "PageRetirement"]


@dataclass(frozen=True)
class ScrubReport:
    """Result of one scrub pass over a memory."""

    words_scanned: int
    errors_corrected: int
    dues_found: int

    @property
    def clean(self) -> bool:
        """True when the pass found nothing wrong."""
        return self.errors_corrected == 0 and self.dues_found == 0


class Scrubber:
    """Demand scrubber: walks memory, rewriting correctable words.

    A scrub pass decodes every stored codeword *without* invoking the
    DUE policy: hardware scrubbers log uncorrectable locations rather
    than crash the machine.  Correctable words are rewritten clean,
    which is exactly how scrubbing prevents two independent single-bit
    faults from meeting in one word.
    """

    def __init__(self, memory: EccMemory) -> None:
        self._memory = memory
        self._due_addresses: list[int] = []
        registry = obs_metrics.get_registry()
        self._m_passes = registry.counter("scrub.passes")
        self._m_corrected = registry.counter("scrub.errors_corrected")
        self._m_dues = registry.counter("scrub.dues_found")

    @property
    def due_addresses(self) -> list[int]:
        """Addresses flagged uncorrectable by past passes."""
        return list(self._due_addresses)

    def scrub(self) -> ScrubReport:
        """Run one full pass; return what it found and fixed."""
        code = self._memory.code
        corrected = 0
        dues = 0
        scanned = 0
        with span("scrub.pass"):
            for address in sorted(self._memory.addresses()):
                scanned += 1
                result = code.decode(self._memory.raw_codeword(address))
                if result.status is DecodeStatus.CORRECTED:
                    assert result.message is not None
                    self._memory.write(address, result.message)
                    corrected += 1
                elif result.status is DecodeStatus.DUE:
                    dues += 1
                    if address not in self._due_addresses:
                        self._due_addresses.append(address)
        self._m_passes.inc()
        self._m_corrected.inc(corrected)
        self._m_dues.inc(dues)
        if dues:
            obs_logging.emit(
                _log, logging.INFO, "scrub pass found DUEs",
                dues=dues, corrected=corrected, scanned=scanned,
            )
        return ScrubReport(
            words_scanned=scanned, errors_corrected=corrected, dues_found=dues
        )


class PageRetirement:
    """Retire pages whose words keep faulting (BadRAM-style, ref. [30]).

    Tracks corrected-error counts per page; when a page crosses the
    threshold it is retired and its addresses reported so the OS layer
    can remap them.  Retirement is advisory in this model — the memory
    keeps serving the page — because what the experiments need is the
    *decision stream*, not an MMU.
    """

    def __init__(self, page_bytes: int = 4096, threshold: int = 3) -> None:
        if page_bytes < 4 or page_bytes % 4:
            raise MemoryFaultError(
                f"page size {page_bytes} is not a multiple of the word size"
            )
        if threshold < 1:
            raise MemoryFaultError(f"threshold must be >= 1, got {threshold}")
        self._page_bytes = page_bytes
        self._threshold = threshold
        self._error_counts: dict[int, int] = {}
        self._retired: set[int] = set()

    def _page_of(self, address: int) -> int:
        return address // self._page_bytes

    @property
    def retired_pages(self) -> set[int]:
        """Page numbers that crossed the threshold."""
        return set(self._retired)

    def is_retired(self, address: int) -> bool:
        """True when *address* lies in a retired page."""
        return self._page_of(address) in self._retired

    def record_error(self, address: int) -> bool:
        """Record a corrected error at *address*; True if this retires
        the page (idempotent once retired)."""
        page = self._page_of(address)
        if page in self._retired:
            return False
        count = self._error_counts.get(page, 0) + 1
        self._error_counts[page] = count
        if count >= self._threshold:
            self._retired.add(page)
            return True
        return False
