"""Fault injection into ECC memory: BSC sampling and targeted flips.

The evaluation's fault model is the binary symmetric channel
conditioned on a double-bit error (Sec. IV-A): every C(n, 2) position
pair is equally likely.  :class:`FaultInjector` provides that, plus raw
BSC sampling for end-to-end soak tests and targeted injection for
deterministic unit tests.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.ecc.channel import (
    AdjacentBurstChannel,
    BinarySymmetricChannel,
    ErrorPattern,
    pattern_from_positions,
)
from repro.errors import InjectionError
from repro.memory.model import EccMemory

__all__ = ["FaultInjector"]


class FaultInjector:
    """Injects bit flips into the stored codewords of a memory.

    Parameters
    ----------
    memory:
        The target memory.
    rng:
        Seeded RNG for reproducible campaigns.
    """

    def __init__(self, memory: EccMemory, rng: random.Random | None = None) -> None:
        self._memory = memory
        self._rng = rng if rng is not None else random.Random()
        self._injected: list[tuple[int, ErrorPattern]] = []

    @property
    def injection_log(self) -> list[tuple[int, ErrorPattern]]:
        """(address, pattern) pairs injected so far, in order."""
        return list(self._injected)

    def _mapped_addresses(self) -> list[int]:
        addresses = sorted(self._memory.addresses())
        if not addresses:
            raise InjectionError(
                "cannot inject faults into an empty memory: no addresses "
                "are mapped (load an image or write words first)"
            )
        return addresses

    def inject_at(self, address: int, positions: Sequence[int]) -> ErrorPattern:
        """Flip the given codeword bit positions at *address*."""
        pattern = pattern_from_positions(tuple(positions), self._memory.code.n)
        self._memory.corrupt(address, pattern)
        self._injected.append((address, pattern))
        return pattern

    def inject_double_bit(self, address: int | None = None) -> tuple[int, ErrorPattern]:
        """Inject a uniformly random 2-bit error (the paper's DUE model).

        Picks a random mapped address when *address* is ``None``.
        """
        if address is None:
            address = self._rng.choice(self._mapped_addresses())
        n = self._memory.code.n
        positions = tuple(sorted(self._rng.sample(range(n), 2)))
        pattern = self.inject_at(address, positions)
        return address, pattern

    def inject_adjacent_burst(
        self,
        address: int | None = None,
        burst_lengths: dict[int, float] | None = None,
    ) -> tuple[int, ErrorPattern]:
        """Inject a contiguous multi-bit burst (adjacent MBU model).

        Picks a random mapped address when *address* is ``None``; the
        burst length is drawn from *burst_lengths* (default: the
        :class:`AdjacentBurstChannel` distribution, mostly adjacent
        doubles) and the run placed at a uniformly random start.
        """
        if address is None:
            address = self._rng.choice(self._mapped_addresses())
        channel = AdjacentBurstChannel(
            self._memory.code.n, burst_lengths=burst_lengths, rng=self._rng
        )
        pattern = channel.sample_error()
        self._memory.corrupt(address, pattern)
        self._injected.append((address, pattern))
        return address, pattern

    def inject_bsc(
        self, flip_probability: float, addresses: Sequence[int] | None = None
    ) -> int:
        """Pass every stored codeword through a BSC; return flips made.

        Models a burst of radiation/retention faults across the whole
        array rather than a single localised event.
        """
        channel = BinarySymmetricChannel(
            flip_probability, self._memory.code.n, rng=self._rng
        )
        targets = list(addresses) if addresses is not None else self._mapped_addresses()
        total_flips = 0
        for address in targets:
            error = channel.sample_error()
            if error.weight:
                self._memory.corrupt(address, error)
                self._injected.append((address, error))
                total_flips += error.weight
        return total_flips
