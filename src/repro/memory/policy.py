"""DUE-handling policies: the system choices of Figs. 1 and 3.

When ECC hardware reports a DUE, the system chooses among:

- :class:`CrashPolicy` — kernel panic (conventional systems);
- :class:`PoisonPolicy` — deliver a poisoned word so the consumer can
  contain the error (high-end mainframes);
- :class:`HeuristicPolicy` — run the full Fig. 3 ladder ending in
  SWD-ECC heuristic recovery.

Policies receive the raw received codeword and the owning memory, and
return a :class:`DueOutcome` (or raise, for the crash policy).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.recovery import RecoveryAction, RecoveryPipeline
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import RecoveryResult
from repro.errors import UncorrectableError

if TYPE_CHECKING:
    from repro.memory.model import EccMemory

__all__ = [
    "DueOutcome",
    "PoisonedRead",
    "DuePolicy",
    "CrashPolicy",
    "PoisonPolicy",
    "HeuristicPolicy",
]


@dataclass(frozen=True)
class DueOutcome:
    """What a policy delivered for a DUE read.

    Attributes
    ----------
    word:
        The k-bit message handed to the consumer.
    recovery:
        The SWD-ECC trace when heuristic recovery chose the word.
    """

    word: int
    recovery: RecoveryResult | None = None


@dataclass(frozen=True)
class PoisonedRead(DueOutcome):
    """A poison-policy outcome: *placeholder* must not be consumed."""

    @property
    def placeholder(self) -> int:
        """The poison placeholder value (same as ``word``)."""
        return self.word


class DuePolicy(ABC):
    """Interface for DUE handling."""

    #: Name used in reports.
    name: str = "policy"

    @abstractmethod
    def handle(
        self, address: int, received: int, memory: "EccMemory"
    ) -> DueOutcome:
        """Handle a DUE; return the delivered word or raise."""


class CrashPolicy(DuePolicy):
    """Conventional behaviour: raise (kernel panic / machine check)."""

    name = "crash"

    def handle(
        self, address: int, received: int, memory: "EccMemory"
    ) -> DueOutcome:
        raise UncorrectableError(address, memory.code.syndrome(received))


class PoisonPolicy(DuePolicy):
    """Mainframe behaviour: deliver a marked poison word.

    The consumer is expected to propagate the poison and contain the
    error (e.g. kill only the affected process).
    """

    name = "poison"

    def __init__(self, placeholder: int = 0xDEAD_BEEF) -> None:
        self._placeholder = placeholder

    def handle(
        self, address: int, received: int, memory: "EccMemory"
    ) -> DueOutcome:
        return PoisonedRead(word=self._placeholder & ((1 << memory.code.k) - 1))


class HeuristicPolicy(DuePolicy):
    """SWD-ECC behaviour: run the Fig. 3 recovery ladder.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.core.recovery.RecoveryPipeline` (page-fault
        reload, rollback, then heuristic recovery).
    context_provider:
        Callback mapping a faulting address to the
        :class:`~repro.core.sideinfo.RecoveryContext` available there
        (e.g. instruction context inside .text, data context
        elsewhere).  Defaults to an empty context.
    """

    name = "heuristic"

    def __init__(
        self,
        pipeline: RecoveryPipeline,
        context_provider: Callable[[int], RecoveryContext] | None = None,
    ) -> None:
        self._pipeline = pipeline
        self._context_provider = context_provider

    def handle(
        self, address: int, received: int, memory: "EccMemory"
    ) -> DueOutcome:
        context = (
            self._context_provider(address)
            if self._context_provider is not None
            else None
        )
        outcome = self._pipeline.handle_due(address, received, context)
        if outcome.action is RecoveryAction.CRASH:
            raise UncorrectableError(address, memory.code.syndrome(received))
        if outcome.action is RecoveryAction.ROLLBACK:
            # After a rollback the read is re-satisfied from the
            # restored state; model that as re-reading the clean word.
            restored = memory.code.decode(memory.raw_codeword(address))
            if restored.message is None:
                raise UncorrectableError(
                    address, memory.code.syndrome(received)
                )
            return DueOutcome(word=restored.message)
        assert outcome.word is not None
        return DueOutcome(word=outcome.word, recovery=outcome.heuristic)
