"""A hybrid compressed/SECDED memory: E7's composition as a system.

Sec. III-C's compression alternative and SWD-ECC compose: store each
word under the strongest protection its content affords, *within the
same 39-bit DRAM footprint*:

- words whose FPC image fits 26 bits are stored under a (39, 26)
  DECTED code (d = 6): every double-bit error is deterministically
  corrected, no heuristics involved;
- dense words keep the (39, 32) SECDED code, and their DUEs flow
  through the configured policy (crash / poison / SWD-ECC heuristic
  recovery) exactly like :class:`~repro.memory.model.EccMemory`.

The per-word format tag lives in controller metadata (as real
compressed-memory proposals keep per-line tags); the model tracks it in
a side table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import bit_mask
from repro.ecc.bch import BCHCode
from repro.ecc.channel import ErrorPattern
from repro.ecc.code import DecodeStatus, LinearBlockCode
from repro.errors import MemoryFaultError
from repro.memory.compression import (
    CompressedWord,
    compress_word,
    decompress_word,
    fits_stronger_code,
)
from repro.memory.model import EccMemory, MemoryReadResult
from repro.memory.policy import DuePolicy

__all__ = ["HybridEccMemory", "HybridStats", "dected_39_26"]


def dected_39_26() -> BCHCode:
    """The in-footprint upgrade code: (39, 26) shortened DECTED, d = 6."""
    return BCHCode(m=6, t=2, k=26, extended=True)


@dataclass
class HybridStats:
    """Counters specific to the hybrid format decisions."""

    compressed_writes: int = 0
    dense_writes: int = 0
    dected_corrections: int = 0

    @property
    def compressed_fraction(self) -> float:
        """Share of writes that earned the DECTED upgrade."""
        total = self.compressed_writes + self.dense_writes
        return self.compressed_writes / total if total else 0.0


class HybridEccMemory(EccMemory):
    """ECC memory that upgrades compressible words to DECTED.

    The public interface is identical to :class:`EccMemory`: 32-bit
    writes, 32-bit reads, DUEs through the policy.  Internally each
    word picks its format at write time.
    """

    def __init__(
        self,
        code: LinearBlockCode | None = None,
        policy: DuePolicy | None = None,
    ) -> None:
        from repro.ecc.matrices import canonical_secded_39_32

        secded = code if code is not None else canonical_secded_39_32()
        super().__init__(secded, policy)
        self._dected = dected_39_26()
        if self._dected.n != secded.n:
            raise MemoryFaultError(
                f"footprint mismatch: SECDED n={secded.n}, "
                f"DECTED n={self._dected.n}"
            )
        self._formats: dict[int, str] = {}  # address -> "secded" | "dected"
        self._hybrid_stats = HybridStats()

    @property
    def hybrid_stats(self) -> HybridStats:
        """Format-decision counters."""
        return self._hybrid_stats

    def format_of(self, address: int) -> str:
        """The storage format of the word at *address*."""
        self._check_address(address)
        try:
            return self._formats[address]
        except KeyError:
            raise MemoryFaultError(
                f"no word stored at 0x{address:x}"
            ) from None

    @staticmethod
    def _pack_payload(compressed: CompressedWord) -> int:
        """26-bit payload: 3-bit prefix, then data bits, zero padded."""
        return (compressed.pattern.prefix << 23) | (
            compressed.payload << (23 - compressed.pattern.data_bits)
        )

    @staticmethod
    def _unpack_payload(payload: int) -> int:
        from repro.memory.compression import _BY_PREFIX  # noqa: PLC0415

        prefix = payload >> 23
        pattern = _BY_PREFIX[prefix]
        data = (payload >> (23 - pattern.data_bits)) & bit_mask(pattern.data_bits)
        return decompress_word(CompressedWord(pattern, data))

    def write(self, address: int, word: int) -> None:
        self._check_address(address)
        if word < 0 or word > bit_mask(32):
            raise MemoryFaultError(f"word 0x{word:x} does not fit in 32 bits")
        if fits_stronger_code(word):
            payload = self._pack_payload(compress_word(word))
            self._store[address] = self._dected.encode(payload)
            self._formats[address] = "dected"
            self._hybrid_stats.compressed_writes += 1
        else:
            self._store[address] = self.code.encode(word)
            self._formats[address] = "secded"
            self._hybrid_stats.dense_writes += 1
        self.stats.writes += 1

    def read(self, address: int) -> MemoryReadResult:
        self._check_address(address)
        if self._formats.get(address) != "dected":
            return super().read(address)
        try:
            stored = self._store[address]
        except KeyError:
            raise MemoryFaultError(
                f"read from unmapped address 0x{address:x}"
            ) from None
        self.stats.reads += 1
        result = self._dected.decode(stored)
        if result.status is DecodeStatus.DUE:
            # >= 3-bit error on a compressed word: beyond even DECTED.
            self.stats.detected_uncorrectable += 1
            outcome = self.policy.handle(address, stored, self)
            return MemoryReadResult(
                word=outcome.word, status=result.status,
                recovery=outcome.recovery,
            )
        assert result.codeword is not None and result.message is not None
        if result.status is DecodeStatus.CORRECTED:
            self.stats.corrected_errors += 1
            if len(result.corrected_positions) == 2:
                self._hybrid_stats.dected_corrections += 1
            self._store[address] = result.codeword  # in-line scrub
        else:
            self.stats.clean_reads += 1
        return MemoryReadResult(
            word=self._unpack_payload(result.message), status=result.status
        )

    def corrupt(self, address: int, pattern: ErrorPattern) -> None:
        # Same footprint for both formats, so the base check applies.
        super().corrupt(address, pattern)
