"""Frequent-pattern compression: the Sec. III-C alternative to SWD-ECC.

The paper notes that instead of heuristically recovering DUEs, one
could losslessly compress message contents (its refs. [35]-[37]) so
that spare bits fund *stronger* channel coding, and leaves the
trade-off to future work.  This module makes it concrete:

- :func:`compress_word` implements Frequent Pattern Compression
  (Alameldeen & Wood, the paper's ref. [36]) at word granularity: a
  3-bit prefix selects one of eight patterns (zero, sign-extended
  4/8/16-bit, halfword-padded, two sign-extended halfwords, repeated
  byte, uncompressed);
- a word whose FPC image fits in **26 bits** can be stored, inside the
  same 39-bit DRAM footprint as the (39, 32) SECDED codeword, under a
  (39, 26) *DECTED* code (13 check bits) — turning every 2-bit DUE on
  that word into a plain corrected error.

The benchmark ``bench_ext_compression.py`` measures what fraction of
realistic data and instruction words get that free upgrade, i.e. how
much of the DUE problem compression alone removes, and therefore how
much remains for SWD-ECC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryFaultError

__all__ = [
    "FpcClass",
    "CompressedWord",
    "compress_word",
    "decompress_word",
    "compressed_bits",
    "fits_stronger_code",
    "DECTED_PAYLOAD_BITS",
]

# A (39, 26) shortened DECTED code (13 check bits: shortened (44,31)
# DEC BCH + overall parity) fits a 26-bit payload in the SECDED
# footprint.  3 prefix bits + 23 payload bits <= 26 --> FPC classes
# with <= 23 data bits qualify.
DECTED_PAYLOAD_BITS = 26


@dataclass(frozen=True)
class FpcClass:
    """One FPC pattern class."""

    prefix: int
    name: str
    data_bits: int


# Prefix encoding follows the FPC paper's word-level classes.
_CLASSES: tuple[FpcClass, ...] = (
    FpcClass(0b000, "zero", 0),
    FpcClass(0b001, "sign-extended-4", 4),
    FpcClass(0b010, "sign-extended-8", 8),
    FpcClass(0b011, "sign-extended-16", 16),
    FpcClass(0b100, "halfword-low-zero", 16),
    FpcClass(0b101, "two-sign-extended-halves", 16),
    FpcClass(0b110, "repeated-byte", 8),
    FpcClass(0b111, "uncompressed", 32),
)
_BY_PREFIX = {cls.prefix: cls for cls in _CLASSES}


@dataclass(frozen=True)
class CompressedWord:
    """A word after FPC classification.

    Attributes
    ----------
    pattern:
        The matched FPC class.
    payload:
        The class's data bits, packed low.
    """

    pattern: FpcClass
    payload: int

    @property
    def total_bits(self) -> int:
        """Stored size: 3 prefix bits + the class's data bits."""
        return 3 + self.pattern.data_bits


def _sign_extends(value: int, bits: int) -> bool:
    """True when the 32-bit value is the sign extension of its low *bits*."""
    low = value & ((1 << bits) - 1)
    sign = (low >> (bits - 1)) & 1
    extended = low - (1 << bits) if sign else low
    return (extended & 0xFFFF_FFFF) == value


def compress_word(word: int) -> CompressedWord:
    """Classify *word* into its smallest FPC class."""
    if not 0 <= word <= 0xFFFF_FFFF:
        raise MemoryFaultError(f"0x{word:x} is not a 32-bit word")
    if word == 0:
        return CompressedWord(_BY_PREFIX[0b000], 0)
    if _sign_extends(word, 4):
        return CompressedWord(_BY_PREFIX[0b001], word & 0xF)
    if _sign_extends(word, 8):
        return CompressedWord(_BY_PREFIX[0b010], word & 0xFF)
    if _sign_extends(word, 16):
        return CompressedWord(_BY_PREFIX[0b011], word & 0xFFFF)
    if word & 0xFFFF == 0:
        return CompressedWord(_BY_PREFIX[0b100], word >> 16)
    high = word >> 16
    low = word & 0xFFFF
    if _sign_extends_half(high) and _sign_extends_half(low):
        return CompressedWord(
            _BY_PREFIX[0b101], ((high & 0xFF) << 8) | (low & 0xFF)
        )
    byte = word & 0xFF
    if word == byte * 0x0101_0101:
        return CompressedWord(_BY_PREFIX[0b110], byte)
    return CompressedWord(_BY_PREFIX[0b111], word)


def _sign_extends_half(half: int) -> bool:
    """True when a 16-bit value sign-extends from its low 8 bits."""
    low = half & 0xFF
    sign = (low >> 7) & 1
    extended = (low - 0x100) if sign else low
    return (extended & 0xFFFF) == half


def decompress_word(compressed: CompressedWord) -> int:
    """Invert :func:`compress_word` (lossless for every class)."""
    prefix = compressed.pattern.prefix
    payload = compressed.payload
    if prefix == 0b000:
        return 0
    if prefix in (0b001, 0b010, 0b011):
        bits = compressed.pattern.data_bits
        sign = (payload >> (bits - 1)) & 1
        value = payload - (1 << bits) if sign else payload
        return value & 0xFFFF_FFFF
    if prefix == 0b100:
        return payload << 16
    if prefix == 0b101:
        high = (payload >> 8) & 0xFF
        low = payload & 0xFF
        high_half = (high - 0x100 if high & 0x80 else high) & 0xFFFF
        low_half = (low - 0x100 if low & 0x80 else low) & 0xFFFF
        return (high_half << 16) | low_half
    if prefix == 0b110:
        return payload * 0x0101_0101
    return payload


def compressed_bits(word: int) -> int:
    """Stored size of *word* under FPC (prefix + data bits)."""
    return compress_word(word).total_bits


def fits_stronger_code(word: int, budget_bits: int = DECTED_PAYLOAD_BITS) -> bool:
    """Can *word* be stored under the in-footprint DECTED upgrade?

    True when the FPC image fits the (39, 26) DECTED payload — such
    words never produce 2-bit DUEs at all (DECTED corrects them).
    """
    return compressed_bits(word) <= budget_bits
