"""Backing store for clean pages (the page-fault rung of Fig. 3).

A DUE in a *clean* page — one whose contents still match the executable
or a file on disk — needs no heuristics: the OS can discard the frame
and refetch it.  :class:`CleanPageStore` models that by retaining the
pristine words of read-only regions (e.g. ``.text`` loaded from an ELF)
and satisfying the :class:`~repro.core.recovery.PageSource` protocol.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MemoryFaultError

__all__ = ["CleanPageStore"]


class CleanPageStore:
    """Pristine copies of file-backed words, with dirty tracking.

    Parameters
    ----------
    page_bytes:
        Page granularity for dirtiness; writes dirty the whole page,
        as real virtual memory does.
    """

    def __init__(self, page_bytes: int = 4096) -> None:
        if page_bytes < 4 or page_bytes % 4:
            raise MemoryFaultError(
                f"page size {page_bytes} is not a multiple of the word size"
            )
        self._page_bytes = page_bytes
        self._pristine: dict[int, int] = {}
        self._dirty_pages: set[int] = set()

    def _page_of(self, address: int) -> int:
        return address // self._page_bytes

    def register_region(self, base_address: int, words: Iterable[int]) -> None:
        """Record the pristine words of a file-backed region."""
        if base_address % 4:
            raise MemoryFaultError(
                f"base address 0x{base_address:x} is not word aligned"
            )
        for index, word in enumerate(words):
            self._pristine[base_address + 4 * index] = word

    def mark_dirty(self, address: int) -> None:
        """A store hit this page: its frames no longer match the file."""
        self._dirty_pages.add(self._page_of(address))

    def is_dirty(self, address: int) -> bool:
        """True when *address* lies in a dirtied page."""
        return self._page_of(address) in self._dirty_pages

    def clean_copy(self, address: int) -> int | None:
        """PageSource protocol: the pristine word, or ``None``.

        Returns ``None`` for unmapped addresses and for pages dirtied
        since load — exactly the cases where Fig. 3 falls through to
        the next recovery rung.
        """
        if self.is_dirty(address):
            return None
        return self._pristine.get(address)
