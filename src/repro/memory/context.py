"""Deriving recovery contexts from live memory state.

Sec. III-B's side information "arises through the cooperation of
hardware and software": the OS knows which addresses hold code, the
memory itself holds the cache-line neighbours of a faulting word.
:class:`MemoryContextProvider` packages that cooperation for
:class:`~repro.memory.policy.HeuristicPolicy` — given a DUE address it
builds the right :class:`~repro.core.sideinfo.RecoveryContext`:

- inside a registered text region: instruction context with the
  program's frequency table;
- elsewhere: data context whose neighbourhood is the *readable* words
  of the surrounding cache line (the DUE word itself, and any other
  corrupted neighbours, are excluded — recovery can only lean on
  known-good data).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sideinfo import RecoveryContext
from repro.ecc.code import DecodeStatus
from repro.errors import MemoryFaultError
from repro.memory.model import EccMemory
from repro.program.stats import FrequencyTable

__all__ = ["TextRegion", "MemoryContextProvider"]


@dataclass(frozen=True)
class TextRegion:
    """A code region and the statistics that describe it."""

    base_address: int
    size_bytes: int
    frequency_table: FrequencyTable | None = None

    def contains(self, address: int) -> bool:
        """True when *address* lies inside the region."""
        return self.base_address <= address < self.base_address + self.size_bytes


class MemoryContextProvider:
    """Builds :class:`RecoveryContext` objects from memory state.

    Parameters
    ----------
    memory:
        The memory the DUEs occur in (neighbourhoods are read from it).
    line_bytes:
        Cache-line size used for data neighbourhoods.
    pointer_range:
        Optional application address range for pointer filtering.
    value_bound:
        Optional global bound for small-integer filtering.
    """

    def __init__(
        self,
        memory: EccMemory,
        line_bytes: int = 64,
        pointer_range: tuple[int, int] | None = None,
        value_bound: int | None = None,
    ) -> None:
        if line_bytes < 8 or line_bytes % 4:
            raise MemoryFaultError(
                f"cache line size {line_bytes} is not a multiple of 2 words"
            )
        self._memory = memory
        self._line_bytes = line_bytes
        self._pointer_range = pointer_range
        self._value_bound = value_bound
        self._text_regions: list[TextRegion] = []

    def register_text_region(self, region: TextRegion) -> None:
        """Declare an address range as code (with optional statistics)."""
        self._text_regions.append(region)

    def _neighborhood(self, address: int) -> tuple[int, ...]:
        """Known-good words of the cache line containing *address*."""
        line_base = address - (address % self._line_bytes)
        neighbours = []
        code = self._memory.code
        for offset in range(0, self._line_bytes, 4):
            neighbour_address = line_base + offset
            if neighbour_address == address:
                continue
            try:
                stored = self._memory.raw_codeword(neighbour_address)
            except MemoryFaultError:
                continue
            # Decode WITHOUT triggering the DUE policy: a corrupted
            # neighbour is simply not usable side information.
            result = code.decode(stored)
            if result.status is not DecodeStatus.DUE:
                assert result.message is not None
                neighbours.append(result.message)
        return tuple(neighbours)

    def __call__(self, address: int) -> RecoveryContext:
        """The context for a DUE at *address* (HeuristicPolicy hook)."""
        for region in self._text_regions:
            if region.contains(address):
                return RecoveryContext.for_instructions(
                    region.frequency_table, address=address
                )
        return RecoveryContext.for_data(
            neighborhood=self._neighborhood(address),
            value_bound=self._value_bound,
            pointer_range=self._pointer_range,
            address=address,
        )
