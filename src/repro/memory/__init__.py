"""ECC memory model, fault injection, policies, and system baselines."""

from repro.memory.backing import CleanPageStore
from repro.memory.checkpoint import CheckpointStore, memory_checkpointer
from repro.memory.compression import (
    CompressedWord,
    FpcClass,
    compress_word,
    compressed_bits,
    decompress_word,
    fits_stronger_code,
)
from repro.memory.context import MemoryContextProvider, TextRegion
from repro.memory.faults import FaultInjector
from repro.memory.hybrid import HybridEccMemory, HybridStats, dected_39_26
from repro.memory.model import EccMemory, MemoryReadResult, MemoryStats
from repro.memory.policy import (
    CrashPolicy,
    DueOutcome,
    DuePolicy,
    HeuristicPolicy,
    PoisonPolicy,
    PoisonedRead,
)
from repro.memory.scrub import PageRetirement, ScrubReport, Scrubber

__all__ = [
    "CleanPageStore",
    "CheckpointStore",
    "memory_checkpointer",
    "CompressedWord",
    "FpcClass",
    "compress_word",
    "compressed_bits",
    "decompress_word",
    "fits_stronger_code",
    "MemoryContextProvider",
    "TextRegion",
    "FaultInjector",
    "HybridEccMemory",
    "HybridStats",
    "dected_39_26",
    "EccMemory",
    "MemoryReadResult",
    "MemoryStats",
    "CrashPolicy",
    "DueOutcome",
    "DuePolicy",
    "HeuristicPolicy",
    "PoisonPolicy",
    "PoisonedRead",
    "PageRetirement",
    "ScrubReport",
    "Scrubber",
]
