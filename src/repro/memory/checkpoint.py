"""Checkpoint/rollback support (Sec. II-B's system-level baseline).

:class:`CheckpointStore` snapshots opaque state via caller-supplied
capture/restore callables and satisfies the
:class:`~repro.core.recovery.CheckpointSource` protocol, so it plugs
straight into the Fig. 3 recovery ladder.  For an
:class:`~repro.memory.model.EccMemory`, :func:`memory_checkpointer`
builds a store that snapshots the raw codeword array — including any
latent (not yet read) errors, which is faithful: checkpointing DRAM
contents copies whatever charge is in the cells.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Generic, TypeVar

from repro.errors import MemoryFaultError
from repro.memory.model import EccMemory

__all__ = ["CheckpointStore", "memory_checkpointer"]

StateT = TypeVar("StateT")


class CheckpointStore(Generic[StateT]):
    """Bounded stack of state snapshots with rollback.

    Parameters
    ----------
    capture:
        Returns a deep snapshot of the protected state.
    restore:
        Reinstates a snapshot.
    capacity:
        Maximum retained checkpoints; the oldest is discarded first
        (checkpoint storage is a real cost, Sec. II-B).
    """

    def __init__(
        self,
        capture: Callable[[], StateT],
        restore: Callable[[StateT], None],
        capacity: int = 4,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capture = capture
        self._restore = restore
        self._capacity = capacity
        self._snapshots: list[StateT] = []
        self._rollbacks = 0

    @property
    def depth(self) -> int:
        """Number of retained checkpoints."""
        return len(self._snapshots)

    @property
    def rollback_count(self) -> int:
        """How many rollbacks have been performed."""
        return self._rollbacks

    def checkpoint(self) -> None:
        """Take a snapshot, evicting the oldest beyond capacity."""
        self._snapshots.append(self._capture())
        if len(self._snapshots) > self._capacity:
            self._snapshots.pop(0)

    def has_checkpoint(self) -> bool:
        """CheckpointSource protocol: is rollback possible?"""
        return bool(self._snapshots)

    def rollback(self) -> None:
        """CheckpointSource protocol: restore the latest snapshot.

        The snapshot is consumed: repeated DUEs at the same state fall
        through to the next recovery rung instead of looping.
        """
        if not self._snapshots:
            raise MemoryFaultError("rollback requested with no checkpoint")
        self._restore(self._snapshots.pop())
        self._rollbacks += 1


def memory_checkpointer(
    memory: EccMemory, capacity: int = 4
) -> CheckpointStore[dict[int, int]]:
    """A checkpoint store over a memory's raw codeword contents."""

    def capture() -> dict[int, int]:
        return {
            address: memory.raw_codeword(address)
            for address in memory.addresses()
        }

    def restore(snapshot: dict[int, int]) -> None:
        # Reinstate via the private store to preserve exact codewords
        # (write() would re-encode and lose injected-but-unread faults).
        memory._store.clear()  # noqa: SLF001 - deliberate model coupling
        memory._store.update(snapshot)

    return CheckpointStore(capture=capture, restore=restore, capacity=capacity)
