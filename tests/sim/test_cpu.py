"""Tests for the functional MIPS CPU simulator."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.mem_iface import FlatMemory
from repro.sim.symptoms import Symptom

BASE = 0x400000


def run_asm(source: str, max_steps: int = 100_000, extra_words=None):
    program = assemble(source, base_address=BASE)
    memory = FlatMemory()
    memory.load_image(program.words, BASE)
    if extra_words:
        for address, value in extra_words.items():
            memory.write_word(address, value)
    cpu = Cpu(
        memory,
        entry_pc=BASE,
        text_range=(BASE, BASE + 4 * len(program.words)),
    )
    return cpu.run(max_steps=max_steps)


def exit_with(value_setup: str) -> str:
    return f"""
    {value_setup}
        move $a0, $v1
        li $v0, 17
        syscall
    """


class TestArithmeticOps:
    @pytest.mark.parametrize(
        "setup,expected",
        [
            ("li $t0, 7\nli $t1, 5\naddu $v1, $t0, $t1", 12),
            ("li $t0, 7\nli $t1, 5\nsubu $v1, $t0, $t1", 2),
            ("li $t0, 12\nli $t1, 10\nand $v1, $t0, $t1", 8),
            ("li $t0, 12\nli $t1, 10\nor $v1, $t0, $t1", 14),
            ("li $t0, 12\nli $t1, 10\nxor $v1, $t0, $t1", 6),
            ("li $t0, 3\nsll $v1, $t0, 4", 48),
            ("li $t0, 64\nsrl $v1, $t0, 3", 8),
            ("li $t0, -8\nsra $v1, $t0, 2", -2),
            ("li $t0, 3\nli $t1, 4\nsllv $v1, $t0, $t1", 48),
            ("li $t0, 2\nli $t1, 9\nslt $v1, $t0, $t1", 1),
            ("li $t0, -1\nli $t1, 1\nsltu $v1, $t0, $t1", 0),
            ("li $t0, -1\nli $t1, 1\nslt $v1, $t0, $t1", 1),
            ("li $t0, 5\nslti $v1, $t0, 6", 1),
            ("lui $v1, 0x1234\nori $v1, $v1, 0x5678", 0x12345678),
            ("li $t0, 0\nnor $v1, $t0, $t0", -1),
        ],
    )
    def test_op(self, setup, expected):
        result = run_asm(exit_with(setup))
        assert result.symptom is None
        assert result.exit_code == expected

    def test_mult_mflo_mfhi(self):
        product = 100000 * 100000
        low_signed = (product & 0xFFFFFFFF) - (
            (1 << 32) if (product & 0x80000000) else 0
        )
        result = run_asm(exit_with(
            "li $t0, 100000\nli $t1, 100000\nmult $t0, $t1\nmflo $v1"
        ))
        assert result.exit_code == low_signed
        result_hi = run_asm(exit_with(
            "li $t0, 100000\nli $t1, 100000\nmult $t0, $t1\nmfhi $v1"
        ))
        assert result_hi.exit_code == product >> 32

    def test_div_quotient_and_remainder(self):
        quotient = run_asm(exit_with("li $t0, 17\nli $t1, 5\ndiv $t0, $t1\nmflo $v1"))
        remainder = run_asm(exit_with("li $t0, 17\nli $t1, 5\ndiv $t0, $t1\nmfhi $v1"))
        assert quotient.exit_code == 3
        assert remainder.exit_code == 2

    def test_negative_div_truncates(self):
        result = run_asm(exit_with("li $t0, -17\nli $t1, 5\ndiv $t0, $t1\nmflo $v1"))
        assert result.exit_code == -3

    def test_mthi_mtlo(self):
        result = run_asm(exit_with("li $t0, 99\nmtlo $t0\nmflo $v1"))
        assert result.exit_code == 99

    def test_movz_movn(self):
        taken = run_asm(exit_with(
            "li $t0, 5\nli $t1, 0\nli $v1, 1\nmovz $v1, $t0, $t1"
        ))
        assert taken.exit_code == 5
        not_taken = run_asm(exit_with(
            "li $t0, 5\nli $t1, 0\nli $v1, 1\nmovn $v1, $t0, $t1"
        ))
        assert not_taken.exit_code == 1

    def test_zero_register_is_immutable(self):
        result = run_asm(exit_with("li $t0, 7\naddu $zero, $t0, $t0\nmove $v1, $zero"))
        assert result.exit_code == 0


class TestTrapsAndFaults:
    def test_add_overflow_traps(self):
        result = run_asm("lui $t0, 0x7fff\nori $t0, $t0, 0xffff\nadd $t1, $t0, $t0")
        assert result.symptom is Symptom.OVERFLOW_TRAP

    def test_addu_does_not_trap(self):
        result = run_asm(exit_with(
            "lui $t0, 0x7fff\nori $t0, $t0, 0xffff\naddu $v1, $t0, $t0"
        ))
        assert result.symptom is None

    def test_division_by_zero(self):
        result = run_asm("li $t0, 5\ndiv $t0, $zero")
        assert result.symptom is Symptom.DIVISION_BY_ZERO

    def test_teq_fires(self):
        result = run_asm("li $t0, 3\nli $t1, 3\nteq $t0, $t1")
        assert result.symptom is Symptom.TRAP_INSTRUCTION

    def test_teq_does_not_fire(self):
        result = run_asm(exit_with("li $t0, 3\nli $t1, 4\nteq $t0, $t1\nli $v1, 9"))
        assert result.exit_code == 9

    def test_break_symptom(self):
        assert run_asm("break").symptom is Symptom.BREAKPOINT

    def test_illegal_instruction(self):
        assert run_asm(".word 0xfc000000").symptom is Symptom.ILLEGAL_INSTRUCTION

    def test_unsupported_coprocessor(self):
        assert run_asm("mfc0 $t0, $12").symptom is Symptom.UNSUPPORTED_INSTRUCTION

    def test_unaligned_load(self):
        result = run_asm("li $t0, 0x1001\nlw $t1, 0($t0)")
        assert result.symptom is Symptom.UNALIGNED_ACCESS

    def test_unmapped_load(self):
        result = run_asm("lui $t0, 0x2000\nlw $t1, 0($t0)")
        assert result.symptom is Symptom.UNMAPPED_MEMORY

    def test_runaway_pc(self):
        # Fall off the end of the text segment.
        assert run_asm("nop").symptom is Symptom.OUT_OF_RANGE_PC

    def test_watchdog(self):
        result = run_asm("spin: b spin\nnop", max_steps=100)
        assert result.symptom is Symptom.WATCHDOG_TIMEOUT
        assert result.steps == 100

    def test_bad_syscall(self):
        assert run_asm("li $v0, 999\nsyscall").symptom is Symptom.BAD_SYSCALL


class TestMemoryOps:
    def test_word_store_load(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\nli $t1, 1234\nsw $t1, 8($t0)\nlw $v1, 8($t0)"
        ))
        assert result.exit_code == 1234

    def test_byte_granularity_big_endian(self):
        # Store 0x11223344, then lb of byte 0 must read 0x11 (MSB).
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "li $t1, 0x11223344\n"
            "sw $t1, 0($t0)\n"
            "lbu $v1, 0($t0)"
        ))
        assert result.exit_code == 0x11

    def test_lb_sign_extends(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "li $t1, 0xff000000\n"
            "sw $t1, 0($t0)\n"
            "lb $v1, 0($t0)"
        ))
        assert result.exit_code == -1

    def test_sb_to_unmapped_word_is_a_fault(self):
        # Sub-word stores read-modify-write the containing word, so a
        # byte store to never-written memory is an unmapped access.
        result = run_asm("lui $t0, 0x1000\nli $t1, 0xff\nsb $t1, 0($t0)")
        assert result.symptom is Symptom.UNMAPPED_MEMORY

    def test_sb_modifies_single_byte(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "li $t1, 0x11223344\n"
            "sw $t1, 0($t0)\n"
            "li $t2, 0xaa\n"
            "sb $t2, 1($t0)\n"
            "lw $v1, 0($t0)"
        ))
        assert result.exit_code == 0x11AA3344

    def test_halfword_store_load(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\nli $t1, 0xbeef\nsw $zero, 0($t0)\n"
            "sh $t1, 2($t0)\nlhu $v1, 2($t0)"
        ))
        assert result.exit_code == 0xBEEF

    def test_lh_sign_extends(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\nli $t1, 0x8000\nsw $zero, 0($t0)\n"
            "sh $t1, 0($t0)\nlh $v1, 0($t0)"
        ))
        assert result.exit_code == -32768

    def test_unaligned_word_via_lwl_lwr(self):
        # Classic idiom: lwl/lwr pair reads an unaligned word (BE).
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "li $t1, 0x11223344\n"
            "sw $t1, 0($t0)\n"
            "li $t1, 0x55667788\n"
            "sw $t1, 4($t0)\n"
            "lwl $v1, 1($t0)\n"
            "lwr $v1, 4($t0)"
        ))
        assert result.exit_code == 0x22334455

    def test_unaligned_word_via_swl_swr(self):
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "sw $zero, 0($t0)\n"
            "sw $zero, 4($t0)\n"
            "li $t1, 0xAABBCCDD\n"
            "swl $t1, 1($t0)\n"
            "swr $t1, 4($t0)\n"
            "lw $v1, 0($t0)"
        ))
        assert result.exit_code == 0x00AABBCC


class TestControlFlow:
    def test_delay_slot_always_executes(self):
        result = run_asm(exit_with(
            "li $t0, 1\n"
            "beq $t0, $t0, over\n"
            "li $v1, 77\n"       # delay slot
            "li $v1, 0\n"        # skipped
            "over:\n"
            "nop"
        ))
        assert result.exit_code == 77

    def test_jal_links_past_delay_slot(self):
        result = run_asm(
            """
                jal func
                nop
                move $a0, $v0
                li $v0, 17
                syscall
            func:
                li $v0, 31
                jr $ra
                nop
            """
        )
        assert result.exit_code == 31

    def test_jalr_custom_link_register(self):
        result = run_asm(
            """
                la $t9, func
                jalr $t8, $t9
                nop
                move $a0, $v0
                li $v0, 17
                syscall
            func:
                li $v0, 5
                jr $t8
                nop
            """
        )
        assert result.exit_code == 5

    @pytest.mark.parametrize(
        "branch,value,taken",
        [
            ("blez", 0, True), ("blez", -1, True), ("blez", 1, False),
            ("bgtz", 1, True), ("bgtz", 0, False),
            ("bltz", -1, True), ("bltz", 0, False),
            ("bgez", 0, True), ("bgez", -5, False),
        ],
    )
    def test_single_register_branches(self, branch, value, taken):
        result = run_asm(exit_with(
            f"li $t0, {value}\n"
            f"li $v1, 1\n"
            f"{branch} $t0, over\n"
            "nop\n"
            "li $v1, 0\n"
            "over:\n"
            "nop"
        ))
        assert result.exit_code == (1 if taken else 0)

    def test_bgezal_links(self):
        result = run_asm(
            """
                li $t0, 1
                bgezal $t0, func
                nop
                move $a0, $v0
                li $v0, 17
                syscall
            func:
                li $v0, 8
                jr $ra
                nop
            """
        )
        assert result.exit_code == 8

    def test_print_syscalls(self):
        result = run_asm(
            """
                li $a0, 42
                li $v0, 1
                syscall
                li $a0, 65
                li $v0, 11
                syscall
                li $v0, 10
                syscall
            """
        )
        assert result.output == (42, "A")
        assert result.exit_code == 0


class TestTrapImmediates:
    @pytest.mark.parametrize(
        "mnemonic,value,imm,fires",
        [
            ("tgei", 5, 5, True), ("tgei", 4, 5, False),
            ("tgeiu", 5, 5, True), ("tgeiu", 4, 5, False),
            ("tlti", 4, 5, True), ("tlti", 5, 5, False),
            ("tltiu", 4, 5, True), ("tltiu", 6, 5, False),
            ("teqi", 5, 5, True), ("teqi", 4, 5, False),
            ("tnei", 4, 5, True), ("tnei", 5, 5, False),
        ],
    )
    def test_conditional_trap_immediates(self, mnemonic, value, imm, fires):
        result = run_asm(exit_with(
            f"li $t0, {value}\n"
            f"{mnemonic} $t0, {imm}\n"
            "li $v1, 7"
        ))
        if fires:
            assert result.symptom is Symptom.TRAP_INSTRUCTION
        else:
            assert result.exit_code == 7

    def test_signed_vs_unsigned_trap_comparison(self):
        # -1 unsigned is huge: tgeiu fires; tgei (signed) does not.
        fires = run_asm("li $t0, -1\ntgeiu $t0, 5")
        assert fires.symptom is Symptom.TRAP_INSTRUCTION
        spared = run_asm(exit_with("li $t0, -1\ntgei $t0, 5\nli $v1, 3"))
        assert spared.exit_code == 3


class TestUnalignedPairsAllOffsets:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_lwl_lwr_reconstruct_at_every_offset(self, k):
        """The classic unaligned-load idiom must reconstruct the word
        at every byte offset (BE semantics)."""
        expected = (0x11223344_55667788 >> ((4 - k) * 8)) & 0xFFFFFFFF
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "li $t1, 0x11223344\n"
            "sw $t1, 0($t0)\n"
            "li $t1, 0x55667788\n"
            "sw $t1, 4($t0)\n"
            f"lwl $v1, {k}($t0)\n"
            f"lwr $v1, {k + 3}($t0)"
        ))
        signed_expected = expected - (1 << 32) if expected & 0x80000000 else expected
        assert result.exit_code == signed_expected, k

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_swl_swr_store_at_every_offset(self, k):
        value = 0xAABBCCDD
        result = run_asm(exit_with(
            "lui $t0, 0x1000\n"
            "sw $zero, 0($t0)\n"
            "sw $zero, 4($t0)\n"
            f"li $t1, 0x{value:08x}\n"
            f"swl $t1, {k}($t0)\n"
            f"swr $t1, {k + 3}($t0)\n"
            "lw $v1, 0($t0)\n"
            "lw $a1, 4($t0)\n"
            "or $v1, $v1, $a1"  # both words, combined: value placed at k
        ))
        combined = value << ((4 - k) * 8)
        expected = ((combined >> 32) | combined) & 0xFFFFFFFF
        signed = expected - (1 << 32) if expected & 0x80000000 else expected
        assert result.exit_code == signed, k


class TestMiscControl:
    def test_sync_is_a_nop(self):
        result = run_asm(exit_with("li $v1, 5\nsync"))
        assert result.exit_code == 5

    def test_bltzal_links_even_when_not_taken(self):
        # MIPS: the link register is written unconditionally.
        result = run_asm(exit_with(
            "li $t0, 1\n"
            "bltzal $t0, over\n"
            "nop\n"
            "over:\n"
            "move $v1, $ra"
        ))
        assert result.exit_code != 0

    def test_exit2_negative_code(self):
        result = run_asm("li $a0, -7\nli $v0, 17\nsyscall")
        assert result.exit_code == -7
