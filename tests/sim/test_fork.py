"""Tests for speculative forked execution (Sec. III-C)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.encoder import encode
from repro.program.compiler import compile_source
from repro.sim.fork import ForkedExecution, JoinRule

BASE = 0x400000


@pytest.fixture(scope="module")
def counting_program():
    """A program whose observable output depends on its arithmetic."""
    return compile_source(
        """
        fn main() {
            let total = 0;
            let i = 0;
            while (i < 20) { total = total + i; i = i + 1; }
            print(total);
            return total;
        }
        """,
        base_address=BASE,
    )


def find_word(program, mnemonic, require_rt=False):
    """Index of the first real occurrence of *mnemonic*.

    With ``require_rt`` only matches whose rt register is non-zero
    count, which skips ``move``-style ``addu rd, rs, $zero`` aliases
    (for which e.g. a subu substitution is behaviourally identical).
    """
    from repro.isa.decoder import try_decode

    for index, word in enumerate(program.words):
        decoded = try_decode(word)
        if decoded is not None and decoded.mnemonic == mnemonic:
            if require_rt and decoded.rt == 0:
                continue
            return index
    raise AssertionError(f"no {mnemonic} in program")


class TestArbitration:
    def test_sole_survivor(self, counting_program):
        due_index = find_word(counting_program, "addu")
        true_word = counting_program.words[due_index]
        fork = ForkedExecution(counting_program.words, BASE, due_index)
        verdict = fork.run([
            true_word,
            0xFC000000,              # illegal: crashes at fetch
            encode("break"),         # breakpoint symptom
            encode("teq", rs=0, rt=0),  # unconditional trap
        ])
        assert verdict.rule is JoinRule.SOLE_SURVIVOR
        assert verdict.chosen == true_word
        assert len(verdict.survivors) == 1

    def test_converged_when_candidates_equivalent(self, counting_program):
        # Replace a nop-equivalent word with different nop-equivalents:
        # all forks behave identically and join.
        due_index = counting_program.words.index(0)  # a nop
        fork = ForkedExecution(counting_program.words, BASE, due_index)
        verdict = fork.run([
            0,                                 # nop
            encode("addu", rd=1, rs=1, rt=0),  # move $at, $at
            encode("or", rd=1, rs=1, rt=0),    # same effect
        ])
        assert verdict.rule is JoinRule.CONVERGED
        assert verdict.chosen is not None

    def test_all_crashed(self, counting_program):
        due_index = find_word(counting_program, "addu")
        fork = ForkedExecution(counting_program.words, BASE, due_index)
        verdict = fork.run([0xFC000000, encode("break")])
        assert verdict.rule is JoinRule.ALL_CRASHED
        assert verdict.chosen is None

    def test_ambiguous_survivors(self, counting_program):
        due_index = find_word(counting_program, "addu", require_rt=True)
        true_word = counting_program.words[due_index]
        # subu instead of addu survives but prints a different total.
        from repro.isa.decoder import decode

        instruction = decode(true_word)
        wrong = encode(
            "subu", rd=instruction.rd, rs=instruction.rs, rt=instruction.rt
        )
        fork = ForkedExecution(counting_program.words, BASE, due_index)
        verdict = fork.run([true_word, wrong])
        assert verdict.rule is JoinRule.AMBIGUOUS
        assert verdict.chosen is None

    def test_empty_candidates_rejected(self, counting_program):
        fork = ForkedExecution(counting_program.words, BASE, 0)
        with pytest.raises(SimulationError):
            fork.run([])

    def test_due_index_bounds_checked(self, counting_program):
        with pytest.raises(SimulationError):
            ForkedExecution(counting_program.words, BASE, len(counting_program.words))

    def test_forks_do_not_share_memory(self):
        # Each fork gets a private copy: a store in one run must not
        # leak into the next fork's image.
        program = assemble(
            """
                la $t0, data
                lw $t1, 0($t0)
                addiu $t1, $t1, 1
                sw $t1, 0($t0)
                move $a0, $t1
                li $v0, 17
                syscall
            data:
                .word 10
            """,
            base_address=BASE,
        )
        due_index = find_word(program, "addiu")  # the t1 increment
        fork = ForkedExecution(program.words, BASE, due_index)
        patch = encode("addiu", rt=9, rs=9, imm=1)
        verdict = fork.run([patch, patch])
        # Both forks read the pristine 10 and print 11.
        assert all(o.result.exit_code == 11 for o in verdict.outcomes)


class TestEndToEndWithSwdEcc:
    def test_fork_prunes_candidates_to_the_truth(
        self, code, counting_program
    ):
        """Full Sec. III-C story: a 2-bit DUE hits an instruction, the
        engine produces candidates, forked execution finds the truth
        (or at least an observably-equivalent survivor)."""
        import random

        from repro.core import SwdEcc

        due_index = find_word(counting_program, "addu")
        original = counting_program.words[due_index]
        engine = SwdEcc(code, filters=(), rng=random.Random(0))
        received = code.encode(original) ^ (1 << 38) ^ (1 << 36)
        result = engine.recover(received)
        assert original in result.candidate_messages
        fork = ForkedExecution(counting_program.words, BASE, due_index)
        verdict = fork.run(list(result.candidate_messages))
        if verdict.chosen is not None:
            chosen_outcome = next(
                o for o in verdict.outcomes if o.candidate == verdict.chosen
            )
            true_outcome = next(
                o for o in verdict.outcomes if o.candidate == original
            )
            # The chosen fork's observable behaviour matches the truth.
            assert chosen_outcome.result.output == true_outcome.result.output
            assert chosen_outcome.result.exit_code == true_outcome.result.exit_code
        else:
            assert verdict.rule in (JoinRule.AMBIGUOUS, JoinRule.ALL_CRASHED)
