"""Differential testing: the CPU simulator vs a Python reference model.

Hypothesis generates random straight-line arithmetic programs (no
control flow, no memory), executes them both on the MIPS simulator and
on a direct Python model of each instruction's semantics, and compares
the final register files.  Any divergence in wrapping, signedness,
shift masking, or HI/LO behaviour fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoder import encode
from repro.sim.cpu import Cpu
from repro.sim.mem_iface import FlatMemory

BASE = 0x400000
MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


@dataclass
class _Reference:
    """Python-level semantics of the straight-line subset."""

    registers: list[int] = field(default_factory=lambda: [0] * 32)
    hi: int = 0
    lo: int = 0

    def write(self, register: int, value: int) -> None:
        if register != 0:
            self.registers[register] = value & MASK

    def execute(self, op: str, rd: int, rs: int, rt: int, extra: int) -> None:
        a = self.registers[rs]
        b = self.registers[rt]
        if op == "addu":
            self.write(rd, a + b)
        elif op == "subu":
            self.write(rd, a - b)
        elif op == "and":
            self.write(rd, a & b)
        elif op == "or":
            self.write(rd, a | b)
        elif op == "xor":
            self.write(rd, a ^ b)
        elif op == "nor":
            self.write(rd, ~(a | b))
        elif op == "slt":
            self.write(rd, 1 if _signed(a) < _signed(b) else 0)
        elif op == "sltu":
            self.write(rd, 1 if a < b else 0)
        elif op == "sll":
            self.write(rd, b << extra)
        elif op == "srl":
            self.write(rd, b >> extra)
        elif op == "sra":
            self.write(rd, _signed(b) >> extra)
        elif op == "sllv":
            self.write(rd, b << (a & 31))
        elif op == "srlv":
            self.write(rd, b >> (a & 31))
        elif op == "srav":
            self.write(rd, _signed(b) >> (a & 31))
        elif op == "addiu":
            imm = extra - 0x10000 if extra & 0x8000 else extra
            self.write(rt, a + imm)
        elif op == "andi":
            self.write(rt, a & extra)
        elif op == "ori":
            self.write(rt, a | extra)
        elif op == "xori":
            self.write(rt, a ^ extra)
        elif op == "lui":
            self.write(rt, extra << 16)
        elif op == "slti":
            imm = extra - 0x10000 if extra & 0x8000 else extra
            self.write(rt, 1 if _signed(a) < imm else 0)
        elif op == "sltiu":
            imm = (extra - 0x10000 if extra & 0x8000 else extra) & MASK
            self.write(rt, 1 if a < imm else 0)
        elif op == "mult":
            product = _signed(a) * _signed(b)
            self.lo = product & MASK
            self.hi = (product >> 32) & MASK
        elif op == "multu":
            product = a * b
            self.lo = product & MASK
            self.hi = (product >> 32) & MASK
        elif op == "mfhi":
            self.write(rd, self.hi)
        elif op == "mflo":
            self.write(rd, self.lo)
        elif op == "movz":
            if b == 0:
                self.write(rd, a)
        elif op == "movn":
            if b != 0:
                self.write(rd, a)
        else:  # pragma: no cover - strategy bug guard
            raise AssertionError(f"unmodelled op {op}")


_THREE_REG = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
              "movz", "movn")
_SHIFT_IMM = ("sll", "srl", "sra")
_SHIFT_VAR = ("sllv", "srlv", "srav")
_IMMEDIATE = ("addiu", "andi", "ori", "xori", "slti", "sltiu")
_MULT = ("mult", "multu")
_MOVE_FROM = ("mfhi", "mflo")

register_index = st.integers(0, 31)


@st.composite
def straight_line_step(draw):
    kind = draw(st.sampled_from(("three", "shift_imm", "shift_var",
                                 "imm", "mult", "mfrom", "lui")))
    rd = draw(register_index)
    rs = draw(register_index)
    rt = draw(register_index)
    if kind == "three":
        return (draw(st.sampled_from(_THREE_REG)), rd, rs, rt, 0)
    if kind == "shift_imm":
        return (draw(st.sampled_from(_SHIFT_IMM)), rd, 0, rt,
                draw(st.integers(0, 31)))
    if kind == "shift_var":
        return (draw(st.sampled_from(_SHIFT_VAR)), rd, rs, rt, 0)
    if kind == "imm":
        return (draw(st.sampled_from(_IMMEDIATE)), 0, rs, rt,
                draw(st.integers(0, 0xFFFF)))
    if kind == "mult":
        return (draw(st.sampled_from(_MULT)), 0, rs, rt, 0)
    if kind == "mfrom":
        return (draw(st.sampled_from(_MOVE_FROM)), rd, 0, 0, 0)
    return ("lui", 0, 0, rt, draw(st.integers(0, 0xFFFF)))


def _encode_step(step) -> int:
    op, rd, rs, rt, extra = step
    if op in _THREE_REG:
        return encode(op, rd=rd, rs=rs, rt=rt)
    if op in _SHIFT_IMM:
        return encode(op, rd=rd, rt=rt, shamt=extra)
    if op in _SHIFT_VAR:
        return encode(op, rd=rd, rt=rt, rs=rs)
    if op in _IMMEDIATE:
        return encode(op, rt=rt, rs=rs, imm=extra)
    if op in _MULT:
        return encode(op, rs=rs, rt=rt)
    if op in _MOVE_FROM:
        return encode(op, rd=rd)
    return encode("lui", rt=rt, imm=extra)


class TestDifferential:
    @given(
        st.lists(straight_line_step(), min_size=1, max_size=40),
        st.lists(st.integers(0, MASK), min_size=31, max_size=31),
    )
    @settings(max_examples=150, deadline=None)
    def test_cpu_matches_reference_model(self, steps, seeds):
        # Common random starting state (register 0 stays zero).
        reference = _Reference()
        for register, seed in zip(range(1, 32), seeds):
            reference.registers[register] = seed

        words = [_encode_step(step) for step in steps]
        words.append(encode("break"))  # terminate the run
        memory = FlatMemory()
        memory.load_image(words, BASE)
        cpu = Cpu(memory, entry_pc=BASE,
                  text_range=(BASE, BASE + 4 * len(words)))
        for register, seed in zip(range(1, 32), seeds):
            cpu.state.registers[register] = seed

        result = cpu.run(max_steps=len(words) + 4)
        assert result.symptom is not None  # the break

        for step in steps:
            reference.execute(*step)
        assert cpu.state.registers == reference.registers
        assert cpu.state.hi == reference.hi
        assert cpu.state.lo == reference.lo
