"""Shared fixtures: codes, images, and engines reused across the suite.

Expensive objects (the canonical code, synthetic benchmark images) are
session scoped; they are immutable, so sharing is safe.
"""

from __future__ import annotations

import random

import pytest

from repro.core import RecoveryContext, SwdEcc
from repro.ecc import canonical_secded_39_32, hsiao_39_32
from repro.ecc.candidates import CandidateEnumerator
from repro.program import FrequencyTable, synthesize_benchmark


@pytest.fixture(scope="session")
def code():
    """The canonical (39, 32) SECDED code used by the evaluation."""
    return canonical_secded_39_32()


@pytest.fixture(scope="session")
def hsiao_code_39():
    """The parametric Hsiao (39, 32) construction."""
    return hsiao_39_32()


@pytest.fixture(scope="session")
def enumerator(code):
    """Candidate enumerator over the canonical code."""
    return CandidateEnumerator(code)


@pytest.fixture(scope="session")
def mcf_image():
    """A small synthetic mcf image (session scoped: generation costs)."""
    return synthesize_benchmark("mcf", length=512)


@pytest.fixture(scope="session")
def bzip2_image():
    """A small synthetic bzip2 image."""
    return synthesize_benchmark("bzip2", length=512)


@pytest.fixture(scope="session")
def mcf_table(mcf_image):
    """Frequency table of the mcf image."""
    return FrequencyTable.from_image(mcf_image)


@pytest.fixture(scope="session")
def instruction_context(mcf_table):
    """Instruction-memory recovery context with mcf statistics."""
    return RecoveryContext.for_instructions(mcf_table)


@pytest.fixture()
def engine(code):
    """A fresh default SWD-ECC engine with a seeded tie-break RNG."""
    return SwdEcc(code, rng=random.Random(1234))
