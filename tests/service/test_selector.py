"""Adaptive code selector: classification, hysteresis, and metrics."""

from __future__ import annotations

import pytest

from repro.ecc import canonical_secded_39_32, daec_code
from repro.ecc.daec import adjacent_syndrome_set
from repro.errors import ServiceError
from repro.obs.events import DueEvent, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service.selector import (
    AdaptiveCodeSelector,
    CodeSwitch,
    SelectorPolicy,
)

SECDED = canonical_secded_39_32()
DAEC = daec_code()


def make_event(received: int, address: int | None = None) -> DueEvent:
    return DueEvent(
        received=received,
        num_candidates=2,
        num_valid=1,
        filter_fell_back=False,
        chosen_message=0,
        chosen_codeword=0,
        tied=1,
        latency_ns=0,
        address=address,
    )


def adjacent_due(code, message: int, start: int) -> int:
    top = 1 << (code.n - 1)
    return code.encode(message) ^ ((top >> start) | (top >> (start + 1)))


def non_adjacent_dues(code, count: int) -> list[int]:
    """DUE words whose syndromes are NOT adjacent-consistent."""
    adjacent = adjacent_syndrome_set(code)
    words = []
    top = 1 << (code.n - 1)
    for i in range(code.n):
        for j in range(i + 2, code.n):
            received = code.encode(0xABCD1234 + i) ^ (top >> i) ^ (top >> j)
            if code.syndrome(received) not in adjacent:
                words.append(received)
                if len(words) == count:
                    return words
    raise AssertionError("not enough non-adjacent-syndrome DUEs")


def build(policy=None, **kwargs):
    log = EventLog()
    selector = AdaptiveCodeSelector(
        event_log=log,
        base_code=SECDED,
        upgrade_code=DAEC,
        policy=policy or SelectorPolicy(min_samples=4, window=16),
        registry=MetricsRegistry(),
        **kwargs,
    )
    return log, selector


class TestPolicyValidation:
    def test_defaults_valid(self):
        SelectorPolicy()

    def test_upgrade_threshold_bounds(self):
        with pytest.raises(ServiceError, match="upgrade_threshold"):
            SelectorPolicy(upgrade_threshold=0.0)

    def test_hysteresis_band_required(self):
        with pytest.raises(ServiceError, match="downgrade"):
            SelectorPolicy(upgrade_threshold=0.5, downgrade_threshold=0.5)

    def test_min_samples_window(self):
        with pytest.raises(ServiceError, match="min_samples"):
            SelectorPolicy(min_samples=64, window=32)

    def test_region_bytes(self):
        with pytest.raises(ServiceError, match="region_bytes"):
            SelectorPolicy(region_bytes=0)


class TestUpgrade:
    def test_adjacent_bursts_upgrade_the_region(self):
        log, selector = build()
        for i in range(8):
            log.record(make_event(adjacent_due(SECDED, 0x1000 + i, i)))
        switches = selector.poll()
        assert len(switches) == 1
        switch = switches[0]
        assert isinstance(switch, CodeSwitch)
        assert switch.region == 0
        assert switch.old_code_id == "secded-39-32"
        assert switch.new_code_id == "daec-41-32"
        assert switch.adjacent_fraction == 1.0
        assert selector.code_for(0) == "daec-41-32"
        assert selector.assignments() == {0: "daec-41-32"}

    def test_below_min_samples_no_decision(self):
        log, selector = build()
        for i in range(3):  # min_samples=4
            log.record(make_event(adjacent_due(SECDED, i, i)))
        assert selector.poll() == []
        assert selector.assignments() == {}

    def test_non_adjacent_dues_do_not_upgrade(self):
        log, selector = build()
        for received in non_adjacent_dues(SECDED, 12):
            log.record(make_event(received))
        assert selector.poll() == []
        assert selector.code_for(0) == "secded-39-32"

    def test_regions_partition_by_address(self):
        policy = SelectorPolicy(min_samples=4, window=16, region_bytes=256)
        log, selector = build(policy=policy)
        # Region 2 takes bursts; region 5 takes non-adjacent doubles.
        for i in range(6):
            log.record(
                make_event(adjacent_due(SECDED, i, i), address=512 + 4 * i)
            )
        for received in non_adjacent_dues(SECDED, 6):
            log.record(make_event(received, address=1280))
        switches = selector.poll()
        assert [s.region for s in switches] == [2]
        assert selector.code_for(2) == "daec-41-32"
        assert selector.code_for(5) == "secded-39-32"

    def test_on_switch_callback(self):
        seen = []
        log, selector = build(on_switch=seen.append)
        for i in range(5):
            log.record(make_event(adjacent_due(SECDED, i, i)))
        switches = selector.poll()
        assert seen == switches


class TestHysteresis:
    def _upgraded(self):
        log, selector = build()
        for i in range(6):
            log.record(make_event(adjacent_due(SECDED, i, i)))
        assert selector.poll()
        return log, selector

    def test_window_clears_on_switch(self):
        log, selector = self._upgraded()
        # No new events: the cleared window must not re-trigger.
        assert selector.poll() == []
        assert selector.code_for(0) == "daec-41-32"

    def test_non_adjacent_traffic_downgrades(self):
        log, selector = self._upgraded()
        # Under DAEC, adjacent doubles are corrected in hardware; the
        # DUEs that remain are non-adjacent.  By the DAEC uniqueness
        # property their syndromes are never adjacent-consistent.
        for received in non_adjacent_dues(DAEC, 6):
            log.record(make_event(received))
        switches = selector.poll()
        assert [s.new_code_id for s in switches] == ["secded-39-32"]
        assert selector.code_for(0) == "secded-39-32"

    def test_daec_adjacent_syndromes_never_collide(self):
        # The property the downgrade test leans on.
        adjacent = adjacent_syndrome_set(DAEC)
        assert len(adjacent) == DAEC.n - 1
        for received in non_adjacent_dues(DAEC, 50):
            assert DAEC.syndrome(received) not in adjacent


class TestBookkeeping:
    def test_width_mismatch_skipped_and_counted(self):
        log, selector = build()
        log.record(make_event(1 << 40))  # 41-bit word, region on (39, 32)
        assert selector.poll() == []
        metrics = selector._c_mismatches
        assert metrics.value == 1
        assert selector._c_samples.value == 0

    def test_evicted_events_counted(self):
        log = EventLog(capacity=4)
        selector = AdaptiveCodeSelector(
            event_log=log,
            base_code=SECDED,
            upgrade_code=DAEC,
            policy=SelectorPolicy(min_samples=4, window=16),
            registry=MetricsRegistry(),
        )
        for i in range(10):
            log.record(make_event(adjacent_due(SECDED, i, i % 38)))
        selector.poll()
        assert selector._c_evicted.value == 6
        assert selector._c_samples.value == 4

    def test_idle_poll_returns_nothing(self):
        log, selector = build()
        assert selector.poll() == []
        assert selector.poll() == []
        assert selector._c_polls.value == 2

    def test_events_ingested_once(self):
        log, selector = build()
        log.record(make_event(adjacent_due(SECDED, 1, 0)))
        selector.poll()
        selector.poll()
        assert selector._c_samples.value == 1

    def test_metric_families_registered(self):
        registry = MetricsRegistry()
        AdaptiveCodeSelector(
            event_log=EventLog(),
            base_code=SECDED,
            upgrade_code=DAEC,
            registry=registry,
        )
        snapshot = registry.as_dict()
        for name in (
            "selector.polls", "selector.samples",
            "selector.adjacent_samples", "selector.width_mismatches",
            "selector.evicted_events", "selector.switches",
            "selector.upgrades", "selector.downgrades",
            "selector.regions_observed", "selector.regions_upgraded",
            "selector.adjacent_fraction", "selector.config",
        ):
            assert name in snapshot, name
