"""Per-request cost attribution in the recovery service.

``RecoveryService(report_cost=True)`` attaches an op-count/joule
``cost`` block to every successful ``/recover`` and ``/recover/batch``
response; the default leaves responses byte-compatible with older
clients.  Batch-level ``service.batch_ops`` / ``service.batch_joules``
histograms record energy per executed micro-batch in both modes.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service import RecoveryService, ServiceCatalog
from repro.service.catalog import DEFAULT_CODE_ID


def post(url: str, payload: dict, timeout: float = 10.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response)


@pytest.fixture(scope="module")
def due_word():
    catalog = ServiceCatalog()
    code = catalog.code(DEFAULT_CODE_ID)
    return code.encode(0xDEADBEEF) ^ 0b101


def _service(**kwargs):
    return RecoveryService(
        port=0, registry=MetricsRegistry(), event_log=EventLog(), **kwargs
    )


class TestCostReporting:
    def test_cost_block_attached_when_enabled(self, due_word):
        with _service(report_cost=True) as svc:
            status, body = post(
                svc.url + "/recover", {"received": due_word}
            )
        assert status == 200
        cost = body["cost"]
        assert cost["joules"] > 0
        assert cost["joules_per_word"] == pytest.approx(cost["joules"])
        assert cost["ops"]  # at least one op class charged
        assert all(count > 0 for count in cost["ops"].values())
        assert cost["ops"]["ops.syndrome_computes"] >= 1

    def test_batch_cost_covers_all_words(self, due_word):
        with _service(report_cost=True) as svc:
            code = svc.catalog.code(DEFAULT_CODE_ID)
            words = [code.encode(m) ^ 0b11 for m in (1, 2, 3)]
            status, body = post(
                svc.url + "/recover/batch", {"received": words}
            )
        assert status == 200
        cost = body["cost"]
        assert cost["joules_per_word"] == pytest.approx(
            cost["joules"] / len(words)
        )

    def test_cost_absent_by_default(self, due_word):
        with _service() as svc:
            status, body = post(
                svc.url + "/recover", {"received": due_word}
            )
        assert status == 200
        assert "cost" not in body

    def test_batch_histograms_recorded_regardless(self, due_word):
        with _service() as svc:
            post(svc.url + "/recover", {"received": due_word})
            registry = svc.registry
            ops = registry.get("service.batch_ops")
            joules = registry.get("service.batch_joules")
            assert ops.count == 1
            assert ops.sum > 0
            assert joules.count == 1
            assert joules.sum > 0

    def test_degraded_responses_never_carry_cost(self, due_word):
        # A 0ms timeout degrades to detect-only before any engine work.
        with _service(report_cost=True, linger_s=0.05) as svc:
            status, body = post(
                svc.url + "/recover",
                {"received": due_word, "timeout_ms": 1},
            )
        assert status == 200
        assert body["degraded"] is True
        assert "cost" not in body
