"""End-to-end request tracing across the sharded recovery service.

The tracing tentpole's contract, pinned property-style: for every
traced request the service retains a span tree whose five stage spans
(`queue_wait`, `linger`, `shard_exec`, `serialize`, `respond`)
decompose the end-to-end ``service.request`` span — contiguous,
in order, inside the root window — and the worker-side
``service.shard.execute`` span crosses the process boundary with the
right parent and lands inside ``shard_exec``.  Inbound W3C
``traceparent`` headers donate the trace id (and surface as the
entry's remote parent); requests without one get a fresh id; an
unsampled inbound header propagates ids without recording anything.
"""

from __future__ import annotations

import itertools
import json
import time
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecc import canonical_secded_39_32
from repro.obs import trace as obs_trace
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service import RecoveryService

CONTEXT_IDS = ("none", "mcf", "bzip2")
CODE = canonical_secded_39_32()

STAGE_NAMES = (
    "service.stage.queue_wait",
    "service.stage.linger",
    "service.stage.shard_exec",
    "service.stage.serialize",
    "service.stage.respond",
)

#: Deterministic, never-colliding ids for generated traceparent headers
#: (hypothesis shrinks better without os.urandom in the example path).
_ID_COUNTER = itertools.count(1)


@pytest.fixture(scope="module")
def traced_service():
    """A 2-shard service with tracing on; tiny batches force splits."""
    collector = obs_trace.enable_tracing(obs_trace.SpanCollector())
    service = RecoveryService(
        port=0,
        workers=2,
        max_batch=3,
        linger_s=0.001,
        registry=MetricsRegistry(),
        event_log=EventLog(),
    )
    try:
        with service:
            yield service, collector
    finally:
        obs_trace.disable_tracing()


def _post(service, words, context, traceparent=None):
    """POST /recover/batch; returns (payload, echoed traceparent)."""
    headers = {"Content-Type": "application/json"}
    if traceparent is not None:
        headers["traceparent"] = traceparent
    request = urllib.request.Request(
        f"{service.url}/recover/batch",
        data=json.dumps({"received": words, "context": context}).encode(),
        headers=headers,
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return (
            json.loads(response.read().decode("utf-8")),
            response.headers.get("traceparent"),
        )


def _await_trace(collector, trace_id, timeout_s=10.0):
    """The retained entry for *trace_id* (the root span is recorded
    *after* the response bytes flush, so the client can race it)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        entry = collector.traces.get(trace_id)
        if entry is not None:
            return entry
        time.sleep(0.001)
    raise AssertionError(f"trace {trace_id} never reached the buffer")


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def _word_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.lists(
            st.integers(min_value=0, max_value=CODE.n - 1),
            min_size=0, max_size=2, unique=True,
        ),
    )


def _examples_strategy():
    request = st.tuples(
        st.lists(_word_strategy(), min_size=1, max_size=5),
        st.sampled_from(CONTEXT_IDS),
        st.booleans(),  # send an inbound traceparent?
    )
    return st.lists(request, min_size=1, max_size=4)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(spec=_examples_strategy())
def test_stage_spans_decompose_end_to_end_latency(spec, traced_service):
    """Every traced request yields a well-formed, additive span tree."""
    service, collector = traced_service
    # The buffer keeps the slowest 64 requests *ever*; clear per
    # example so this example's requests cannot be evicted by a slow
    # outlier from a previous one.
    collector.traces.clear()

    sent = []
    for word_specs, context_id, with_header in spec:
        words = []
        for message, flips in word_specs:
            received = CODE.encode(message)
            for bit in flips:
                received ^= 1 << bit
            words.append(received)
        header = None
        remote_span_id = None
        if with_header:
            trace_id = f"{next(_ID_COUNTER):032x}"
            remote_span_id = next(_ID_COUNTER)
            header = (
                f"00-{trace_id}-"
                f"{obs_trace.format_span_id(remote_span_id)}-01"
            )
        payload, echoed = _post(service, words, context_id, header)
        assert len(payload["results"]) == len(words)
        context = obs_trace.parse_traceparent(echoed)
        assert context is not None and context.sampled
        if with_header:
            assert context.trace_id == trace_id  # inbound id donated
            assert context.span_id != remote_span_id  # fresh local span
        sent.append((context.trace_id, remote_span_id))

    for trace_id, remote_span_id in sent:
        entry = _await_trace(collector, trace_id)
        assert entry.remote_parent_id == remote_span_id
        tree = entry.as_dict()
        root = tree["root"]
        assert root["name"] == "service.request"
        assert root["trace_id"] == trace_id

        # Every span's parent resolves inside the document, ids are
        # 16-hex, and all spans carry the request's trace id.
        ids = {node["span_id"] for node in _walk(root)}
        assert len(ids) == tree["span_count"]
        for node in _walk(root):
            assert len(node["span_id"]) == 16
            assert node["trace_id"] == trace_id
            assert node["duration_ns"] >= 0
            if node is not root:
                assert node["parent_id"] in ids
            for child in node["children"]:
                assert child["parent_id"] == node["span_id"]

        # Exactly the five stage spans sit under the root, in
        # chronological order, contiguous and non-overlapping.
        stages = {c["name"]: c for c in root["children"]}
        assert sorted(stages) == sorted(STAGE_NAMES)
        assert len(root["children"]) == len(STAGE_NAMES)
        ordered = [stages[name] for name in STAGE_NAMES]
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier["end_ns"] <= later["start_ns"]
        for stage in ordered:
            assert root["start_ns"] <= stage["start_ns"]
            assert stage["end_ns"] <= root["end_ns"]

        # Decomposition: the stages sum to no more than the request
        # (they tile its interior, minus parse/dispatch gaps).
        stage_sum = sum(stage["duration_ns"] for stage in ordered)
        assert stage_sum <= root["duration_ns"]

        # The worker-side span crossed the process boundary: exactly
        # one per request, parented under shard_exec and clamped
        # inside its window.
        shard_exec = stages["service.stage.shard_exec"]
        workers = shard_exec["children"]
        assert [w["name"] for w in workers] == ["service.shard.execute"]
        worker = workers[0]
        assert worker["parent_id"] == shard_exec["span_id"]
        assert shard_exec["start_ns"] <= worker["start_ns"]
        assert worker["end_ns"] <= shard_exec["end_ns"]


def test_unsampled_inbound_header_propagates_without_recording(
    traced_service,
):
    """flags=00 means correlate (echo ids) but record nothing."""
    service, collector = traced_service
    trace_id = f"{next(_ID_COUNTER):032x}"
    header = f"00-{trace_id}-{obs_trace.format_span_id(0xBEEF)}-00"
    payload, echoed = _post(
        service, [CODE.encode(7) ^ 0b11], "mcf", header
    )
    assert payload["results"]
    context = obs_trace.parse_traceparent(echoed)
    assert context is not None
    assert context.trace_id == trace_id
    assert not context.sampled
    time.sleep(0.05)
    assert collector.traces.get(trace_id) is None


def test_stage_histograms_observed_for_untraced_requests(traced_service):
    """The /metrics decomposition costs nothing extra to keep hot: it
    is observed for every request, traced or not."""
    service, _ = traced_service
    before = {
        name: service.registry.histogram(name).count
        for name in STAGE_NAMES
    }
    _post(service, [CODE.encode(21) ^ 0b101], "none")
    for name in STAGE_NAMES:
        assert service.registry.histogram(name).count > before[name], name
