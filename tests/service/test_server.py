"""RecoveryService HTTP behaviour: API, degradation, shared metrics."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import parse_exposition
from repro.service import RecoveryService, ServiceCatalog
from repro.service.catalog import DEFAULT_CODE_ID


def post(url: str, payload: dict, timeout: float = 10.0):
    """POST JSON, returning (status, parsed body, headers)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode()


@pytest.fixture()
def service():
    svc = RecoveryService(
        port=0, registry=MetricsRegistry(), event_log=EventLog()
    )
    with svc:
        yield svc


@pytest.fixture(scope="module")
def due_word():
    """A double-bit-error word over the canonical code."""
    catalog = ServiceCatalog()
    code = catalog.code(DEFAULT_CODE_ID)
    return code.encode(0xDEADBEEF) ^ 0b101


class TestRecoverEndpoints:
    def test_single_recover(self, service, due_word):
        status, body, _ = post(
            service.url + "/recover", {"received": due_word}
        )
        assert status == 200
        assert body["degraded"] is False
        result = body["result"]
        assert result["status"] == "recovered"
        assert result["received"] == due_word
        assert isinstance(result["chosen_message"], int)
        assert result["targets"]  # ranked list is present
        chosen = [t for t in result["targets"] if t["chosen"]]
        assert len(chosen) == 1
        assert chosen[0]["message"] == result["chosen_message"]

    def test_single_recover_hex_string(self, service, due_word):
        status, body, _ = post(
            service.url + "/recover", {"received": hex(due_word)}
        )
        assert status == 200
        assert body["result"]["received"] == due_word

    def test_batch_recover_preserves_order(self, service, due_word):
        catalog = service.catalog
        code = catalog.code(DEFAULT_CODE_ID)
        words = [code.encode(m) ^ 0b11 for m in (1, 2**31, 0xABCD)]
        status, body, _ = post(
            service.url + "/recover/batch",
            {"received": words, "context": "mcf"},
        )
        assert status == 200
        assert body["words"] == len(words)
        assert [r["received"] for r in body["results"]] == words

    def test_non_due_word_reports_error_status(self, service):
        code = service.catalog.code(DEFAULT_CODE_ID)
        clean = code.encode(42)  # no error: not a DUE
        status, body, _ = post(service.url + "/recover", {"received": clean})
        assert status == 200
        assert body["result"]["status"] == "error"

    def test_mixed_batch_isolates_per_word_failures(self, service, due_word):
        code = service.catalog.code(DEFAULT_CODE_ID)
        clean = code.encode(7)
        status, body, _ = post(
            service.url + "/recover/batch", {"received": [due_word, clean]}
        )
        assert status == 200
        statuses = [r["status"] for r in body["results"]]
        assert statuses == ["recovered", "error"]

    def test_unknown_code_is_400(self, service, due_word):
        status, body, _ = post(
            service.url + "/recover",
            {"received": due_word, "code": "lol-999"},
        )
        assert status == 400
        assert "unknown code id" in body["error"]

    def test_unknown_context_is_400(self, service, due_word):
        status, body, _ = post(
            service.url + "/recover",
            {"received": due_word, "context": "nope"},
        )
        assert status == 400
        assert "unknown context id" in body["error"]

    def test_unknown_field_is_400(self, service):
        status, body, _ = post(service.url + "/recover", {"wat": 1})
        assert status == 400
        assert "unknown request field" in body["error"]

    def test_oversized_word_is_400(self, service):
        status, body, _ = post(service.url + "/recover", {"received": 1 << 60})
        assert status == 400
        assert "does not fit" in body["error"]

    def test_empty_batch_is_400(self, service):
        status, body, _ = post(
            service.url + "/recover/batch", {"received": []}
        )
        assert status == 400

    def test_unknown_post_path_is_404(self, service):
        status, body, _ = post(service.url + "/nope", {"received": 1})
        assert status == 404


class TestSharedObservability:
    def test_metrics_exposes_service_families(self, service, due_word):
        post(service.url + "/recover", {"received": due_word})
        status, text = get(service.url + "/metrics")
        assert status == 200
        families = parse_exposition(text)
        names = set(families)
        assert "service_requests" in names
        assert "service_recoveries" in names
        assert "service_queue_depth" in names
        assert "service_batch_words" in names
        assert "service_request_seconds" in names
        assert families["service_requests"].type == "counter"

    def test_healthz_reports_queue_state(self, service):
        status, text = get(service.url + "/healthz")
        assert status == 200
        body = json.loads(text)
        assert body["status"] == "ok"
        assert body["queue_limit"] == service.batcher.queue_limit
        assert body["overload_policy"] == "degrade"

    def test_unknown_get_path_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(service.url + "/nope")
        assert excinfo.value.code == 404


class TestDegradation:
    def _gated_service(self, policy: str, gate: threading.Event):
        """A service whose engine work blocks on *gate* (tiny queue)."""
        svc = RecoveryService(
            port=0,
            registry=MetricsRegistry(),
            event_log=EventLog(),
            queue_limit=1,
            max_batch=1,
            linger_s=0.0,
            overload_policy=policy,
        )
        real_execute = svc._engine.execute

        def gated(requests):
            gate.wait(10.0)
            return real_execute(requests)

        svc._batcher._execute = gated
        return svc

    def _saturate(self, svc, due_word):
        """Park one job in the worker and fill the queue with another.

        Direct batcher submissions make this deterministic: we wait
        for the worker to claim the parked job, then occupy the whole
        (1-word) queue, so the next HTTP request must overload.
        """
        import time

        from repro.service.api import RecoveryRequest

        parked = svc.batcher.submit(RecoveryRequest(words=(due_word,)))
        deadline = time.monotonic() + 5.0
        while svc.batcher.queued_words() and time.monotonic() < deadline:
            time.sleep(0.005)  # worker claims the parked job
        assert svc.batcher.queued_words() == 0
        filler = svc.batcher.submit(RecoveryRequest(words=(due_word,)))
        assert svc.batcher.queued_words() == 1
        return parked, filler

    def test_overload_degrades_to_detect_only(self, due_word):
        gate = threading.Event()
        svc = self._gated_service("degrade", gate)
        with svc:
            parked, filler = self._saturate(svc, due_word)
            status, body, _ = post(
                svc.url + "/recover", {"received": due_word}
            )
            gate.set()
            parked_result = parked.result(timeout=15.0)
            filler_result = filler.result(timeout=15.0)
        assert status == 200
        assert body["degraded"] is True
        assert body["reason"] == "overload"
        assert body["result"]["status"] == "detect-only"
        assert body["result"]["received"] == due_word
        assert body["retry_after_s"] > 0
        # The parked jobs still recovered once the gate lifted.
        assert (
            json.loads(parked_result["fragments"][0])["status"] == "recovered"
        )
        assert (
            json.loads(filler_result["fragments"][0])["status"] == "recovered"
        )
        assert svc.registry.get("service.degraded").value == 1.0

    def test_overload_reject_policy_returns_429(self, due_word):
        gate = threading.Event()
        svc = self._gated_service("reject", gate)
        with svc:
            parked, filler = self._saturate(svc, due_word)
            status, body, headers = post(
                svc.url + "/recover", {"received": due_word}
            )
            gate.set()
            parked.result(timeout=15.0)
            filler.result(timeout=15.0)
        assert status == 429
        assert body["error"] == "overloaded"
        assert int(headers["Retry-After"]) >= 1
        assert svc.registry.get("service.rejections").value == 1.0

    def test_timeout_degrades_to_detect_only(self, due_word):
        gate = threading.Event()
        svc = self._gated_service("degrade", gate)
        try:
            with svc:
                status, body, _ = post(
                    svc.url + "/recover",
                    {"received": due_word, "timeout_ms": 50},
                )
                gate.set()
            assert status == 200
            assert body["degraded"] is True
            assert body["reason"] == "timeout"
            assert body["result"]["status"] == "detect-only"
            assert svc.registry.get("service.timeouts").value == 1.0
        finally:
            gate.set()


class TestLifecycleAndValidation:
    def test_bad_policy_raises(self):
        with pytest.raises(ServiceError):
            RecoveryService(overload_policy="panic")

    def test_bad_timeout_raises(self):
        with pytest.raises(ServiceError):
            RecoveryService(default_timeout_s=0)

    def test_stop_is_idempotent(self):
        svc = RecoveryService(
            port=0, registry=MetricsRegistry(), event_log=EventLog()
        )
        svc.start()
        svc.stop()
        svc.stop()
        assert not svc.running

    def test_double_start_raises(self):
        svc = RecoveryService(
            port=0, registry=MetricsRegistry(), event_log=EventLog()
        )
        svc.start()
        try:
            with pytest.raises(ServiceError):
                svc.start()
        finally:
            svc.stop()

    def test_port_zero_resolves(self, service):
        assert service.port != 0
        assert str(service.port) in service.url
