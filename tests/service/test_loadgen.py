"""Load-generator helpers: word synthesis, percentiles, closed loop."""

from __future__ import annotations

from repro.ecc import canonical_secded_39_32
from repro.ecc.code import DecodeStatus
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service import RecoveryService
from repro.service.loadgen import generate_due_words, percentile, run_load


class TestGenerateDueWords:
    def test_every_word_is_a_true_due(self):
        code = canonical_secded_39_32()
        for word in generate_due_words(code, count=64, seed=3):
            assert 0 <= word < (1 << code.n)
            assert code.decode(word).status is DecodeStatus.DUE

    def test_generation_is_seed_deterministic(self):
        assert generate_due_words(count=32, seed=9) == \
            generate_due_words(count=32, seed=9)
        assert generate_due_words(count=32, seed=9) != \
            generate_due_words(count=32, seed=10)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_single_value(self):
        assert percentile([4.2], 0.5) == 4.2
        assert percentile([4.2], 0.99) == 4.2

    def test_quantiles_of_a_range(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.00) == 100.0


class TestRunLoad:
    def test_closed_loop_against_live_service(self):
        words = generate_due_words(count=32, seed=5)
        service = RecoveryService(
            port=0, registry=MetricsRegistry(), event_log=EventLog()
        )
        with service:
            result = run_load(
                "127.0.0.1", service.port,
                clients=2, requests_per_client=3,
                words_per_request=4, context="none", words=words,
            )
        assert result.requests == 6
        assert result.words == 24
        assert result.recovered == 24
        assert result.http_errors == 0
        assert result.wall_s > 0
        assert result.throughput_words_per_s > 0
        assert len(result.latencies_s) == 6
        record = result.to_record()
        assert record["latency_ms"]["p50"] <= record["latency_ms"]["p99"]

    def test_slowest_traces_name_retained_server_traces(self):
        """The generator's slow-request trace ids resolve in the
        service's /traces buffer when it serves with tracing on."""
        from repro.obs import trace as obs_trace

        words = generate_due_words(count=16, seed=11)
        collector = obs_trace.enable_tracing(obs_trace.SpanCollector())
        service = RecoveryService(
            port=0, registry=MetricsRegistry(), event_log=EventLog()
        )
        try:
            with service:
                result = run_load(
                    "127.0.0.1", service.port,
                    clients=2, requests_per_client=3,
                    words_per_request=2, context="none", words=words,
                )
        finally:
            obs_trace.disable_tracing()
        assert len(result.traced_latencies) == 6
        slowest = result.slowest_traces(3)
        assert len(slowest) == 3
        latencies = [entry["latency_ms"] for entry in slowest]
        assert latencies == sorted(latencies, reverse=True)
        assert result.to_record()["slowest_traces"] == \
            result.slowest_traces()
        for entry in slowest:
            assert obs_trace.parse_traceparent(
                f"00-{entry['trace_id']}-{'ab' * 8}-01"
            ) is not None  # well-formed W3C trace id
            # The id the generator reports is the id the service
            # staged: the slow request is directly inspectable.
            assert collector.traces.get(entry["trace_id"]) is not None
