"""Property: service-batched recovery is bit-identical to serial runs.

The service's whole batching apparatus — coalescing across batch
boundaries, whole-job granularity, (code, context) grouping, the
single-consumer worker — must be invisible in the answers: every
per-word payload must equal what a fresh engine produces by calling
:meth:`SwdEcc.recover` serially in request order.  Hypothesis drives
random word mixes (true DUEs, correctable words, clean words), random
request shapes (1..5 words), and mixed contexts, with ``max_batch``
small enough that examples routinely straddle batch boundaries.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32
from repro.errors import ReproError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark
from repro.service import RecoveryService, ServiceCatalog
from repro.service.api import RecoveryRequest, error_payload, result_payload
from repro.service.catalog import (
    _CONTEXT_IMAGE_LENGTH,
    _CONTEXT_SEED,
    DEFAULT_CODE_ID,
)

CONTEXT_IDS = ("none", "mcf", "bzip2")


@pytest.fixture(scope="module")
def live_service():
    """One service for the whole module; tiny batches force boundaries."""
    service = RecoveryService(
        port=0,
        max_batch=3,
        linger_s=0.001,
        registry=MetricsRegistry(),
        event_log=EventLog(),
    )
    with service:
        yield service


@pytest.fixture(scope="module")
def reference():
    """A fresh serial engine + contexts, configured like the catalog."""
    code = canonical_secded_39_32()
    engine = SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0), cache=True
    )
    contexts = {"none": RecoveryContext()}
    for name in ("mcf", "bzip2"):
        image = synthesize_benchmark(
            name, length=_CONTEXT_IMAGE_LENGTH, seed=_CONTEXT_SEED
        )
        contexts[name] = RecoveryContext.for_instructions(
            FrequencyTable.from_image(image)
        )
    return code, engine, contexts


def _word_strategy(code_n: int):
    """One received word: a codeword with 0, 1, or 2 bits flipped.

    Two flips are the true DUEs the service exists for; zero and one
    flips exercise the per-word error path (not a DUE) without failing
    neighbouring words.
    """
    message = st.integers(min_value=0, max_value=(1 << 32) - 1)
    flips = st.lists(
        st.integers(min_value=0, max_value=code_n - 1),
        min_size=0,
        max_size=2,
        unique=True,
    )
    return st.tuples(message, flips)


def _requests_strategy(code_n: int):
    word = _word_strategy(code_n)
    request = st.tuples(
        st.lists(word, min_size=1, max_size=5),
        st.sampled_from(CONTEXT_IDS),
    )
    return st.lists(request, min_size=1, max_size=6)


CODE_N = canonical_secded_39_32().n


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(spec=_requests_strategy(CODE_N))
def test_batched_identical_to_serial(spec, live_service, reference):
    code, serial_engine, contexts = reference

    # Materialize the received words from (message, flips) specs.
    requests = []
    for word_specs, context_id in spec:
        words = []
        for message, flips in word_specs:
            received = code.encode(message)
            for bit in flips:
                received ^= 1 << bit
            words.append(received)
        requests.append(
            RecoveryRequest(words=tuple(words), context_id=context_id)
        )

    # Service side: submit everything back-to-back so jobs coalesce
    # and straddle the max_batch=3 boundary.
    futures = [
        live_service.batcher.submit(request) for request in requests
    ]
    service_payloads = [
        [
            json.loads(fragment)
            for fragment in future.result(timeout=30.0)["fragments"]
        ]
        for future in futures
    ]

    # Reference side: strictly serial, request order, fresh state.
    for request, payloads in zip(requests, service_payloads):
        context = contexts[request.context_id]
        assert len(payloads) == len(request.words)
        for word, payload in zip(request.words, payloads):
            try:
                result = serial_engine.recover(word, context)
            except ReproError as error:
                expected = error_payload(word, error)
            else:
                expected = result_payload(word, result)
            assert payload == expected


def test_service_catalog_contexts_match_reference(reference):
    """The catalog's lazily-built contexts equal the reference ones."""
    _, _, contexts = reference
    catalog = ServiceCatalog()
    for name in ("mcf", "bzip2"):
        built = catalog.context(name)
        assert built.kind == contexts[name].kind
        expected = contexts[name].frequency_table
        assert built.frequency_table.ranked() == expected.ranked()


def test_repeat_submission_is_deterministic(live_service):
    """The same DUE answered twice gives the same bytes, any batch."""
    code = live_service.catalog.code(DEFAULT_CODE_ID)
    due = code.encode(0x1234_5678) ^ 0b11
    request = RecoveryRequest(words=(due,), context_id="mcf")
    first = live_service.batcher.submit(request).result(timeout=30.0)
    second = live_service.batcher.submit(request).result(timeout=30.0)
    assert first == second
